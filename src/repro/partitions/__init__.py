"""Partitions of ``range(n)`` with the operations refinement needs."""

from repro.partitions.partition import Partition

__all__ = ["Partition"]
