"""A partition of ``{0, .., n-1}`` into disjoint non-empty blocks.

This is the central data structure of every lumping algorithm in this
library.  The paper's procedures (``CompLumping``, ``Split``, ``AddPair`` in
Figures 1-2) refine a partition of a state space until the lumpability
conditions hold; :class:`Partition` provides the block bookkeeping those
procedures need:

* stable block ids (blocks keep their id across refinements of *other*
  blocks, so a worklist of splitter ids stays meaningful),
* O(1) block-of-state lookup,
* splitting a block by a key function,
* structural operations used in proofs and tests: refinement ordering,
  meet (coarsest common refinement), canonical form.

States are always the integers ``0..n-1``.  Callers that work with richer
substate labels (tuples of place markings, etc.) keep a separate
position-to-label list; keeping the partition itself over integers keeps the
refinement inner loops fast.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import LumpingError


class Partition:
    """A partition of ``range(n)`` into disjoint non-empty blocks.

    Blocks are identified by integer ids.  Ids are assigned in creation
    order and never reused; refining a block keeps the (shrunken) original
    block under its old id and assigns fresh ids to the split-off parts.
    """

    def __init__(self, n: int, blocks: Iterable[Iterable[int]] = ()) -> None:
        """Create a partition of ``range(n)``.

        ``blocks`` must cover ``range(n)`` exactly once; if empty, the
        trivial one-block partition is created (for ``n > 0``).
        """
        if n < 0:
            raise LumpingError("partition size must be non-negative")
        self._n = n
        self._blocks: Dict[int, List[int]] = {}
        self._block_of: List[int] = [-1] * n
        self._next_id = 0
        block_list = [sorted(set(b)) for b in blocks]
        if not block_list and n > 0:
            block_list = [list(range(n))]
        for block in block_list:
            if not block:
                raise LumpingError("partition blocks must be non-empty")
            self._add_block(block)
        if any(b < 0 for b in self._block_of):
            missing = [i for i, b in enumerate(self._block_of) if b < 0]
            raise LumpingError(f"blocks do not cover states {missing[:10]}")

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def trivial(cls, n: int) -> "Partition":
        """The one-block partition of ``range(n)`` (everything equivalent)."""
        return cls(n)

    @classmethod
    def discrete(cls, n: int) -> "Partition":
        """The partition of ``range(n)`` into singletons (nothing equivalent)."""
        return cls(n, ([i] for i in range(n)))

    @classmethod
    def from_key(cls, n: int, key: Callable[[int], Hashable]) -> "Partition":
        """Group states by the value of ``key``.

        This is how initial partitions are formed: e.g. the paper's
        ``P_ini`` for ordinary lumping groups states by reward value
        (Theorem 1(a)).
        """
        groups: Dict[Hashable, List[int]] = {}
        for state in range(n):
            groups.setdefault(key(state), []).append(state)
        return cls(n, groups.values())

    @classmethod
    def from_labels(cls, labels: Sequence[Hashable]) -> "Partition":
        """Group positions by their label: ``labels[i] == labels[j]`` iff
        ``i`` and ``j`` share a block."""
        return cls.from_key(len(labels), lambda i: labels[i])

    @classmethod
    def from_blocks_with_ids(
        cls,
        n: int,
        blocks: Iterable[Tuple[int, Iterable[int]]],
        next_id: int = None,
    ) -> "Partition":
        """Rebuild a partition with *exact* block ids (checkpoint resume).

        ``blocks`` is an iterable of ``(block_id, members)`` as produced
        by :meth:`blocks_with_ids`.  Unlike :meth:`__init__`, ids are
        taken verbatim instead of being assigned in creation order, so a
        restored partition behaves identically to the original under
        id-sensitive operations (worklists of splitter ids, further
        refinement).  ``next_id`` defaults to one past the largest id.
        """
        self = cls.__new__(cls)
        if n < 0:
            raise LumpingError("partition size must be non-negative")
        self._n = n
        self._blocks = {}
        self._block_of = [-1] * n
        max_id = -1
        for block_id, members in blocks:
            block_id = int(block_id)
            member_list = sorted(int(s) for s in members)
            if not member_list:
                raise LumpingError("partition blocks must be non-empty")
            if block_id in self._blocks:
                raise LumpingError(f"duplicate block id {block_id}")
            self._blocks[block_id] = member_list
            for state in member_list:
                if self._block_of[state] != -1:
                    raise LumpingError(f"state {state} appears in two blocks")
                self._block_of[state] = block_id
            max_id = max(max_id, block_id)
        if any(b < 0 for b in self._block_of):
            missing = [i for i, b in enumerate(self._block_of) if b < 0]
            raise LumpingError(f"blocks do not cover states {missing[:10]}")
        self._next_id = max_id + 1 if next_id is None else int(next_id)
        if self._next_id <= max_id:
            raise LumpingError(
                f"next_id {self._next_id} collides with existing block ids"
            )
        return self

    def _add_block(self, members: List[int]) -> int:
        block_id = self._next_id
        self._next_id += 1
        self._blocks[block_id] = members
        for state in members:
            if self._block_of[state] != -1:
                raise LumpingError(f"state {state} appears in two blocks")
            self._block_of[state] = block_id
        return block_id

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of states partitioned."""
        return self._n

    def __len__(self) -> int:
        """Number of blocks."""
        return len(self._blocks)

    def block_of(self, state: int) -> int:
        """Id of the block containing ``state``."""
        return self._block_of[state]

    def block(self, block_id: int) -> Tuple[int, ...]:
        """Members of block ``block_id``, sorted ascending."""
        return tuple(sorted(self._blocks[block_id]))

    def block_ids(self) -> Tuple[int, ...]:
        """All live block ids, in ascending id order."""
        return tuple(sorted(self._blocks))

    def blocks(self) -> Iterator[Tuple[int, ...]]:
        """Iterate over blocks (each a sorted tuple), in id order."""
        for block_id in sorted(self._blocks):
            yield self.block(block_id)

    def blocks_with_ids(self) -> List[Tuple[int, Tuple[int, ...]]]:
        """``(block_id, members)`` pairs in ascending id order — the
        id-preserving snapshot consumed by :meth:`from_blocks_with_ids`."""
        return [(block_id, self.block(block_id)) for block_id in self.block_ids()]

    @property
    def next_block_id(self) -> int:
        """The id the next created block would receive (snapshot state)."""
        return self._next_id

    def representative(self, block_id: int) -> int:
        """An arbitrary (smallest) member of the block; the paper's
        "arbitrary element of C" in ``Lump`` (Figure 1a)."""
        return min(self._blocks[block_id])

    def size_of(self, block_id: int) -> int:
        """Number of states in block ``block_id``."""
        return len(self._blocks[block_id])

    def same_block(self, a: int, b: int) -> bool:
        """True if ``a`` and ``b`` are equivalent under this partition."""
        return self._block_of[a] == self._block_of[b]

    def is_discrete(self) -> bool:
        """True if every block is a singleton."""
        return len(self._blocks) == self._n

    def block_index_map(self) -> Dict[int, int]:
        """Map block id -> dense index ``0..len(self)-1``.

        Dense indices order blocks by their smallest member, which makes the
        lumped state numbering deterministic and independent of refinement
        history.
        """
        ordered = sorted(self._blocks, key=lambda b: min(self._blocks[b]))
        return {block_id: idx for idx, block_id in enumerate(ordered)}

    def state_class_vector(self) -> List[int]:
        """For each state, the dense index of its block (see
        :meth:`block_index_map`)."""
        index = self.block_index_map()
        return [index[self._block_of[s]] for s in range(self._n)]

    # ------------------------------------------------------------------
    # refinement
    # ------------------------------------------------------------------

    def split_block(
        self, block_id: int, key: Callable[[int], Hashable]
    ) -> List[int]:
        """Split one block by ``key``; returns ids of newly created blocks.

        States with the most common key value stay in the original block
        (keeping its id); every other key group becomes a new block.  This is
        the paper's ``Split``/``AddPair`` step (Figure 1c / Figure 2): each
        class is partitioned into subclasses of equal ``sum`` value.

        Keeping the *largest* subclass under the old id combines naturally
        with the "all but largest" splitter strategy of the underlying
        state-level algorithm [9].
        """
        members = self._blocks[block_id]
        groups: Dict[Hashable, List[int]] = {}
        for state in members:
            groups.setdefault(key(state), []).append(state)
        if len(groups) == 1:
            return []
        # Largest group keeps the original id; deterministic tie-break on
        # smallest member so refinement order never depends on hash order.
        keep = max(groups.values(), key=lambda g: (len(g), -min(g)))
        new_ids = []
        self._blocks[block_id] = keep
        for group in groups.values():
            if group is keep:
                continue
            for state in group:
                self._block_of[state] = -1
            new_ids.append(self._add_block(group))
        return new_ids

    def refine(self, key: Callable[[int], Hashable]) -> List[int]:
        """Split *every* block by ``key``; returns all newly created ids."""
        created: List[int] = []
        for block_id in list(self._blocks):
            created.extend(self.split_block(block_id, key))
        return created

    def refine_within(
        self, key: Callable[[int], Hashable], states: Iterable[int]
    ) -> List[int]:
        """Split only the blocks that contain at least one of ``states``.

        Sound whenever ``key`` is constant (e.g. a zero sum) on every state
        outside ``states`` — then untouched blocks cannot split, and touched
        blocks are still split by their *full* membership.  This is the
        sparsity optimization of the state-level algorithm [9]: a splitter
        only affects states with a transition into it.
        """
        touched_blocks = {self._block_of[s] for s in states}
        created: List[int] = []
        # Sorted so the split order (and hence new-block-id assignment) is
        # independent of set iteration order — a kill/resume replay must
        # assign the same ids (reprolint RL001).
        for block_id in sorted(touched_blocks):
            created.extend(self.split_block(block_id, key))
        return created

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------

    def refines(self, other: "Partition") -> bool:
        """True if every block of ``self`` lies inside a block of ``other``."""
        if self._n != other._n:
            raise LumpingError("partitions are over different state counts")
        for block in self._blocks.values():
            first = other.block_of(block[0])
            if any(other.block_of(s) != first for s in block[1:]):
                return False
        return True

    def meet(self, other: "Partition") -> "Partition":
        """Coarsest common refinement of ``self`` and ``other``."""
        if self._n != other._n:
            raise LumpingError("partitions are over different state counts")
        groups: Dict[Tuple[int, int], List[int]] = {}
        for state in range(self._n):
            pair = (self._block_of[state], other.block_of(state))
            groups.setdefault(pair, []).append(state)
        return Partition(self._n, groups.values())

    def canonical(self) -> Tuple[Tuple[int, ...], ...]:
        """Hashable canonical form: blocks sorted by smallest member.

        Two :class:`Partition` objects describe the same partition iff their
        canonical forms are equal, regardless of block ids or refinement
        history.
        """
        return tuple(sorted((self.block(b) for b in self._blocks), key=lambda t: t[0]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return self._n == other._n and self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash((self._n, self.canonical()))

    def copy(self) -> "Partition":
        """An independent copy (same canonical form; ids may differ)."""
        return Partition(self._n, (self.block(b) for b in self.block_ids()))

    def __repr__(self) -> str:
        blocks = "/".join(
            ",".join(map(str, block)) for block in self.canonical()
        )
        return f"Partition({self._n}: {blocks})"
