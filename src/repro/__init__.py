"""repro — compositional lumping of matrix-diagram-represented Markov models.

A from-scratch reproduction of Derisavi, Kemper & Sanders, *"Lumping Matrix
Diagram Representations of Markov Models"* (DSN 2005), together with every
substrate the paper relies on: CTMCs/MRPs with solvers, matrix diagrams,
Kronecker descriptors, symbolic state spaces (MDDs), a SAN-like modeling
formalism with state-sharing composition, and the paper's tandem
multi-processor example.

Quickstart::

    from repro.models import TandemParams, build_tandem, tandem_md_model
    from repro.models.tandem import projected_event_model
    from repro.statespace import reachable_bfs
    from repro.lumping import compositional_lump

    params = TandemParams(jobs=1, cube_dim=2, msmq_servers=2, msmq_queues=2)
    compiled = build_tandem(params)
    reach = reachable_bfs(compiled.event_model)
    model = tandem_md_model(
        projected_event_model(compiled, reach), params)
    result = compositional_lump(model, "ordinary")
    print(result.reductions)
"""

from repro.errors import (
    CompositionError,
    LumpingError,
    MatrixDiagramError,
    ModelError,
    NotLumpableError,
    ReproError,
    SolverError,
    StateSpaceError,
)
from repro.partitions import Partition
from repro.markov import CTMC, MarkovRewardProcess, steady_state
from repro.matrixdiagram import (
    FormalSum,
    MatrixDiagram,
    MDNode,
    flatten,
    md_from_kronecker_terms,
    md_stats,
)
from repro.kronecker import KroneckerDescriptor, descriptor_to_md
from repro.statespace import (
    Event,
    EventModel,
    LevelSpace,
    MDDManager,
    reachable_bfs,
    reachable_mdd,
)
from repro.san import Activity, Case, Join, Place, SANModel, compile_join
from repro.lumping import (
    MDModel,
    comp_lumping,
    comp_lumping_level,
    compositional_lump,
    lump_mrp,
)
from repro.analysis import LumpedSolution, lump_and_solve
from repro.robust import (
    Budget,
    BudgetExceeded,
    FaultInjector,
    RunReport,
    inject_faults,
)
from repro.robust.fallback import (
    reachable_with_fallback,
    solve_with_fallback,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ModelError",
    "StateSpaceError",
    "MatrixDiagramError",
    "LumpingError",
    "NotLumpableError",
    "SolverError",
    "CompositionError",
    "Partition",
    "CTMC",
    "MarkovRewardProcess",
    "steady_state",
    "FormalSum",
    "MDNode",
    "MatrixDiagram",
    "flatten",
    "md_from_kronecker_terms",
    "md_stats",
    "KroneckerDescriptor",
    "descriptor_to_md",
    "Event",
    "EventModel",
    "LevelSpace",
    "MDDManager",
    "reachable_bfs",
    "reachable_mdd",
    "Activity",
    "Case",
    "Place",
    "SANModel",
    "Join",
    "compile_join",
    "MDModel",
    "comp_lumping",
    "comp_lumping_level",
    "compositional_lump",
    "lump_mrp",
    "LumpedSolution",
    "lump_and_solve",
    "Budget",
    "BudgetExceeded",
    "FaultInjector",
    "inject_faults",
    "RunReport",
    "solve_with_fallback",
    "reachable_with_fallback",
    "__version__",
]
