"""Content-addressed result cache.

Results are stored under the *spec digest* — the sha256 of the canonical
job spec (model + solve parameters) — so two submissions of the same
analysis share one entry no matter when, or by whom, they were
submitted.  Entries are self-digested like every other durable file the
service writes; a read re-verifies the stored digest and treats any
mismatch as corruption: the entry is evicted, the miss is recorded in
the :class:`~repro.robust.report.RunReport`, and the caller recomputes.

Result certificates (:mod:`repro.robust.certify`) are stored beside the
result payload and re-validated on every read — a byte-intact entry
whose certificate fails revalidation is evicted exactly like a corrupt
one, so a wrong answer is never served from cache.
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional

from repro.robust import faults
from repro.robust.certify import revalidate_cached
from repro.robust.checkpoint import atomic_write_bytes
from repro.service.spec import (
    SpecError,
    canonical_bytes,
    self_digested,
    verify_digest,
)

CACHE_FORMAT = 1


class ResultCache:
    """One directory of digest-keyed, self-verifying result entries."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _entry_path(self, spec_digest: str) -> str:
        # Two-level fanout keeps directory listings sane at scale.
        return os.path.join(
            self.root, spec_digest[:2], f"{spec_digest}.json"
        )

    def get(
        self, spec_digest: str, report: Optional[Any] = None
    ) -> Optional[dict]:
        """The verified entry for ``spec_digest`` (a dict with
        ``result`` and ``digest`` keys), or ``None``.

        A corrupt entry — torn write, bit rot, truncation — is evicted
        on sight and recorded as a fallback in ``report``; the caller
        then recomputes, which re-populates the entry.
        """
        faults.check("service.cache")
        path = self._entry_path(spec_digest)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return None
        try:
            body = verify_digest(json.loads(raw.decode("utf-8")))
            if body.get("spec_digest") != spec_digest:
                raise SpecError(
                    "entry is filed under the wrong content address"
                )
        except (ValueError, SpecError) as exc:
            self.evict(spec_digest)
            if report is not None:
                report.record_fallback(
                    stage="service-cache",
                    requested=f"cached result {spec_digest[:12]}...",
                    used="recompute",
                    reason=f"corrupt cache entry evicted: {exc}",
                )
            return None
        # A byte-intact entry can still carry a bad answer (a failed or
        # stale certificate): re-validate before serving, and treat a
        # failure exactly like corruption — evict, record, recompute.
        reason = revalidate_cached(
            body.get("result") or {}, body.get("certificate")
        )
        if reason is not None:
            self.evict(spec_digest)
            if report is not None:
                report.record_fallback(
                    stage="service-cache",
                    requested=f"cached result {spec_digest[:12]}...",
                    used="recompute",
                    reason=f"certificate failed revalidation: {reason}",
                )
            return None
        # Hand back the digest of the *entry* too: done-records point at
        # it, so a later reader can tie job to result bit-for-bit.
        body["digest"] = json.loads(raw.decode("utf-8"))["digest"]
        return body

    def put(
        self,
        spec_digest: str,
        result: dict,
        certificate: Optional[dict] = None,
    ) -> str:
        """Store ``result`` under ``spec_digest``; returns the entry
        digest.  Last-writer-wins is safe: equal spec digests mean equal
        answers, so concurrent writers write identical bytes.

        ``certificate`` (the :meth:`Certificate.to_dict` of a *passed*
        certificate) is stored beside the result — an additive sibling
        field, so entries written without one keep their exact bytes —
        and re-validated on every :meth:`get` before the entry is
        served."""
        faults.check("service.cache")
        entry = {
            "format": CACHE_FORMAT,
            "spec_digest": spec_digest,
            "result": result,
        }
        if certificate is not None:
            entry["certificate"] = certificate
        body = self_digested(entry)
        path = self._entry_path(spec_digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write_bytes(path, canonical_bytes(body))
        return body["digest"]

    def evict(self, spec_digest: str) -> bool:
        try:
            os.unlink(self._entry_path(spec_digest))
            return True
        except OSError:
            return False
