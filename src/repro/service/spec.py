"""Job specifications and their canonical content digests.

A job is "solve this MD model with these parameters".  The spec is a
JSON-compatible dict capturing everything that determines the answer —
the serialized matrix diagram, the per-level reward/initial vectors, the
reachable restriction, and the solve parameters of
:func:`repro.analysis.lump_and_solve` — and nothing that does not
(submission time, submitter, queue position).

Two submissions are *the same job* exactly when their canonical digests
match: sha256 over the canonical JSON encoding (sorted keys, no
whitespace), the same fingerprinting the checkpoint manifests use.  The
digest is the key of the content-addressed result cache and the unit of
duplicate coalescing.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import ReproError
from repro.lumping.md_model import MDModel
from repro.matrixdiagram.io import md_from_dict, md_to_dict

SPEC_FORMAT = 1

# ---------------------------------------------------------------------------
# The job-lifecycle protocol.
#
# This table IS the service's protocol specification: the store enforces
# it at runtime on every record append, and reprolint's RL011 rule
# extracts it statically to verify every mutation site in store.py /
# worker.py / dispatcher.py performs an allowed transition.  It lives
# here — next to the spec format, away from the store's mechanics — so
# that changing the protocol is an explicit spec change, not a store
# implementation detail.
# ---------------------------------------------------------------------------

QUEUED = "queued"
LEASED = "leased"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
DEAD = "dead"
STATES: Tuple[str, ...] = (QUEUED, LEASED, RUNNING, DONE, FAILED, DEAD)
TERMINAL_STATES: FrozenSet[str] = frozenset({DONE, FAILED, DEAD})

#: Allowed transitions (from-state -> to-states).  ``None`` is the
#: pre-submission pseudo-state.
TRANSITIONS: Dict[Optional[str], FrozenSet[str]] = {
    None: frozenset({QUEUED}),
    # ``queued -> done`` is the submit-time cache hit; ``queued ->
    # dead`` is recover() burying a job that exhausted its attempts.
    QUEUED: frozenset({LEASED, DEAD, DONE, FAILED}),
    # An expired lease at max attempts dead-letters directly from
    # LEASED/RUNNING: the worker holding it is gone and will never
    # write the requeue itself.  ``leased -> done`` is a worker's
    # cache hit before start_running.
    LEASED: frozenset({RUNNING, QUEUED, DEAD, DONE, FAILED}),
    RUNNING: frozenset({RUNNING, QUEUED, DEAD, DONE, FAILED}),
}

_SOLVE_DEFAULTS = {
    "kind": "ordinary",
    "method": "direct",
    "iterate": False,
    "key": "formal",
    # Results are certified by default (see repro.robust.certify); specs
    # written before certification existed carry no "certify" key and
    # inherit True here, so old digests stay valid *and* get checked.
    "certify": True,
}


class SpecError(ReproError):
    """A job spec that cannot be interpreted."""


def spec_from_model(
    model: MDModel,
    kind: str = "ordinary",
    method: str = "direct",
    iterate: bool = False,
    key: str = "formal",
    certify: Optional[bool] = None,
) -> dict:
    """Serialize ``model`` + solve parameters into a JSON-compatible
    job spec.

    ``certify`` is only written into the spec when given explicitly:
    the default (certification on) lives in :func:`solve_params`, so
    specs — and therefore digests and cache keys — from before the
    certificate layer existed remain unchanged.
    """
    solve: Dict[str, Any] = {
        "kind": kind,
        "method": method,
        "iterate": bool(iterate),
        "key": key,
    }
    if certify is not None:
        solve["certify"] = bool(certify)
    return {
        "format": SPEC_FORMAT,
        "md": md_to_dict(model.md),
        "level_rewards": [
            [float(x) for x in vector] for vector in model.level_rewards
        ],
        "level_initial": [
            [float(x) for x in vector] for vector in model.level_initial
        ],
        "reward_combiner": model.reward_combiner,
        "reachable": (
            None
            if model.reachable is None
            else [int(i) for i in model.reachable]
        ),
        "solve": solve,
    }


def model_from_spec(spec: dict) -> MDModel:
    """Rebuild the :class:`MDModel` a spec describes."""
    try:
        if spec.get("format") != SPEC_FORMAT:
            raise SpecError(
                f"unsupported spec format {spec.get('format')!r} "
                f"(this build reads format {SPEC_FORMAT})"
            )
        return MDModel(
            md_from_dict(spec["md"]),
            level_rewards=spec.get("level_rewards"),
            level_initial=spec.get("level_initial"),
            reward_combiner=spec.get("reward_combiner", "sum"),
            reachable=spec.get("reachable"),
        )
    except SpecError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SpecError(f"malformed job spec: {exc}") from exc


def solve_params(spec: dict) -> dict:
    """The ``lump_and_solve`` keyword arguments a spec requests."""
    params = dict(_SOLVE_DEFAULTS)
    params.update(spec.get("solve", {}))
    unknown = set(params) - set(_SOLVE_DEFAULTS)
    if unknown:
        raise SpecError(
            f"unknown solve parameter(s) {sorted(unknown)!r}"
        )
    return params


def canonical_bytes(obj: Any) -> bytes:
    """The canonical JSON encoding digests are computed over: sorted
    keys, minimal separators, pure ASCII."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def canonical_digest(spec: dict) -> str:
    """sha256 hex digest of the canonical encoding of ``spec``.

    This is the job's content address: equal digests mean equal models
    and equal solve parameters, so equal answers.
    """
    return hashlib.sha256(canonical_bytes(spec)).hexdigest()


def self_digested(body: dict) -> dict:
    """``body`` plus a ``digest`` field over its canonical encoding.

    Every durable record the service writes carries its own digest so a
    reader can tell a valid record from a torn, truncated, or corrupted
    one without trusting the filesystem.
    """
    if "digest" in body:
        raise SpecError("body already carries a digest field")
    stamped = dict(body)
    stamped["digest"] = hashlib.sha256(canonical_bytes(body)).hexdigest()
    return stamped


def verify_digest(stamped: dict) -> dict:
    """Check a :func:`self_digested` dict; returns the body without the
    digest field, or raises :class:`SpecError`."""
    if not isinstance(stamped, dict) or "digest" not in stamped:
        raise SpecError("record carries no digest")
    body = {k: v for k, v in stamped.items() if k != "digest"}
    expected = hashlib.sha256(canonical_bytes(body)).hexdigest()
    if stamped["digest"] != expected:
        raise SpecError(
            f"record digest mismatch: stored {stamped['digest'][:12]}..., "
            f"recomputed {expected[:12]}..."
        )
    return body


def demo_spec(name: str) -> dict:
    """Build one of the built-in demo job specs (used by the CLI and the
    CI smoke jobs, where shipping a model file around is noise).

    ``redundant:U,S`` — the redundant-units availability model with
    ``U`` units and ``S`` spares; ``tandem:J,C,S,Q`` — the paper's
    tandem system at jobs/cube_dim/msmq_servers/msmq_queues.
    """
    kind, _, argstr = name.partition(":")
    args: List[int] = []
    if argstr:
        try:
            args = [int(x) for x in argstr.split(",")]
        except ValueError as exc:
            raise SpecError(f"bad demo arguments {argstr!r}: {exc}") from exc
    if kind == "redundant":
        from repro.models import redundant_units_join
        from repro.san import compile_join
        from repro.statespace import reachable_bfs

        units, spares = (args + [3, 1])[:2]
        compiled = compile_join(
            redundant_units_join(num_units=units, spares=spares)
        )
        reach = reachable_bfs(compiled.event_model)
        model = MDModel(
            compiled.event_model.to_md(),
            reachable=reach.potential_indices(),
        )
        return spec_from_model(model)
    if kind == "tandem":
        from repro.models import TandemParams, build_tandem, tandem_md_model
        from repro.statespace import reachable_bfs

        jobs, cube, servers, queues = (args + [1, 2, 2, 2])[:4]
        params = TandemParams(
            jobs=jobs,
            cube_dim=cube,
            msmq_servers=servers,
            msmq_queues=queues,
        )
        compiled = build_tandem(params)
        reach = reachable_bfs(compiled.event_model)
        model = tandem_md_model(compiled.event_model, params, reachable=reach)
        return spec_from_model(model)
    raise SpecError(
        f"unknown demo model {kind!r} (expected redundant:U,S or "
        "tandem:J,C,S,Q)"
    )


def spec_summary(spec: dict) -> str:
    """A one-line human description of a spec (for status listings)."""
    md = spec.get("md", {})
    sizes = md.get("level_sizes") or [
        len(level) for level in md.get("levels", [])
    ]
    solve = spec.get("solve", {})
    reachable: Optional[list] = spec.get("reachable")
    n = len(reachable) if reachable is not None else "potential"
    return (
        f"levels={sizes} states={n} "
        f"kind={solve.get('kind')} method={solve.get('method')}"
    )
