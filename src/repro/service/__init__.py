"""Durable, fault-tolerant analysis service around ``lump_and_solve``.

The service turns the robustness substrate (budgets, checkpoints,
supervisor, pool) into callable infrastructure: a crash-safe job store
(:mod:`repro.service.store`), leased supervised workers
(:mod:`repro.service.worker`, :mod:`repro.service.dispatcher`), and a
content-addressed result cache (:mod:`repro.service.cache`), fronted by
``python -m repro.service`` with ``submit / status / result /
run-workers / gc`` verbs.  See ``docs/service.md``.
"""

from repro.service.cache import ResultCache
from repro.service.dispatcher import (
    Dispatcher,
    DispatcherConfig,
    DispatcherStats,
    run_service,
)
from repro.service.spec import (
    SpecError,
    canonical_digest,
    demo_spec,
    model_from_spec,
    spec_from_model,
)
from repro.service.store import (
    JobStore,
    JobView,
    RecoverStats,
    StoreError,
    SubmitOutcome,
    TERMINAL_STATES,
)
from repro.service.worker import (
    ServiceWorker,
    solve_spec,
    solve_spec_certified,
)

__all__ = [
    "Dispatcher",
    "DispatcherConfig",
    "DispatcherStats",
    "JobStore",
    "JobView",
    "RecoverStats",
    "ResultCache",
    "ServiceWorker",
    "SpecError",
    "StoreError",
    "SubmitOutcome",
    "TERMINAL_STATES",
    "canonical_digest",
    "demo_spec",
    "model_from_spec",
    "run_service",
    "solve_spec",
    "solve_spec_certified",
    "spec_from_model",
]
