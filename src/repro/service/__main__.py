"""Command-line front end of the analysis service.

Usage::

    python -m repro.service submit     --store DIR (--spec FILE | --demo NAME)
                                       [--kind K --method M --iterate --key K]
                                       [--queue-limit N]
    python -m repro.service status     --store DIR [JOB ...]
    python -m repro.service result     --store DIR JOB [--output FILE]
                                       [--certificate]
    python -m repro.service run-workers --store DIR [--workers N]
                                       [--lease-seconds S --max-attempts A]
                                       [--heartbeat-timeout S] [--no-drain]
                                       [--max-restarts R]
    python -m repro.service gc         --store DIR [--keep-seconds S]
                                       [--prune-cache]

Exit codes: 0 ok; 1 usage/internal error; 5 submission shed by admission
control; 6 requested job is not ``done`` (still queued/running, failed,
or dead — ``status`` shows which, and for dead jobs the diagnosis).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Optional, Sequence, Tuple

from repro.robust.checkpoint import atomic_write_text
from repro.robust.retry import RetryPolicy
from repro.service.cache import ResultCache
from repro.service.dispatcher import Dispatcher, DispatcherConfig
from repro.service.spec import (
    SpecError,
    demo_spec,
    spec_summary,
)
from repro.service.store import DEAD, DONE, STATES, JobStore, StoreError

EXIT_SHED = 5
EXIT_NOT_DONE = 6


def _open(store_root: str) -> Tuple[JobStore, ResultCache]:
    store = JobStore(store_root)
    cache = ResultCache(os.path.join(store_root, "cache"))
    return store, cache


def _cmd_submit(args: argparse.Namespace) -> int:
    store, cache = _open(args.store)
    if args.demo:
        spec = demo_spec(args.demo)
    else:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = json.load(handle)
        if "md" not in spec:
            raise SpecError(
                f"{args.spec}: not a job spec (no 'md' field); build one "
                "with repro.service.spec_from_model"
            )
    solve = spec.setdefault("solve", {})
    if args.kind:
        solve["kind"] = args.kind
    if args.method:
        solve["method"] = args.method
    if args.key:
        solve["key"] = args.key
    if args.iterate:
        solve["iterate"] = True
    if args.no_certify:
        solve["certify"] = False
    outcome = store.submit(
        spec, queue_limit=args.queue_limit, cache=cache
    )
    if outcome.shed:
        print(
            f"shed: queue limit {args.queue_limit} reached; "
            "retry later or raise --queue-limit",
            file=sys.stderr,
        )
        return EXIT_SHED
    line = f"{outcome.job_id} {outcome.state}"
    if outcome.coalesced_with:
        line += f" (coalesced with {outcome.coalesced_with})"
    if outcome.cache_hit:
        line += " (cache hit)"
    print(line)
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    store, _cache = _open(args.store)
    job_ids = args.jobs or store.list_jobs()
    if not job_ids:
        print("no jobs")
        return 0
    if not args.jobs and not args.verbose:
        # Compact default: a parameter sweep leaves hundreds of jobs
        # behind, and a scan printing one line each buries the signal.
        # Summarize by state; per-job lines are one --verbose (or an
        # explicit job id) away.
        counts: Dict[str, int] = {}
        unreadable = 0
        for job_id in job_ids:
            try:
                state = store.view(job_id).state or "submitted"
            except StoreError:
                unreadable += 1
                continue
            counts[state] = counts.get(state, 0) + 1
        parts = [
            f"{state}={counts[state]}"
            for state in (*STATES, "submitted")
            if counts.get(state)
        ]
        line = f"{len(job_ids)} job(s): {' '.join(parts)}"
        if unreadable:
            line += f" unreadable={unreadable}"
        print(line)
        return 0
    code = 0
    for job_id in job_ids:
        try:
            view = store.view(job_id)
            summary = spec_summary(store.load_spec(job_id)["spec"])
        except StoreError as exc:
            # Unknown id, an orphan directory whose spec never landed,
            # or a corrupt spec: one clean line, never a traceback.  An
            # explicitly requested job that is unreadable fails the
            # command; a scan just skips past it.
            print(f"{job_id} unreadable: {exc}", file=sys.stderr)
            if args.jobs:
                code = 1
            continue
        last = view.last or {}
        detail = last.get("detail") or {}
        extra = ""
        if view.state == DONE:
            extra = f" source={detail.get('source')}"
        elif detail.get("error"):
            extra = f" error={detail['error']!r}"
        print(
            f"{job_id} {view.state or 'submitted'} "
            f"attempt={view.attempt}{extra} [{summary}]"
        )
        if view.state == DEAD and args.verbose:
            print(json.dumps(detail.get("diagnosis", {}), indent=2))
    return code


def _cmd_result(args: argparse.Namespace) -> int:
    store, cache = _open(args.store)
    try:
        view = store.view(args.job)
    except StoreError as exc:
        print(f"error: {args.job} unreadable: {exc}", file=sys.stderr)
        return 1
    if view.state != DONE:
        last = view.last or {}
        detail = last.get("detail") or {}
        print(
            f"{args.job} is {view.state or 'submitted'}, not done",
            file=sys.stderr,
        )
        if view.state == DEAD:
            print(
                json.dumps(detail.get("diagnosis", {}), indent=2),
                file=sys.stderr,
            )
        elif detail.get("error"):
            print(f"error: {detail['error']}", file=sys.stderr)
        if args.certificate and detail.get("certificate") is not None:
            # A failed/dead job carries the certificate that condemned
            # it: print it as the diagnosis the exit code points at.
            print(
                json.dumps(detail["certificate"], indent=2),
                file=sys.stderr,
            )
        return EXIT_NOT_DONE
    entry = cache.get(view.spec_digest)
    if entry is None:
        print(
            f"{args.job} is done but its cache entry is missing or "
            "corrupt; re-submit to recompute",
            file=sys.stderr,
        )
        return EXIT_NOT_DONE
    payload = {
        "job": args.job,
        "spec_digest": view.spec_digest,
        "result_digest": entry["digest"],
        "source": (view.last.get("detail") or {}).get("source"),
        "result": entry["result"],
    }
    if args.certificate:
        payload["certificate"] = entry.get("certificate")
    text = json.dumps(payload, indent=2)
    if args.output:
        atomic_write_text(args.output, text + "\n")
    else:
        print(text)
    return 0


def _cmd_run_workers(args: argparse.Namespace) -> int:
    store, cache = _open(args.store)
    policy_kwargs = {"backoff_initial_seconds": 0.1}
    if args.max_restarts is not None:
        policy_kwargs["max_restarts"] = args.max_restarts
    config = DispatcherConfig(
        workers=args.workers,
        lease_seconds=args.lease_seconds,
        max_attempts=args.max_attempts,
        policy=RetryPolicy(**policy_kwargs),
        heartbeat_timeout_seconds=args.heartbeat_timeout,
        drain=not args.no_drain,
    )
    dispatcher = Dispatcher(store, cache, config=config)
    stats = dispatcher.run()
    print(
        f"workers: {stats.worker_starts} started, "
        f"{stats.worker_deaths} died, "
        f"{stats.worker_retirements} retired; "
        f"recover: {stats.recover_requeued} requeued, "
        f"{stats.recover_buried} dead-lettered",
        file=sys.stderr,
    )
    if dispatcher.report.pool_events or dispatcher.report.notes:
        print(dispatcher.report.render(), file=sys.stderr)
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    store, cache = _open(args.store)
    removed = store.gc(keep_seconds=args.keep_seconds)
    pruned = 0
    if args.prune_cache:
        # Drop cache entries no remaining job references.
        live = set()
        for job_id in store.list_jobs():
            live.add(store.view(job_id).spec_digest)
        for dirpath, _dirnames, filenames in os.walk(cache.root):
            for name in filenames:
                digest = name.rsplit(".json", 1)[0]
                if digest not in live and cache.evict(digest):
                    pruned += 1
    print(
        f"removed {len(removed)} job(s)"
        + (f", pruned {pruned} cache entr(ies)" if args.prune_cache else "")
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Durable fault-tolerant analysis service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_submit = sub.add_parser("submit", help="queue one analysis job")
    p_submit.add_argument("--store", required=True)
    source = p_submit.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--spec", help="job spec JSON file (see repro.service.spec)"
    )
    source.add_argument(
        "--demo",
        help="built-in demo model: redundant:U,S or tandem:J,C,S,Q",
    )
    p_submit.add_argument("--kind", choices=["ordinary", "exact"])
    p_submit.add_argument(
        "--method", choices=["direct", "gauss-seidel", "jacobi", "power"]
    )
    p_submit.add_argument("--key")
    p_submit.add_argument("--iterate", action="store_true")
    p_submit.add_argument(
        "--no-certify",
        action="store_true",
        help="skip result certification (certificates are on by default)",
    )
    p_submit.add_argument(
        "--queue-limit",
        type=int,
        metavar="N",
        help="admission bound: shed (exit 5) when N jobs are active",
    )

    p_status = sub.add_parser("status", help="list job states")
    p_status.add_argument("--store", required=True)
    p_status.add_argument("jobs", nargs="*")
    p_status.add_argument(
        "--verbose",
        action="store_true",
        help="one line per job plus dead-letter diagnoses (the default "
        "for a store-wide scan is a one-line count by state)",
    )

    p_result = sub.add_parser("result", help="fetch a finished result")
    p_result.add_argument("--store", required=True)
    p_result.add_argument("job")
    p_result.add_argument("--output", help="write JSON here (atomic)")
    p_result.add_argument(
        "--certificate",
        action="store_true",
        help="include the stored numerical certificate in the payload "
        "(for failed jobs, print the condemning certificate to stderr)",
    )

    p_run = sub.add_parser(
        "run-workers", help="run the dispatcher + worker pool"
    )
    p_run.add_argument("--store", required=True)
    p_run.add_argument("--workers", type=int, default=2)
    p_run.add_argument("--lease-seconds", type=float, default=30.0)
    p_run.add_argument("--max-attempts", type=int, default=4)
    p_run.add_argument("--max-restarts", type=int, default=None)
    p_run.add_argument("--heartbeat-timeout", type=float, default=30.0)
    p_run.add_argument(
        "--no-drain",
        action="store_true",
        help="keep serving after the queue empties (stop with SIGTERM; "
        "the shutdown is drain-and-stop either way)",
    )

    p_gc = sub.add_parser("gc", help="remove old terminal jobs")
    p_gc.add_argument("--store", required=True)
    p_gc.add_argument(
        "--keep-seconds",
        type=float,
        default=0.0,
        help="keep terminal jobs younger than this (default: remove all)",
    )
    p_gc.add_argument(
        "--prune-cache",
        action="store_true",
        help="also drop cache entries no remaining job references",
    )

    args = parser.parse_args(argv)
    handlers = {
        "submit": _cmd_submit,
        "status": _cmd_status,
        "result": _cmd_result,
        "run-workers": _cmd_run_workers,
        "gc": _cmd_gc,
    }
    try:
        return handlers[args.command](args)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout went away (| head); not our error.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
