"""The leased worker loop: claim, solve, publish, repeat.

A worker is a stateless loop over the shared :class:`JobStore`: scan for
the oldest claimable job, take an expiring lease on it (a CAS record —
two workers can never hold the same job), run ``lump_and_solve`` on the
spec, publish the result to the content cache, and write the ``done``
record.  Everything a worker does survives a SIGKILL at any instant:

* the lease expires, so the dispatcher's ``recover()`` requeues the job;
* the cache write is atomic, so a half-published result never exists;
* the terminal record is a CAS, so a *zombie* worker — one whose lease
  was already requeued and re-claimed — loses the race and its stale
  result is discarded.

Duplicate coalescing happens here too: only the job registered as its
digest's *primary* ever solves.  A worker that claims a duplicate waits
(releases with a short delay) until the primary's result shows up in
the cache, then completes as a cache hit — so N duplicate submissions
cost exactly one solve.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis import lump_and_solve
from repro.robust import budgets, faults
from repro.robust.report import RunReport
from repro.service import store as job_store
from repro.service.cache import ResultCache
from repro.service.spec import model_from_spec, solve_params
from repro.service.store import JobStore, JobView

#: Delay before a coalesced duplicate re-checks its primary's progress.
COALESCE_RETRY_SECONDS = 0.2


@dataclass
class WorkerStats:
    """What one worker loop accomplished."""

    claimed: int = 0
    solved: int = 0
    cache_hits: int = 0
    mirrored: int = 0
    failed: int = 0
    released: int = 0
    lost_races: int = 0
    renewed: int = 0
    notes: List[str] = field(default_factory=list)


def solve_spec_certified(
    spec: dict, report: Optional[RunReport] = None
) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]]]:
    """Run the analysis a spec describes; returns ``(result payload,
    certificate dict)``.

    Certification follows the spec's ``solve.certify`` parameter (on by
    default); a result that cannot be certified even after the
    escalation ladder raises
    :class:`~repro.errors.CertificationError` with the failing
    certificate attached — the worker turns that into a ``failed``
    record carrying the certificate as diagnosis.  The certificate is
    ``None`` when certification was disabled.
    """
    model = model_from_spec(spec)
    params = solve_params(spec)
    solution = lump_and_solve(
        model,
        kind=params["kind"],
        method=params["method"],
        iterate=params["iterate"],
        key=params["key"],
        robust=True,
        report=report,
        certify=bool(params["certify"]),
    )
    certificate = (
        None if solution.certificate is None
        else solution.certificate.to_dict()
    )
    return payload_from_solution(solution), certificate


def payload_from_solution(solution: Any) -> Dict[str, Any]:
    """The JSON-compatible result payload of a
    :class:`~repro.analysis.LumpedSolution` — the one shape every
    publisher (worker loop, sweep engine) stores in the cache, so
    ``result``/``status`` read sweep-produced and worker-produced
    entries identically."""
    return {
        "stationary": [float(x) for x in solution.stationary],
        "solve_method": solution.solve_method,
        "num_states": int(solution.num_states),
        "reduction_factor": float(solution.reduction_factor),
        "expected_reward": float(solution.expected_reward()),
    }


def solve_spec(spec: dict, report: Optional[RunReport] = None) -> dict:
    """Run the analysis a spec describes; returns the JSON-compatible
    result payload stored in the cache.

    The payload is bitwise-deterministic: ``lump_and_solve`` is, and
    JSON float round-trips are exact, so equal specs always produce
    byte-identical cache entries.  The certificate travels separately
    (see :func:`solve_spec_certified`), never inside the payload, so
    enabling certification does not perturb result bytes.
    """
    result, _certificate = solve_spec_certified(spec, report=report)
    return result


class _LeaseRenewer:
    """Extends a running job's lease from the cooperative budget-pulse
    sites, so a solve that outlives ``lease_seconds`` keeps its claim
    instead of being requeued (and, attempts exhausted, dead-lettered)
    by ``recover()`` while its worker is still making progress.

    Each renewal appends a ``running`` record, so pulses are
    rate-limited to a fraction of the lease.  A renewal that loses its
    CAS means the lease already expired and was requeued — the renewer
    goes quiet and the zombie fence at the terminal record settles
    ownership, exactly as if the worker had never renewed.
    """

    def __init__(
        self,
        store: JobStore,
        view: JobView,
        worker_id: str,
        lease_seconds: float,
    ) -> None:
        self.store = store
        self.view = view
        self.worker_id = worker_id
        self.lease_seconds = float(lease_seconds)
        self.interval_seconds = max(0.05, self.lease_seconds / 3.0)
        self.renewals = 0
        self.lost = False
        self._last = time.monotonic()

    def pulse(self) -> None:
        if self.lost:
            return
        now = time.monotonic()
        if now - self._last < self.interval_seconds:
            return
        self._last = now
        try:
            renewed = self.store.renew(
                self.view, self.worker_id, self.lease_seconds
            )
        except (job_store.StoreError, OSError):
            # A pulse must not raise into the solver's hot loops; an
            # unrenewable lease surfaces as expiry, the honest outcome.
            renewed = None
        if renewed is None:
            self.lost = True
        else:
            self.renewals += 1


class ServiceWorker:
    """One worker identity driving the claim/solve/publish loop."""

    def __init__(
        self,
        store: JobStore,
        cache: ResultCache,
        worker_id: Optional[str] = None,
        lease_seconds: float = job_store.DEFAULT_LEASE_SECONDS,
        heartbeat: Optional[Any] = None,
        report: Optional[RunReport] = None,
        sleep: Callable[[float], None] = time.sleep,
        drain_when_empty: bool = True,
    ) -> None:
        self.store = store
        self.cache = cache
        self.worker_id = worker_id or f"w-{os.getpid()}"
        self.lease_seconds = float(lease_seconds)
        self.heartbeat = heartbeat
        self.report = report if report is not None else RunReport()
        self.sleep = sleep
        self.drain_when_empty = drain_when_empty
        self.stats = WorkerStats()
        self.stopping = False

    # ------------------------------------------------------------------

    def _beat(self, force: bool = False) -> None:
        if self.heartbeat is not None:
            self.heartbeat.beat(force=force)

    def run_once(self) -> bool:
        """Claim and process one job.  Returns whether any claimable job
        was found (False = the queue is momentarily empty)."""
        faults.check("service.worker")
        self._beat()
        now = float(self.store.clock())
        for view in self.store.views():
            if not view.claimable(now):
                continue
            if self._should_defer(view):
                continue
            claimed = self.store.claim(
                view.job_id, self.worker_id, self.lease_seconds
            )
            if claimed is None:
                self.stats.lost_races += 1
                continue
            self.stats.claimed += 1
            self._process(claimed)
            return True
        return False

    def drain(self, poll_seconds: float = 0.05) -> WorkerStats:
        """Loop until every job in the store is terminal (or
        :attr:`stopping` is raised by a signal handler): the
        drain-and-stop shutdown path.

        With ``drain_when_empty=False`` (serve mode) an empty queue is
        not an exit condition — the worker keeps polling for late
        submissions until told to stop."""
        while not self.stopping:
            made_progress = self.run_once()
            if made_progress:
                continue
            self._beat(force=True)
            if self.drain_when_empty and self.store.active_count() == 0:
                break
            self.sleep(poll_seconds)
        return self.stats

    # ------------------------------------------------------------------

    def _should_defer(self, view: JobView) -> bool:
        """Whether claiming ``view`` now could only end in a release: a
        coalesced duplicate whose primary is still in flight and whose
        result is not cached yet.  Deferring instead of claiming keeps
        the wait record-free — every claim/release cycle would append
        two records to the chain for nothing."""
        primary = self.store.primary_for(view.spec_digest)
        if primary is None or primary == view.job_id:
            return False
        if self.cache.get(view.spec_digest, report=self.report) is not None:
            return False
        try:
            primary_state = self.store.view(primary).state
        except job_store.StoreError:
            return False
        return primary_state not in job_store.TERMINAL_STATES

    def _process(self, view: JobView) -> None:
        """Run one leased job to a terminal record (or release it)."""
        digest = view.spec_digest
        primary = self.store.primary_for(digest)
        if primary is None:
            # The submitter died between its spec write and its byhash
            # registration.  Register before solving, so two recovered
            # twins of the same digest cannot both become primary.
            primary = self.store.register_primary(digest, view.job_id)
        if primary != view.job_id:
            self._process_duplicate(view, primary)
            return
        cached = self.cache.get(digest, report=self.report)
        if cached is not None:
            if self.store.complete(
                view, self.worker_id, "cache", cached["digest"]
            ) is not None:
                self.stats.cache_hits += 1
            else:
                self.stats.lost_races += 1
            return
        self._solve(view)

    def _solve(self, view: JobView) -> None:
        """Actually run the analysis for a leased job and publish the
        result (the only place the service computes anything)."""
        digest = view.spec_digest
        running = self.store.start_running(
            view, self.worker_id, self.lease_seconds
        )
        if running is None:
            self.stats.lost_races += 1
            return
        self._beat(force=True)
        # The lease must outlive the solve: renew it from the same
        # cooperative budget-pulse sites that feed the heartbeat, so a
        # job longer than lease_seconds is not requeued (and its healthy
        # worker's result fenced off) by ``recover()`` mid-computation.
        renewer = _LeaseRenewer(
            self.store, running, self.worker_id, self.lease_seconds
        )
        prev_pulse = budgets.get_pulse()

        def _pulse() -> None:
            if prev_pulse is not None:
                prev_pulse()
            renewer.pulse()

        budgets.set_pulse(_pulse)
        try:
            try:
                faults.check("service.run")
                envelope = self.store.load_spec(view.job_id)
                result, certificate = solve_spec_certified(
                    envelope["spec"], report=self.report
                )
            except Exception as exc:
                # A deterministic failure: retrying cannot change it, so
                # the job goes to ``failed`` (infra deaths never reach
                # here — they kill the process and surface as lease
                # expiry).  An exhausted certificate-escalation ladder
                # lands here too, with the failing certificate attached
                # to the record as the diagnosis.
                failing = getattr(exc, "certificate", None)
                self.report.note(
                    f"service: job {view.job_id} failed: {exc}"
                )
                if self.store.fail(
                    running,
                    self.worker_id,
                    str(exc),
                    certificate=(
                        failing.to_dict()
                        if failing is not None and hasattr(failing, "to_dict")
                        else None
                    ),
                ) is not None:
                    self.stats.failed += 1
                else:
                    self.stats.lost_races += 1
                return
        finally:
            budgets.set_pulse(prev_pulse)
            self.stats.renewed += renewer.renewals
        entry_digest = self.cache.put(digest, result, certificate=certificate)
        self._beat(force=True)
        if self.store.complete(
            running, self.worker_id, "solve", entry_digest
        ) is not None:
            self.stats.solved += 1
        else:
            # Zombie fencing: our lease was requeued and someone else
            # owns the job now.  The cache write stands (identical bytes
            # either way); the record loss is the fence working.
            self.stats.lost_races += 1

    def _process_duplicate(self, view: JobView, primary_id: str) -> None:
        """A coalesced duplicate never solves: it resolves from the
        cache once the primary finishes, mirrors the primary's
        deterministic failure, or waits."""
        digest = view.spec_digest
        cached = self.cache.get(digest, report=self.report)
        if cached is not None:
            if self.store.complete(
                view,
                self.worker_id,
                "cache",
                cached["digest"],
                mirrored_from=primary_id,
            ) is not None:
                self.stats.cache_hits += 1
            else:
                self.stats.lost_races += 1
            return
        try:
            primary = self.store.view(primary_id)
            primary_state = primary.state
        except job_store.StoreError:
            primary_state = None
        if primary_state in (job_store.FAILED, job_store.DEAD):
            # The same spec failed deterministically; one diagnosis
            # serves all duplicates.
            last = primary.last or {}
            error = (last.get("detail") or {}).get(
                "error", f"primary {primary_id} ended {primary_state}"
            )
            if self.store.fail(
                view,
                self.worker_id,
                error,
                mirrored_from=primary_id,
                certificate=(last.get("detail") or {}).get("certificate"),
            ) is not None:
                self.stats.mirrored += 1
            else:
                self.stats.lost_races += 1
            return
        if primary_state is None:
            # Primary vanished (GC'd with a pruned cache): re-register.
            # ``_process`` then solves if this job won the registration,
            # or defers to whichever twin did.
            self.store.register_primary(digest, view.job_id)
            self._process(view)
            return
        if primary_state == job_store.DONE:
            # The primary finished but its cache entry is gone (evicted
            # as corrupt, or pruned): waiting would never end, so this
            # duplicate recomputes and republishes the entry itself.
            self._solve(view)
            return
        if self.store.release(
            view, self.worker_id, "awaiting-primary", COALESCE_RETRY_SECONDS
        ) is not None:
            self.stats.released += 1
        else:
            self.stats.lost_races += 1
