"""Crash-safe job store: versioned, self-digested, append-only records.

Layout (all under one store root)::

    jobs/j000001/spec.json            the immutable job spec + digest
    jobs/j000001/records/00000001.json  state records, one per transition
    byhash/<sha256>.json              content digest -> primary job id

A job's life is its record chain: ``queued -> leased -> running ->
done | failed | dead``, with ``leased/running -> queued`` requeues on
lease expiry.  Every transition is a *new* record at the next sequence
number, created with :func:`repro.robust.checkpoint.atomic_create_bytes`
(tmp + fsync + hard-link publish).  The hard link is a compare-and-set:
two processes racing to write record ``N`` cannot both win, and the
loser re-reads the chain and reacts — that one primitive gives us
atomic claims, zombie-worker fencing (a worker whose lease the
dispatcher already requeued loses the race for its terminal record),
and torn-write detection (every record carries its own sha256, so a
SIGKILL mid-write leaves at worst an orphan tmp file, never a
half-record the scan would trust).

``recover()`` is the deterministic scan that makes the store
crash-safe: it prunes dead writers' tmp files, requeues expired leases
with retry backoff, and buries jobs that exhausted their attempts with
a structured dead-letter diagnosis.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.robust import faults
from repro.robust.checkpoint import (
    atomic_create_bytes,
    atomic_write_bytes,
)
from repro.robust.retry import RetryPolicy
from repro.service.spec import (
    DEAD,
    DONE,
    FAILED,
    LEASED,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL_STATES,
    TRANSITIONS,
    SpecError,
    canonical_bytes,
    canonical_digest,
    self_digested,
    verify_digest,
)

__all__ = [
    "QUEUED", "LEASED", "RUNNING", "DONE", "FAILED", "DEAD",
    "STATES", "TERMINAL_STATES", "TRANSITIONS",
    "StoreError", "JobView", "SubmitOutcome", "RecoverStats", "JobStore",
    "DEFAULT_LEASE_SECONDS", "DEFAULT_MAX_ATTEMPTS",
]

STORE_FORMAT = 1

DEFAULT_LEASE_SECONDS = 30.0
DEFAULT_MAX_ATTEMPTS = 4


class StoreError(ReproError):
    """A job-store invariant was violated by the caller."""


@dataclass
class JobView:
    """A job's effective state: the verified record chain's last word."""

    job_id: str
    spec_digest: str
    records: List[dict] = field(default_factory=list)

    @property
    def last(self) -> Optional[dict]:
        return self.records[-1] if self.records else None

    @property
    def state(self) -> Optional[str]:
        record = self.last
        return None if record is None else record["state"]

    @property
    def attempt(self) -> int:
        record = self.last
        return 0 if record is None else int(record.get("attempt", 0))

    @property
    def next_seq(self) -> int:
        return len(self.records) + 1

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def lease_expired(self, now: float) -> bool:
        record = self.last
        if record is None or record["state"] not in (LEASED, RUNNING):
            return False
        return float(record.get("lease_expires_at", 0.0)) <= now

    def claimable(self, now: float) -> bool:
        record = self.last
        if record is None or record["state"] != QUEUED:
            return False
        return float(record.get("not_before", 0.0)) <= now


@dataclass
class SubmitOutcome:
    """What happened to one submission."""

    job_id: Optional[str]
    state: Optional[str]
    spec_digest: str
    coalesced_with: Optional[str] = None
    cache_hit: bool = False
    shed: bool = False


@dataclass
class RecoverStats:
    """What one ``recover()`` scan did."""

    scanned: int = 0
    requeued: List[str] = field(default_factory=list)
    buried: List[str] = field(default_factory=list)
    tmp_files_removed: int = 0
    rehomed_primaries: List[str] = field(default_factory=list)


def _diagnose(
    view: JobView, max_attempts: int, final_reason: Optional[str] = None
) -> dict:
    """A dead-letter diagnosis in the crash-loop breaker's shape: an
    exit-reason histogram over the job's requeues plus a suggestion.

    ``final_reason`` is the failure that triggered the burial itself —
    it never produced a requeue record, so it is counted here.
    """
    reasons: Dict[str, int] = {}
    if final_reason:
        reasons[final_reason] = 1
    last_error: Optional[str] = None
    last_certificate: Optional[dict] = None
    for record in view.records:
        detail = record.get("detail") or {}
        reason = detail.get("reason")
        if record["state"] == QUEUED and reason:
            reasons[reason] = reasons.get(reason, 0) + 1
        if detail.get("error"):
            last_error = detail["error"]
        if detail.get("certificate") is not None:
            last_certificate = detail["certificate"]
    if last_certificate is not None:
        suggestion = (
            "the solved result failed its numerical certificate and the "
            "escalation ladder was exhausted; inspect the certificate's "
            "failing checks (the model may be ill-conditioned, the "
            "tolerance too tight, or a fault injection active)"
        )
    elif reasons.get("lease-expired", 0) >= max(1, max_attempts - 1):
        suggestion = (
            "every attempt lost its lease: the job likely crashes or "
            "hangs its worker; raise --lease-seconds, lower the model "
            "size, or inspect the worker logs"
        )
    elif last_error:
        suggestion = (
            "the job failed repeatedly with a recorded error; fix the "
            "spec or the environment and resubmit"
        )
    else:
        suggestion = (
            "attempts exhausted without a recorded error; inspect the "
            "record chain and the dispatcher log"
        )
    return {
        "job": view.job_id,
        "attempts": view.attempt,
        "max_attempts": max_attempts,
        "exit_reasons": reasons,
        "last_error": last_error,
        "certificate": last_certificate,
        "suggestion": suggestion,
    }


class JobStore:
    """The durable queue: every mutation is an atomically created file.

    All state lives on disk; instances are cheap, stateless handles, so
    any number of submitters, workers, and dispatchers — in any mix of
    processes — can open the same root concurrently.
    """

    def __init__(
        self, root: str, clock: Callable[[], float] = time.time
    ) -> None:
        self.root = os.path.abspath(root)
        self.jobs_dir = os.path.join(self.root, "jobs")
        self.byhash_dir = os.path.join(self.root, "byhash")
        self.clock = clock
        # Verified spec envelopes, keyed by job id.  A spec is written
        # exactly once at submit and never mutated, so a successful
        # verification holds for the life of the process; re-reading and
        # re-hashing the (potentially large) spec on every view is pure
        # overhead.  Bounded so a long-lived serve loop cannot grow it
        # without limit.
        self._spec_cache: Dict[str, dict] = {}
        os.makedirs(self.jobs_dir, exist_ok=True)
        os.makedirs(self.byhash_dir, exist_ok=True)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    def _job_dir(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, job_id)

    def _records_dir(self, job_id: str) -> str:
        return os.path.join(self._job_dir(job_id), "records")

    def _record_path(self, job_id: str, seq: int) -> str:
        return os.path.join(self._records_dir(job_id), f"{seq:08d}.json")

    def _spec_path(self, job_id: str) -> str:
        return os.path.join(self._job_dir(job_id), "spec.json")

    def _byhash_path(self, digest: str) -> str:
        return os.path.join(self.byhash_dir, f"{digest}.json")

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def list_jobs(self) -> List[str]:
        try:
            names = os.listdir(self.jobs_dir)
        except OSError:
            return []
        return sorted(n for n in names if n.startswith("j"))

    #: Bound on memoized verified spec envelopes (see ``_spec_cache``).
    _SPEC_CACHE_LIMIT = 256

    def load_spec(self, job_id: str) -> dict:
        """The job's immutable spec envelope (verified).

        Verified envelopes are memoized per store instance — the spec
        file is immutable after submit, so one successful digest check
        is authoritative; corrupt or missing specs are never cached.
        """
        cached = self._spec_cache.get(job_id)
        if cached is not None:
            return cached
        path = self._spec_path(job_id)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError as exc:
            raise StoreError(f"job {job_id}: no spec: {exc}") from exc
        try:
            import json

            envelope = verify_digest(json.loads(raw.decode("utf-8")))
        except (ValueError, SpecError) as exc:
            raise StoreError(f"job {job_id}: corrupt spec: {exc}") from exc
        if len(self._spec_cache) >= self._SPEC_CACHE_LIMIT:
            self._spec_cache.pop(next(iter(self._spec_cache)))
        self._spec_cache[job_id] = envelope
        return envelope

    def view(self, job_id: str) -> JobView:
        """The job's verified record chain.

        The chain is the longest prefix of consecutive, digest-valid
        records; anything after a gap or a corrupt file is a torn write
        from a killed process and carries no authority.
        """
        import json

        envelope = self.load_spec(job_id)
        view = JobView(job_id=job_id, spec_digest=envelope["spec_digest"])
        seq = 1
        while True:
            path = self._record_path(job_id, seq)
            try:
                with open(path, "rb") as handle:
                    raw = handle.read()
            except OSError:
                break
            try:
                body = verify_digest(json.loads(raw.decode("utf-8")))
            except (ValueError, SpecError):
                break
            if body.get("seq") != seq or body.get("job") != job_id:
                break
            view.records.append(body)
            seq += 1
        return view

    def views(self) -> List[JobView]:
        """All readable jobs.  A job directory without a valid spec is a
        submission that died before its durable write completed — the
        client never got an ack, so it is invisible here (and swept by
        :meth:`recover` once it is old enough to be certainly dead)."""
        views = []
        for job_id in self.list_jobs():
            try:
                views.append(self.view(job_id))
            except StoreError:
                continue
        return views

    def active_count(self) -> int:
        return sum(1 for v in self.views() if not v.terminal)

    ORPHAN_GRACE_SECONDS = 60.0

    def primary_for(self, digest: str) -> Optional[str]:
        """The job id registered as this digest's primary (the one job
        allowed to actually solve), or ``None``."""
        import json

        try:
            with open(self._byhash_path(digest), "rb") as handle:
                body = verify_digest(json.loads(handle.read().decode()))
            return body["primary"]
        except (OSError, ValueError, SpecError, KeyError):
            return None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def _append(
        self, view: JobView, state: str, **fields: Any
    ) -> Optional[JobView]:
        """Append the next record via CAS.  Returns the refreshed view on
        success, ``None`` when another writer won the sequence slot (the
        caller must re-read and reconsider)."""
        allowed = TRANSITIONS.get(view.state, frozenset())
        if state not in allowed:
            raise StoreError(
                f"job {view.job_id}: illegal transition "
                f"{view.state!r} -> {state!r}"
            )
        body = {
            "format": STORE_FORMAT,
            "job": view.job_id,
            "seq": view.next_seq,
            "state": state,
            "at": float(self.clock()),
            "attempt": fields.pop("attempt", view.attempt),
        }
        body.update(fields)
        # The kill-anywhere property's canonical site: a SIGKILL here
        # lands between two store transitions.
        faults.check("service.record")
        path = self._record_path(view.job_id, view.next_seq)
        if not atomic_create_bytes(path, canonical_bytes(self_digested(body))):
            return None
        view.records.append(body)
        return view

    def register_primary(self, digest: str, job_id: str) -> str:
        """CAS this digest's primary registration; returns the winning
        primary job id (ours, or an earlier live one)."""
        path = self._byhash_path(digest)
        for _ in range(16):
            body = self_digested(
                {"format": STORE_FORMAT, "primary": job_id}
            )
            if atomic_create_bytes(path, canonical_bytes(body)):
                return job_id
            primary = self.primary_for(digest)
            if primary is not None and os.path.isdir(
                self._job_dir(primary)
            ):
                return primary
            # Stale or corrupt registration (primary GC'd, torn write):
            # remove and retake.  The unlink/create window is safe —
            # whoever wins the create is the new primary.
            try:
                os.unlink(path)
            except OSError:
                pass
        raise StoreError(
            f"cannot register primary for digest {digest[:12]}..."
        )

    def _allocate_job_id(self) -> str:
        existing = self.list_jobs()
        n = 1
        if existing:
            n = 1 + max(int(name[1:]) for name in existing)
        while True:
            job_id = f"j{n:06d}"
            try:
                os.mkdir(self._job_dir(job_id))
            except FileExistsError:
                n += 1
                continue
            os.mkdir(self._records_dir(job_id))
            return job_id

    def submit(
        self,
        spec: dict,
        queue_limit: Optional[int] = None,
        cache: Optional[Any] = None,
        report: Optional[Any] = None,
        spec_digest: Optional[str] = None,
    ) -> SubmitOutcome:
        """Admit one job (or shed it, or resolve it from cache).

        ``queue_limit`` is the admission bound: when that many jobs are
        already active the submission is *shed* — explicitly rejected,
        nothing durable written — rather than queued into an unbounded
        backlog.  With ``cache`` given, a content hit completes the job
        instantly (``done``, source ``cache``).  ``spec_digest``, when
        given, MUST equal ``canonical_digest(spec)`` — it lets a caller
        that already canonicalized the spec skip re-serializing it.
        """
        digest = (
            spec_digest if spec_digest is not None else canonical_digest(spec)
        )
        faults.check("service.submit")
        if queue_limit is not None and self.active_count() >= queue_limit:
            return SubmitOutcome(
                job_id=None, state=None, spec_digest=digest, shed=True
            )
        job_id = self._allocate_job_id()
        envelope = self_digested(
            {
                "format": STORE_FORMAT,
                "job": job_id,
                "spec_digest": digest,
                "spec": spec,
            }
        )
        atomic_write_bytes(self._spec_path(job_id), canonical_bytes(envelope))
        if len(self._spec_cache) < self._SPEC_CACHE_LIMIT:
            self._spec_cache[job_id] = envelope
        primary = self.register_primary(digest, job_id)
        coalesced_with = None if primary == job_id else primary
        view = JobView(job_id=job_id, spec_digest=digest)
        detail = {}
        if coalesced_with:
            detail["coalesced_with"] = coalesced_with
        view = self._append(view, QUEUED, detail=detail)
        if view is None:  # a fresh job dir has no competing writers
            raise StoreError(f"job {job_id}: lost the first-record race")
        cached = None
        if cache is not None:
            cached = cache.get(digest, report=report)
        if cached is not None:
            done = self._append(
                view,
                DONE,
                worker="submit",
                detail={"source": "cache", "result_digest": cached["digest"]},
            )
            if done is not None:
                return SubmitOutcome(
                    job_id=job_id,
                    state=DONE,
                    spec_digest=digest,
                    coalesced_with=coalesced_with,
                    cache_hit=True,
                )
        return SubmitOutcome(
            job_id=job_id,
            state=QUEUED,
            spec_digest=digest,
            coalesced_with=coalesced_with,
        )

    def submit_batch(
        self,
        specs: List[dict],
        queue_limit: Optional[int] = None,
        cache: Optional[Any] = None,
        report: Optional[Any] = None,
        digests: Optional[Sequence[str]] = None,
    ) -> List[SubmitOutcome]:
        """Admit a batch of jobs (a parameter sweep's points) in order.

        Semantically identical to calling :meth:`submit` per spec —
        duplicate specs coalesce onto one primary, cache hits complete
        instantly — but deduplicates *within* the batch first so a
        sweep whose points collapse to the same digest (factor 1.0
        points, symmetric grids) submits one job and mirrors the
        outcome to the duplicates.  ``queue_limit`` is checked against
        distinct new jobs, not raw batch size.  ``digests``, when
        given, must be the per-spec canonical digests (same contract as
        :meth:`submit`'s ``spec_digest``).
        """
        if digests is not None and len(digests) != len(specs):
            raise StoreError(
                f"submit_batch: {len(digests)} digests for "
                f"{len(specs)} specs"
            )
        outcomes: List[SubmitOutcome] = []
        first_seen: Dict[str, SubmitOutcome] = {}
        for position, spec in enumerate(specs):
            digest = (
                digests[position]
                if digests is not None
                else canonical_digest(spec)
            )
            seen = first_seen.get(digest)
            if seen is not None:
                outcomes.append(
                    SubmitOutcome(
                        job_id=seen.job_id,
                        state=seen.state,
                        spec_digest=digest,
                        coalesced_with=seen.job_id,
                        cache_hit=seen.cache_hit,
                        shed=seen.shed,
                    )
                )
                continue
            outcome = self.submit(
                spec,
                queue_limit=queue_limit,
                cache=cache,
                report=report,
                spec_digest=digest,
            )
            first_seen[digest] = outcome
            outcomes.append(outcome)
        return outcomes

    # -- worker-side transitions ---------------------------------------

    def claim(
        self, job_id: str, worker: str, lease_seconds: float
    ) -> Optional[JobView]:
        """Claim a queued job with an expiring lease.  Returns the view
        holding the ``leased`` record, or ``None`` if the job is not
        claimable or another worker won."""
        now = float(self.clock())
        view = self.view(job_id)
        if not view.claimable(now):
            return None
        faults.check("service.claim")
        return self._append(
            view,
            LEASED,
            worker=worker,
            attempt=view.attempt + 1,
            lease_expires_at=now + float(lease_seconds),
        )

    def start_running(
        self, view: JobView, worker: str, lease_seconds: float
    ) -> Optional[JobView]:
        return self._append(
            view,
            RUNNING,
            worker=worker,
            lease_expires_at=float(self.clock()) + float(lease_seconds),
        )

    def renew(
        self, view: JobView, worker: str, lease_seconds: float
    ) -> Optional[JobView]:
        """Extend a running lease (a new ``running`` record)."""
        return self._append(
            view,
            RUNNING,
            worker=worker,
            lease_expires_at=float(self.clock()) + float(lease_seconds),
        )

    def complete(
        self,
        view: JobView,
        worker: str,
        source: str,
        result_digest: str,
        mirrored_from: Optional[str] = None,
    ) -> Optional[JobView]:
        detail = {"source": source, "result_digest": result_digest}
        if mirrored_from:
            detail["mirrored_from"] = mirrored_from
        return self._append(view, DONE, worker=worker, detail=detail)

    def fail(
        self,
        view: JobView,
        worker: str,
        error: str,
        mirrored_from: Optional[str] = None,
        certificate: Optional[dict] = None,
    ) -> Optional[JobView]:
        detail = {"error": error}
        if mirrored_from:
            detail["mirrored_from"] = mirrored_from
        if certificate is not None:
            # A result that failed numerical certification carries the
            # failing certificate as its diagnosis (surfaced by
            # ``status --verbose`` / ``result --certificate`` and folded
            # into the dead-letter diagnosis by _diagnose).
            detail["certificate"] = certificate
        return self._append(view, FAILED, worker=worker, detail=detail)

    def release(
        self, view: JobView, worker: str, reason: str, delay_seconds: float
    ) -> Optional[JobView]:
        """Voluntarily give a claim back (coalesced jobs waiting on
        their primary).  Does not consume an attempt."""
        return self._append(
            view,
            QUEUED,
            worker=worker,
            attempt=max(0, view.attempt - 1),
            not_before=float(self.clock()) + float(delay_seconds),
            detail={"reason": reason},
        )

    # -- dispatcher-side transitions -----------------------------------

    def requeue(
        self,
        view: JobView,
        reason: str,
        policy: RetryPolicy,
    ) -> Optional[JobView]:
        """Put an expired-lease job back in the queue with deterministic
        exponential backoff (jitter seeded by the job digest)."""
        attempt = view.attempt
        seed_policy = RetryPolicy(
            max_restarts=policy.max_restarts,
            backoff_initial_seconds=policy.backoff_initial_seconds,
            backoff_factor=policy.backoff_factor,
            backoff_max_seconds=policy.backoff_max_seconds,
            jitter_fraction=policy.jitter_fraction,
            seed=int(view.spec_digest[:8], 16),
        )
        delay = seed_policy.backoff_seconds(max(0, attempt - 1))
        return self._append(
            view,
            QUEUED,
            not_before=float(self.clock()) + delay,
            detail={"reason": reason},
        )

    def bury(
        self,
        view: JobView,
        max_attempts: int,
        final_reason: Optional[str] = None,
    ) -> Optional[JobView]:
        """Dead-letter a job whose attempts are exhausted, carrying the
        structured diagnosis."""
        return self._append(
            view,
            DEAD,
            detail={
                "diagnosis": _diagnose(view, max_attempts, final_reason)
            },
        )

    # ------------------------------------------------------------------
    # recovery and gc
    # ------------------------------------------------------------------

    def _sweep_tmp_files(self) -> int:
        """Remove tmp files left by dead writers (pid suffix no longer
        alive).  A live writer's tmp is milliseconds old and its pid is
        running; everything else is crash litter."""
        removed = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if ".tmp." not in name:
                    continue
                pid_text = name.rsplit(".tmp.", 1)[1]
                try:
                    pid = int(pid_text)
                except ValueError:
                    continue
                if pid != os.getpid() and not _pid_alive(pid):
                    try:
                        os.unlink(os.path.join(dirpath, name))
                        removed += 1
                    except OSError:
                        pass
        return removed

    def recover(
        self,
        policy: Optional[RetryPolicy] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        report: Optional[Any] = None,
    ) -> RecoverStats:
        """The deterministic crash-recovery scan.

        Safe (and idempotent) to run at any time, from any process,
        concurrently with live workers: every mutation is a CAS append,
        so a racing worker either beats us (we re-read) or loses its own
        next write (it re-reads).
        """
        if policy is None:
            policy = RetryPolicy()
        stats = RecoverStats()
        stats.tmp_files_removed = self._sweep_tmp_files()
        now = float(self.clock())
        for job_id in self.list_jobs():
            stats.scanned += 1
            try:
                view = self.view(job_id)
            except StoreError:
                # No valid spec: a submission killed before its durable
                # write.  The submitter never got an ack, so once the
                # directory is old enough that no live submitter can
                # still be mid-write, removing it loses nothing.
                try:
                    # Real wall clock on purpose: mtime is kernel time,
                    # not the (injectable) store clock.
                    age = time.time() - os.path.getmtime(  # reprolint: disable=RL006 -- compared against kernel mtime, must be the same clock, never measures pipeline time
                        self._job_dir(job_id)
                    )
                except OSError:
                    continue
                if age > self.ORPHAN_GRACE_SECONDS:
                    import shutil

                    shutil.rmtree(
                        self._job_dir(job_id), ignore_errors=True
                    )
                continue
            if view.state is None:
                # Spec written but the first record never landed (killed
                # mid-submit): make it a real queued job.
                self._append(view, QUEUED, detail={"reason": "recovered"})
                stats.requeued.append(job_id)
                continue
            if not view.lease_expired(now):
                continue
            if view.attempt >= max_attempts:
                if self.bury(
                    view, max_attempts, final_reason="lease-expired"
                ) is not None:
                    stats.buried.append(job_id)
                    if report is not None:
                        report.note(
                            f"service: job {job_id} dead-lettered after "
                            f"{view.attempt} attempt(s)"
                        )
            else:
                if self.requeue(view, "lease-expired", policy) is not None:
                    stats.requeued.append(job_id)
                    if report is not None:
                        report.note(
                            f"service: job {job_id} lease expired; "
                            f"requeued (attempt {view.attempt})"
                        )
        return stats

    def gc(self, keep_seconds: float = 0.0) -> List[str]:
        """Remove terminal jobs older than ``keep_seconds`` (and their
        byhash registrations).  Returns the removed job ids."""
        import json
        import shutil

        now = float(self.clock())
        removed = []
        for job_id in self.list_jobs():
            try:
                view = self.view(job_id)
            except StoreError:
                continue
            if not view.terminal:
                continue
            last = view.last
            if last is not None and now - float(last["at"]) < keep_seconds:
                continue
            digest = view.spec_digest
            primary = self.primary_for(digest)
            shutil.rmtree(self._job_dir(job_id), ignore_errors=True)
            removed.append(job_id)
            if primary == job_id:
                try:
                    os.unlink(self._byhash_path(digest))
                except OSError:
                    pass
        self._sweep_tmp_files()
        return removed


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True
