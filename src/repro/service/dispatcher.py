"""The dispatcher: supervised worker processes over the shared store.

The dispatcher is the service's parent process.  It forks ``workers``
child processes, each running the :class:`ServiceWorker` loop against
the same store root, and supervises them the way
:mod:`repro.robust.supervisor` supervises a pipeline stage:

* each worker writes a file heartbeat; a stale heartbeat means the
  worker is hung and gets SIGKILLed,
* a dead worker (crash, OOM-kill, watchdog kill) is restarted with the
  :class:`RetryPolicy`'s exponential backoff + deterministic jitter,
* a worker slot that keeps dying trips a per-slot crash-loop breaker
  and is retired (remaining slots absorb the load),
* the parent periodically runs :meth:`JobStore.recover`, so jobs whose
  leases died with their workers are requeued — or dead-lettered once
  their attempts are exhausted.

Shutdown is drain-and-stop: in drain mode the dispatcher exits when
every job is terminal; on SIGTERM/SIGINT it tells workers to finish
their current job and stop claiming new ones.

Worker deaths land in the dispatcher's :class:`RunReport` as pool
events (same vocabulary as :mod:`repro.robust.pool`), so one report
renders the whole recovery trail.
"""

from __future__ import annotations

import os
import signal
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.robust import faults, heartbeat
from repro.robust.heartbeat import HeartbeatMonitor
from repro.robust.report import RunReport
from repro.robust.retry import RetryPolicy
from repro.service.cache import ResultCache
from repro.service.store import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    JobStore,
)
from repro.service.worker import ServiceWorker


@dataclass
class DispatcherConfig:
    """Tunables for one dispatcher run."""

    workers: int = 2
    lease_seconds: float = DEFAULT_LEASE_SECONDS
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    heartbeat_timeout_seconds: float = 30.0
    poll_interval_seconds: float = 0.05
    recover_interval_seconds: float = 0.5
    drain: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(
                f"workers must be >= 1, not {self.workers!r}"
            )


@dataclass
class _Slot:
    """One supervised worker slot."""

    index: int
    pid: Optional[int] = None
    heartbeat_path: str = ""
    deaths: int = 0
    retired: bool = False
    restart_at: float = 0.0
    spawned_at: float = 0.0


@dataclass
class DispatcherStats:
    """What one dispatcher run did."""

    worker_starts: int = 0
    worker_deaths: int = 0
    worker_retirements: int = 0
    recover_requeued: int = 0
    recover_buried: int = 0


class Dispatcher:
    """Fork, watch, restart, recover — until the queue drains."""

    def __init__(
        self,
        store: JobStore,
        cache: ResultCache,
        config: Optional[DispatcherConfig] = None,
        report: Optional[RunReport] = None,
    ) -> None:
        self.store = store
        self.cache = cache
        self.config = config or DispatcherConfig()
        self.report = report if report is not None else RunReport()
        self.stats = DispatcherStats()
        self.stopping = False
        self._slots: List[_Slot] = []
        self._scratch = os.path.join(store.root, "workers")

    # ------------------------------------------------------------------
    # worker processes
    # ------------------------------------------------------------------

    def _spawn(self, slot: _Slot) -> None:
        slot.heartbeat_path = os.path.join(
            self._scratch, f"slot{slot.index}.hb"
        )
        try:
            os.unlink(slot.heartbeat_path)
        except OSError:
            pass
        pid = os.fork()
        if pid == 0:
            # Child: run the worker loop and never return.
            code = 1
            try:
                faults.check_at("service.slot", slot.index + 1)
                # install (not a bare Heartbeat) hooks the beat into the
                # cooperative budget-check sites, so the worker proves
                # liveness *during* a long solve — not just between jobs
                # — and a slow-but-healthy job outlives the watchdog.
                worker = ServiceWorker(
                    self.store,
                    self.cache,
                    worker_id=f"w{slot.index}-{os.getpid()}",
                    lease_seconds=self.config.lease_seconds,
                    heartbeat=heartbeat.install(
                        slot.heartbeat_path, min_interval_seconds=0.01
                    ),
                    drain_when_empty=self.config.drain,
                )
                signal.signal(
                    signal.SIGTERM, lambda *_: _stop_worker(worker)
                )
                worker.drain(
                    poll_seconds=self.config.poll_interval_seconds
                )
                code = 0
            except BaseException:  # reprolint: disable=RL005 -- forked child: the nonzero exit code IS the report; the parent records worker-crashed
                code = 1
            finally:
                os._exit(code)
        slot.pid = pid
        slot.spawned_at = time.monotonic()
        self.stats.worker_starts += 1
        self.report.record_pool_event(
            "worker-started", worker=slot.index, detail=f"pid {pid}"
        )

    def _on_death(self, slot: _Slot, status: int) -> None:
        if not os.WIFSIGNALED(status) and os.WEXITSTATUS(status) == 0:
            # A clean exit — the worker drained the queue or honored a
            # stop request.  Not a crash, so it never feeds the
            # crash-loop breaker; but only in drain mode (or during
            # shutdown) does it retire the slot.  In serve mode the
            # queue emptying is routine, and a retired slot would
            # silently demote --workers N to inline single-process
            # draining for the rest of the service's life.
            slot.pid = None
            if self.config.drain or self.stopping:
                slot.retired = True
                self.report.record_pool_event(
                    "worker-exited", worker=slot.index, detail="drained"
                )
            else:
                slot.restart_at = time.monotonic()
                self.report.record_pool_event(
                    "worker-exited",
                    worker=slot.index,
                    detail="clean exit in serve mode; respawning",
                )
            return
        self.stats.worker_deaths += 1
        if os.WIFSIGNALED(status):
            reason = f"signal {os.WTERMSIG(status)}"
        else:
            reason = f"exit {os.WEXITSTATUS(status)}"
        self.report.record_pool_event(
            "worker-crashed", worker=slot.index, detail=reason
        )
        slot.pid = None
        slot.deaths += 1
        if slot.deaths > self.config.policy.max_restarts:
            slot.retired = True
            self.stats.worker_retirements += 1
            self.report.record_pool_event(
                "worker-retired",
                worker=slot.index,
                detail=f"crash loop: {slot.deaths} death(s)",
            )
            return
        delay = self.config.policy.backoff_seconds(slot.deaths - 1)
        slot.restart_at = time.monotonic() + delay

    def _watch_slots(self) -> None:
        for slot in self._slots:
            if slot.retired:
                continue
            if slot.pid is None:
                if time.monotonic() >= slot.restart_at:
                    self._spawn(slot)
                    self.report.record_pool_event(
                        "worker-restarted", worker=slot.index
                    )
                continue
            # Reap if dead.
            try:
                pid, status = os.waitpid(slot.pid, os.WNOHANG)
            except ChildProcessError:
                pid, status = slot.pid, 0
            if pid:
                self._on_death(slot, status)
                continue
            # Hung?  Stale heartbeat -> SIGKILL; the reap happens on the
            # next tick.  A worker with *no* beat yet gets the same
            # deadline measured from its spawn — wedging during startup
            # (import, fault hook, first claim) must not hold the slot
            # forever just because the heartbeat file never appeared.
            monitor = HeartbeatMonitor(slot.heartbeat_path)
            age = monitor.age_seconds()
            timeout = self.config.heartbeat_timeout_seconds
            if age is not None and age > timeout:
                detail = f"hung: heartbeat {age:.1f}s stale; killed"
            elif (
                age is None
                and time.monotonic() - slot.spawned_at > timeout
            ):
                detail = (
                    f"hung: no heartbeat within {timeout:.1f}s "
                    "of spawn; killed"
                )
            else:
                continue
            self.report.record_pool_event(
                "worker-crashed", worker=slot.index, detail=detail
            )
            try:
                os.kill(slot.pid, signal.SIGKILL)
            except OSError:
                pass

    def _live_workers(self) -> int:
        return sum(1 for s in self._slots if s.pid is not None)

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------

    def run(self) -> DispatcherStats:
        """Run until drained (drain mode) or stopped.

        Returns the stats; the full trail is in :attr:`report`.
        """
        os.makedirs(self._scratch, exist_ok=True)
        self._install_signals()
        self._slots = [_Slot(index=i) for i in range(self.config.workers)]
        for slot in self._slots:
            self._spawn(slot)
        last_recover = 0.0
        try:
            while True:
                self._watch_slots()
                now = time.monotonic()
                if now - last_recover >= self.config.recover_interval_seconds:
                    stats = self.store.recover(
                        policy=self.config.policy,
                        max_attempts=self.config.max_attempts,
                        report=self.report,
                    )
                    self.stats.recover_requeued += len(stats.requeued)
                    self.stats.recover_buried += len(stats.buried)
                    last_recover = now
                if self.stopping:
                    break
                active = self.store.active_count()
                if self.config.drain and active == 0:
                    break
                if active and not any(
                    not s.retired for s in self._slots
                ):
                    # Every slot crash-looped out: run the remaining
                    # jobs inline rather than abandoning the queue (the
                    # same degrade-to-serial posture as the pool).
                    self.report.record_pool_event(
                        "pool-degraded",
                        detail=(
                            f"all {len(self._slots)} worker slot(s) "
                            f"retired; draining {active} job(s) inline"
                        ),
                    )
                    self._drain_inline()
                    if self.config.drain:
                        break
                time.sleep(self.config.poll_interval_seconds)
        finally:
            self._shutdown_workers()
        return self.stats

    def _drain_inline(self) -> None:
        """Drain the queue in this process, interleaving ``recover()``:
        leases orphaned by the crashed slots would otherwise never be
        requeued, and a coalesced duplicate would wait on its dead
        primary forever."""
        worker = ServiceWorker(
            self.store,
            self.cache,
            worker_id="dispatcher-inline",
            lease_seconds=self.config.lease_seconds,
            report=self.report,
        )
        last_recover = 0.0
        while not self.stopping and self.store.active_count() > 0:
            now = time.monotonic()
            if now - last_recover >= self.config.recover_interval_seconds:
                stats = self.store.recover(
                    policy=self.config.policy,
                    max_attempts=self.config.max_attempts,
                    report=self.report,
                )
                self.stats.recover_requeued += len(stats.requeued)
                self.stats.recover_buried += len(stats.buried)
                last_recover = now
            if not worker.run_once():
                time.sleep(self.config.poll_interval_seconds)

    def _install_signals(self) -> None:
        def _request_stop(_signum: int, _frame: object) -> None:
            self.stopping = True

        try:
            signal.signal(signal.SIGTERM, _request_stop)
            signal.signal(signal.SIGINT, _request_stop)
        except ValueError:  # not the main thread (tests)
            pass

    def _shutdown_workers(self) -> None:
        """Drain-and-stop: ask nicely, then insist, then reap."""
        for slot in self._slots:
            if slot.pid is not None:
                try:
                    os.kill(slot.pid, signal.SIGTERM)
                except OSError:
                    pass
        deadline = time.monotonic() + 5.0
        for slot in self._slots:
            if slot.pid is None:
                continue
            while time.monotonic() < deadline:
                try:
                    pid, _status = os.waitpid(slot.pid, os.WNOHANG)
                except ChildProcessError:
                    break
                if pid:
                    break
                time.sleep(0.02)
            else:
                try:
                    os.kill(slot.pid, signal.SIGKILL)
                    os.waitpid(slot.pid, 0)
                except (OSError, ChildProcessError):
                    pass
            slot.pid = None


def _stop_worker(worker: ServiceWorker) -> None:
    """SIGTERM handler body: finish the current job, then stop."""
    worker.stopping = True


def run_service(
    store_root: str,
    config: Optional[DispatcherConfig] = None,
    report: Optional[RunReport] = None,
) -> DispatcherStats:
    """Convenience entry point: open the store + cache under
    ``store_root`` and run one dispatcher to completion."""
    store = JobStore(store_root)
    cache = ResultCache(os.path.join(store_root, "cache"))
    dispatcher = Dispatcher(store, cache, config=config, report=report)
    stats = dispatcher.run()
    if report is None and dispatcher.report.notes:
        print(dispatcher.report.render(), file=sys.stderr)
    return stats
