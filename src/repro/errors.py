"""Exception hierarchy for the ``repro`` library.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ModelError(ReproError):
    """A model definition is inconsistent (bad rates, unknown places, ...)."""


class StateSpaceError(ReproError):
    """State-space exploration failed or produced an inconsistent result."""


class MatrixDiagramError(ReproError):
    """A matrix diagram is structurally invalid for the requested operation."""


class LumpingError(ReproError):
    """A lumping operation was given inconsistent inputs.

    Examples: a partition that does not cover the state space, or a reward
    specification that is not constant on the blocks of a claimed lumpable
    partition.
    """


class NotLumpableError(LumpingError):
    """A partition claimed to be lumpable fails the lumpability conditions."""


class SolverError(ReproError):
    """A numerical solver failed to converge or was misconfigured.

    Non-convergence failures carry structured context so callers (notably
    :func:`repro.robust.fallback.solve_with_fallback`) can report what
    happened and reuse partial progress instead of restarting from the
    uniform vector:

    Attributes
    ----------
    method:
        Name of the solver that failed (``None`` if not applicable).
    iterations:
        Iterations performed before giving up (``None`` if not applicable).
    residual:
        Infinity-norm of ``pi Q`` at the last iterate (``None`` if unknown).
    last_iterate:
        The final (normalized) iterate, reusable as a warm start for
        another iterative method (``None`` for hard failures).
    """

    def __init__(
        self,
        message: str,
        *,
        method=None,
        iterations=None,
        residual=None,
        last_iterate=None,
    ) -> None:
        super().__init__(message)
        self.method = method
        self.iterations = iterations
        self.residual = residual
        self.last_iterate = last_iterate


class CertificationError(SolverError):
    """A solved result failed its numerical certificate.

    Raised when :func:`repro.robust.certify.certify` rejects a result
    and — in the robust pipeline — every rung of the escalation ladder
    (next fallback method, tightened tolerance, extended-precision
    re-solve) failed to produce a certifiable vector.

    Attributes
    ----------
    certificate:
        The failing :class:`~repro.robust.certify.Certificate` (the last
        one computed when an escalation ladder ran), or ``None`` when
        certification could not even be attempted.
    """

    def __init__(
        self,
        message: str,
        *,
        certificate=None,
        method=None,
        iterations=None,
        residual=None,
        last_iterate=None,
    ) -> None:
        super().__init__(
            message,
            method=method,
            iterations=iterations,
            residual=residual,
            last_iterate=last_iterate,
        )
        self.certificate = certificate


class CompositionError(ReproError):
    """Composition of submodels failed (e.g. shared places with unequal
    capacities, or level assignments that do not partition the variables)."""


class SweepError(ReproError):
    """A parameter sweep that cannot be planned or resumed (malformed
    sweep spec, a frontier directory bound to a different sweep, or a
    point transform addressing nodes the model does not have)."""
