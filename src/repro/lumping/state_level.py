"""Optimal state-level lumping of flat CTMCs (baseline algorithm [9],
extended to exact lumpability as in Section 4 of the paper).

``lump_mrp`` computes the coarsest ordinary or exact lumping of a
:class:`MarkovRewardProcess` and builds the lumped MRP per Theorem 2:

* ordinary: ``Rhat(i~, j~) = R(s, C_j~)`` for an arbitrary ``s in C_i~``,
* exact:    ``Rhat(i~, j~) = R(C_i~, j)`` for an arbitrary ``j in C_j~``,
* ``rhat(i~) = r(C_i~) / |C_i~|``, ``pihat_ini(i~) = pi_ini(C_i~)``.

Initial partitions follow Theorem 1: ordinary groups states by reward;
exact groups by initial probability *and* total exit rate ``R(s, S)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.errors import LumpingError
from repro.lumping.keys import flat_exact_splitter, flat_ordinary_splitter
from repro.lumping.refinement import comp_lumping
from repro.markov.ctmc import CTMC
from repro.markov.mrp import MarkovRewardProcess
from repro.partitions import Partition
from repro.util.numeric import quantize


@dataclass
class FlatLumpingResult:
    """Outcome of a state-level lumping."""

    kind: str
    partition: Partition
    lumped: MarkovRewardProcess
    class_of: np.ndarray  # dense class index per original state

    @property
    def num_classes(self) -> int:
        """Number of lumped states."""
        return self.lumped.num_states

    @property
    def reduction_factor(self) -> float:
        """Original states per lumped state."""
        return self.partition.n / max(1, self.num_classes)

    def project_distribution(self, pi: np.ndarray) -> np.ndarray:
        """Aggregate a distribution over original states into one over
        classes (``pihat(C) = sum_{s in C} pi(s)``)."""
        pi = np.asarray(pi, dtype=float)
        if pi.shape != (self.partition.n,):
            raise LumpingError(
                f"distribution has shape {pi.shape}, expected ({self.partition.n},)"
            )
        out = np.zeros(self.num_classes)
        np.add.at(out, self.class_of, pi)
        return out

    def lift_distribution(self, pi_hat: np.ndarray) -> np.ndarray:
        """Spread a class distribution uniformly over class members.

        For *exact* lumping started from a within-class-uniform initial
        distribution this reconstructs the true per-state distribution;
        for ordinary lumping it is only an aggregate-consistent choice.
        """
        pi_hat = np.asarray(pi_hat, dtype=float)
        if pi_hat.shape != (self.num_classes,):
            raise LumpingError(
                f"class distribution has shape {pi_hat.shape}, "
                f"expected ({self.num_classes},)"
            )
        sizes = np.zeros(self.num_classes)
        np.add.at(sizes, self.class_of, 1.0)
        return pi_hat[self.class_of] / sizes[self.class_of]


def _initial_partition(
    mrp: MarkovRewardProcess, kind: str, initial: Optional[Partition]
) -> Partition:
    n = mrp.num_states
    if initial is not None:
        if initial.n != n:
            raise LumpingError("initial partition size mismatch")
        base = initial
    else:
        base = Partition.trivial(n)
    if kind == "ordinary":
        rewards = mrp.rewards
        refined = base.copy()
        refined.refine(lambda s: quantize(float(rewards[s])))
        return refined
    exit_rates = mrp.ctmc.exit_rates()
    pi = mrp.initial_distribution
    refined = base.copy()
    refined.refine(
        lambda s: (quantize(float(pi[s])), quantize(float(exit_rates[s])))
    )
    return refined


def _build_lumped_rates(
    rate_matrix: sparse.csr_matrix,
    partition: Partition,
    class_of: np.ndarray,
    kind: str,
) -> sparse.csr_matrix:
    """Theorem 2's lumped rate matrix (Figure 1a, lines 2-4 / 3'-4')."""
    num_classes = len(partition)
    index_map = partition.block_index_map()
    representatives = [0] * num_classes
    for block_id, dense in index_map.items():
        representatives[dense] = partition.representative(block_id)
    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    if kind == "ordinary":
        csr = sparse.csr_matrix(rate_matrix)
        for class_index, rep in enumerate(representatives):
            row = csr.getrow(rep)
            accumulated = {}
            for target, rate in zip(row.indices, row.data):
                target_class = int(class_of[target])
                accumulated[target_class] = (
                    accumulated.get(target_class, 0.0) + float(rate)
                )
            for target_class, rate in accumulated.items():
                rows.append(class_index)
                cols.append(target_class)
                data.append(rate)
    else:
        # Exact lumping: the aggregate-evolving lumped rate is
        # Rhat(i~, j~) = R(C_i, C_j) / |C_i| = R(C_i, j) * |C_j| / |C_i|
        # (Buchholz 1994).  The |C_j|/|C_i| scaling keeps the lumped chain
        # an honest CTMC over aggregated class probabilities; it reduces to
        # the representative column sum when all classes have equal size.
        sizes = [
            partition.size_of(block_id)
            for block_id, _dense in sorted(
                index_map.items(), key=lambda item: item[1]
            )
        ]
        csc = sparse.csc_matrix(rate_matrix)
        for class_index, rep in enumerate(representatives):
            col = csc.getcol(rep)
            accumulated = {}
            for source, rate in zip(col.indices, col.data):
                source_class = int(class_of[source])
                accumulated[source_class] = (
                    accumulated.get(source_class, 0.0) + float(rate)
                )
            for source_class, rate in accumulated.items():
                rows.append(source_class)
                cols.append(class_index)
                data.append(
                    rate * sizes[class_index] / sizes[source_class]
                )
    return sparse.coo_matrix(
        (data, (rows, cols)), shape=(num_classes, num_classes)
    ).tocsr()


def lump_rate_matrix(
    rate_matrix: sparse.spmatrix,
    kind: str = "ordinary",
    initial: Optional[Partition] = None,
    strategy: str = "all-but-largest",
) -> Tuple[Partition, sparse.csr_matrix]:
    """Lump a bare rate matrix; returns ``(partition, lumped R)``.

    Convenience wrapper when no rewards/initial distribution constrain the
    partition (i.e. they are constant).
    """
    ctmc = CTMC(rate_matrix)
    mrp = MarkovRewardProcess(ctmc)
    result = lump_mrp(mrp, kind=kind, initial=initial, strategy=strategy)
    return result.partition, result.lumped.ctmc.rate_matrix


def lump_mrp(
    mrp: MarkovRewardProcess,
    kind: str = "ordinary",
    initial: Optional[Partition] = None,
    strategy: str = "all-but-largest",
) -> FlatLumpingResult:
    """Optimal state-level lumping of an MRP.

    Parameters
    ----------
    mrp:
        The Markov reward process to lump.
    kind:
        ``"ordinary"`` or ``"exact"`` (Definition 2 / Theorem 1).
    initial:
        An optional partition to refine (e.g. one induced by measure
        definitions); the reward / initial-distribution constraints of
        Theorem 1 are intersected with it.
    strategy:
        Worklist strategy; see :func:`repro.lumping.refinement.comp_lumping`.
    """
    if kind not in ("ordinary", "exact"):
        raise LumpingError(f"kind must be 'ordinary' or 'exact', not {kind!r}")
    n = mrp.num_states
    rate_matrix = mrp.ctmc.rate_matrix
    start = _initial_partition(mrp, kind, initial)
    if kind == "ordinary":
        factory = flat_ordinary_splitter(rate_matrix)
    else:
        factory = flat_exact_splitter(rate_matrix)
    partition = comp_lumping(n, factory, start, strategy=strategy)

    class_of = np.asarray(partition.state_class_vector(), dtype=np.int64)
    lumped_rates = _build_lumped_rates(rate_matrix, partition, class_of, kind)

    num_classes = len(partition)
    sizes = np.zeros(num_classes)
    np.add.at(sizes, class_of, 1.0)
    rewards_hat = np.zeros(num_classes)
    np.add.at(rewards_hat, class_of, mrp.rewards)
    rewards_hat /= sizes
    pi_hat = np.zeros(num_classes)
    np.add.at(pi_hat, class_of, mrp.initial_distribution)

    labels = mrp.ctmc.state_labels
    lumped_labels = None
    if labels is not None:
        index_map = partition.block_index_map()
        lumped_labels = [None] * num_classes
        for block_id, dense in index_map.items():
            members = partition.block(block_id)
            lumped_labels[dense] = tuple(labels[s] for s in members)
    lumped_ctmc = CTMC(lumped_rates, state_labels=lumped_labels)
    lumped = MarkovRewardProcess(
        lumped_ctmc, rewards=rewards_hat, initial_distribution=pi_hat
    )
    return FlatLumpingResult(
        kind=kind, partition=partition, lumped=lumped, class_of=class_of
    )
