"""Lumping of Markov models: the paper's core contribution.

* :mod:`repro.lumping.refinement` — the generic partition-refinement engine
  (``CompLumping`` / ``Split`` / ``AddPair``, Figures 1-2) with a pluggable
  key function ``K``.
* :mod:`repro.lumping.state_level` — optimal state-level lumping of flat
  CTMCs (the baseline algorithm [9], extended to exact lumpability).
* :mod:`repro.lumping.keys` — key-function factories: flat-matrix sums and
  MD-node formal-sum signatures (plus the concrete-matrix ablation variant).
* :mod:`repro.lumping.md_model` — MDs with decomposable rewards and initial
  distributions (the MRP structure of Section 3).
* :mod:`repro.lumping.local` — ``CompLumpingLevel`` (Figure 3a).
* :mod:`repro.lumping.compositional` — ``CompositionalLump`` (Figure 3b).
* :mod:`repro.lumping.verify` — lumpability condition checkers (Theorem 1,
  Definition 3) used to validate results.
"""

from repro.lumping.refinement import comp_lumping
from repro.lumping.state_level import FlatLumpingResult, lump_mrp, lump_rate_matrix
from repro.lumping.md_model import MDModel
from repro.lumping.local import (
    comp_lumping_level,
    initial_partition_exact,
    initial_partition_ordinary,
)
from repro.lumping.compositional import (
    CompositionalLumpingResult,
    SkippedLevel,
    compositional_lump,
)
from repro.lumping.verify import (
    global_product_partition,
    is_exactly_lumpable,
    is_ordinarily_lumpable,
)

__all__ = [
    "comp_lumping",
    "FlatLumpingResult",
    "lump_mrp",
    "lump_rate_matrix",
    "MDModel",
    "comp_lumping_level",
    "initial_partition_exact",
    "initial_partition_ordinary",
    "CompositionalLumpingResult",
    "SkippedLevel",
    "compositional_lump",
    "global_product_partition",
    "is_exactly_lumpable",
    "is_ordinarily_lumpable",
]
