"""``CompLumpingLevel`` (Figure 3a): the lumpable partition of one level.

The local lumpability conditions of Definition 3 involve *all* nodes of a
level: ``s2 ~ s2'`` requires equal formal row (ordinary) or column (exact)
sums in every node ``n2 in N2``, plus the per-level reward / initial-factor
equalities.  ``comp_lumping_level`` therefore iterates the single-matrix
``CompLumping`` over all nodes of the level to a fixed point.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.errors import LumpingError
from repro.lumping.keys import (
    md_node_exact_matrix_splitter,
    md_node_exact_splitter,
    md_node_ordinary_matrix_splitter,
    md_node_ordinary_splitter,
)
from repro.lumping.md_model import MDModel
from repro.lumping.refinement import comp_lumping
from repro.matrixdiagram.md import MatrixDiagram
from repro.partitions import Partition
from repro.robust.pool import parallel_config
from repro.robust.shard import parallel_refinement_rounds
from repro.util.numeric import quantize


def initial_partition_ordinary(model: MDModel, level: int) -> Partition:
    """``P_i_ini`` for ordinary lumping: the coarsest partition with
    ``f_i(s_i) = f_i(s_i')`` inside every class (Section 4, "Overall
    Algorithm")."""
    rewards = model.level_rewards[level - 1]
    return Partition.from_key(
        model.md.level_size(level), lambda s: quantize(float(rewards[s]))
    )


def initial_partition_exact(model: MDModel, level: int) -> Partition:
    """``P_i_ini`` for exact lumping: the coarsest partition with equal
    initial factors ``f_pi,i`` *and* equal coefficient row sums
    ``r_{n_i, n_{i+1}}(s_i, S_i)`` for every node pair — the per-node
    formal-sum representation of condition (4) of Definition 3."""
    md = model.md
    initial_factors = model.level_initial[level - 1]
    nodes = sorted(md.nodes_at(level).items())
    size = md.level_size(level)
    all_cols = tuple(range(size))
    row_signatures: Dict[int, tuple] = {}
    for state in range(size):
        signature = []
        for index, node in nodes:
            entry = node.row_sum_over(state, all_cols)
            if node.terminal:
                signature.append((index, quantize(float(entry))))
            else:
                signature.append((index, entry.signature))
        row_signatures[state] = tuple(signature)

    def key(state: int) -> Hashable:
        return (quantize(float(initial_factors[state])), row_signatures[state])

    return Partition.from_key(size, key)


def comp_lumping_level(
    md: MatrixDiagram,
    level: int,
    initial: Partition,
    kind: str = "ordinary",
    key: str = "formal",
    strategy: str = "paper",
    max_rounds: Optional[int] = None,
    parallel=None,
) -> Partition:
    """Fixed-point iteration of ``CompLumping`` over all nodes of a level
    (Figure 3a).

    Parameters
    ----------
    md:
        The matrix diagram.
    level:
        The 1-based level to partition.
    initial:
        ``P_i_ini`` (see the ``initial_partition_*`` helpers).
    kind:
        ``"ordinary"`` or ``"exact"``.
    key:
        ``"formal"`` uses the paper's formal-sum signatures (local, cheap);
        ``"matrix"`` uses concrete represented matrices (the rejected
        expensive variant, kept for the ablation benchmark).
    strategy:
        Worklist strategy passed through to ``comp_lumping``.
    max_rounds:
        Optional safety bound on fixed-point rounds (each round refines or
        terminates, so at most ``|S_level|`` rounds are ever needed).
    parallel:
        An int or :class:`~repro.robust.pool.ParallelConfig`: run each
        round's per-node ``CompLumping`` calls on a fault-tolerant
        worker pool and meet the results in sorted node order.  The
        fixed point — the coarsest partition refining ``initial`` that
        is stable for every node — is the same either way, so the
        canonical result (and everything lumped with it) is identical
        to the serial path's.
    """
    if kind not in ("ordinary", "exact"):
        raise LumpingError(f"kind must be 'ordinary' or 'exact', not {kind!r}")
    if key not in ("formal", "matrix"):
        raise LumpingError(f"key must be 'formal' or 'matrix', not {key!r}")
    size = md.level_size(level)
    if initial.n != size:
        raise LumpingError(
            f"initial partition over {initial.n} states, level has {size}"
        )
    nodes = sorted(md.nodes_at(level).items())
    flat_cache: Dict = {}

    def splitter_for(node):
        if key == "formal":
            if kind == "ordinary":
                return md_node_ordinary_splitter(node)
            return md_node_exact_splitter(node)
        if kind == "ordinary":
            return md_node_ordinary_matrix_splitter(md, node, flat_cache)
        return md_node_exact_matrix_splitter(md, node, flat_cache)

    cfg = parallel_config(parallel)
    if cfg is not None:
        return parallel_refinement_rounds(
            size,
            nodes,
            splitter_for,
            initial,
            strategy,
            max_rounds,
            cfg,
            level_label=f"l{level}",
        )
    partition = initial.copy()
    rounds = 0
    while True:
        blocks_before = len(partition)
        for _index, node in nodes:
            partition = comp_lumping(
                size, splitter_for(node), partition, strategy=strategy
            )
        rounds += 1
        if len(partition) == blocks_before:
            return partition
        if max_rounds is not None and rounds >= max_rounds:
            raise LumpingError(
                f"comp_lumping_level exceeded {max_rounds} rounds"
            )
