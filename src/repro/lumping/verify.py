"""Lumpability condition checkers.

These implement the *definitions* directly (Theorem 1 on flat matrices,
Definition 3 on MD levels) and are used throughout the test suite as the
ground truth the algorithms are checked against.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.errors import LumpingError
from repro.lumping.md_model import MDModel
from repro.matrixdiagram.md import MatrixDiagram
from repro.matrixdiagram.operations import flatten_node
from repro.partitions import Partition


def _membership_matrix(partition: Partition) -> sparse.csr_matrix:
    """n x k 0/1 matrix with M[s, c] = 1 iff state s is in class c."""
    class_of = partition.state_class_vector()
    n = partition.n
    k = len(partition)
    return sparse.coo_matrix(
        (np.ones(n), (np.arange(n), class_of)), shape=(n, k)
    ).tocsr()


def is_ordinarily_lumpable(
    rate_matrix: sparse.spmatrix,
    partition: Partition,
    rewards: Optional[Sequence[float]] = None,
    rtol: float = 1e-9,
) -> bool:
    """Theorem 1(a): ``R(s, C') = R(s_hat, C')`` for all classes and all
    equivalent states, and rewards constant on classes (if given)."""
    csr = sparse.csr_matrix(rate_matrix)
    n = csr.shape[0]
    if partition.n != n:
        raise LumpingError("partition size does not match matrix")
    aggregated = (csr @ _membership_matrix(partition)).toarray()  # reprolint: disable=RL003 -- n x k with k = lumped size; rows are compared per block
    scale = max(1.0, float(np.abs(aggregated).max(initial=0.0)))
    if rewards is not None:
        rewards = np.asarray(rewards, dtype=float)
    for block in partition.blocks():
        first = aggregated[block[0]]
        for state in block[1:]:
            if np.abs(aggregated[state] - first).max() > rtol * scale:
                return False
        if rewards is not None:
            values = rewards[list(block)]
            if np.abs(values - values[0]).max() > rtol * max(
                1.0, float(np.abs(values).max())
            ):
                return False
    return True


def is_exactly_lumpable(
    rate_matrix: sparse.spmatrix,
    partition: Partition,
    initial_distribution: Optional[Sequence[float]] = None,
    rtol: float = 1e-9,
) -> bool:
    """Theorem 1(b): ``R(C', s) = R(C', s_hat)``, equal exit rates
    ``R(s, S)``, and initial probabilities constant on classes (if given)."""
    csr = sparse.csr_matrix(rate_matrix)
    n = csr.shape[0]
    if partition.n != n:
        raise LumpingError("partition size does not match matrix")
    aggregated = (_membership_matrix(partition).T @ csr).toarray()  # k x n  # reprolint: disable=RL003 -- k x n with k = lumped size; verification-only
    exit_rates = np.asarray(csr.sum(axis=1)).ravel()
    scale = max(1.0, float(np.abs(aggregated).max(initial=0.0)))
    if initial_distribution is not None:
        initial_distribution = np.asarray(initial_distribution, dtype=float)
    for block in partition.blocks():
        first_col = aggregated[:, block[0]]
        first_exit = exit_rates[block[0]]
        for state in block[1:]:
            if np.abs(aggregated[:, state] - first_col).max() > rtol * scale:
                return False
            if abs(exit_rates[state] - first_exit) > rtol * max(
                1.0, abs(first_exit)
            ):
                return False
        if initial_distribution is not None:
            values = initial_distribution[list(block)]
            if np.abs(values - values[0]).max() > rtol:
                return False
    return True


def global_product_partition(
    level_partitions: Sequence[Partition],
    level_sizes: Sequence[int],
) -> Partition:
    """The global partition induced by per-level partitions (Definition 4,
    applied at every level): two potential states are equivalent iff their
    substates are equivalent level by level."""
    if len(level_partitions) != len(level_sizes):
        raise LumpingError("need one partition per level")
    for partition, size in zip(level_partitions, level_sizes):
        if partition.n != size:
            raise LumpingError("level partition size mismatch")
    class_vectors = [
        partition.state_class_vector() for partition in level_partitions
    ]
    n = math.prod(level_sizes)
    labels: List[Tuple[int, ...]] = []
    for index in range(n):
        rest = index
        digits = []
        for size in reversed(level_sizes):
            digits.append(rest % size)
            rest //= size
        digits.reverse()
        labels.append(
            tuple(
                class_vectors[level][digit]
                for level, digit in enumerate(digits)
            )
        )
    return Partition.from_labels(labels)


def check_local_ordinary(
    md: MatrixDiagram,
    level: int,
    partition: Partition,
    rtol: float = 1e-9,
) -> bool:
    """Definition 3, condition (2), checked *semantically*: for every node
    of the level and every class, equivalent substates must have equal
    represented row-sum matrices.  (Stricter than the formal-sum condition;
    anything accepted here is truly locally lumpable.)"""
    return _check_local(md, level, partition, transpose=False, rtol=rtol)


def check_local_exact(
    md: MatrixDiagram,
    level: int,
    partition: Partition,
    rtol: float = 1e-9,
) -> bool:
    """Definition 3, conditions (4) and (5), checked semantically."""
    if not _check_local(md, level, partition, transpose=True, rtol=rtol):
        return False
    # Condition (4): equal full row sums R_n(s, S) per node.
    size = md.level_size(level)
    all_cols = tuple(range(size))
    for _index, node in sorted(md.nodes_at(level).items()):
        row_sums = [
            _entry_to_matrix(md, node, node.row_sum_over(s, all_cols))
            for s in range(size)
        ]
        for block in partition.blocks():
            first = row_sums[block[0]]
            for state in block[1:]:
                if not _matrices_close(row_sums[state], first, rtol):
                    return False
    return True


def _entry_to_matrix(md: MatrixDiagram, node, entry) -> sparse.csr_matrix:
    if node.terminal:
        return sparse.csr_matrix(([float(entry)], ([0], [0])), shape=(1, 1))
    dim = math.prod(md.level_sizes[node.level :])
    total = sparse.csr_matrix((dim, dim))
    for child, coefficient in entry.items():
        total = total + coefficient * flatten_node(md, child)
    return sparse.csr_matrix(total)


def _matrices_close(
    a: sparse.spmatrix, b: sparse.spmatrix, rtol: float
) -> bool:
    difference = a - b
    if difference.nnz == 0:
        return True
    scale = max(
        1.0,
        float(np.abs(a.data).max(initial=0.0)),
        float(np.abs(b.data).max(initial=0.0)),
    )
    return bool(np.abs(difference.data).max() <= rtol * scale)


def _check_local(
    md: MatrixDiagram,
    level: int,
    partition: Partition,
    transpose: bool,
    rtol: float,
) -> bool:
    size = md.level_size(level)
    if partition.n != size:
        raise LumpingError("partition size does not match the level")
    blocks = list(partition.blocks())
    for _index, node in sorted(md.nodes_at(level).items()):
        for block_cols in blocks:
            sums = []
            for state in range(size):
                if transpose:
                    entry = node.col_sum_over(block_cols, state)
                else:
                    entry = node.row_sum_over(state, block_cols)
                sums.append(_entry_to_matrix(md, node, entry))
            for block in blocks:
                first = sums[block[0]]
                for state in block[1:]:
                    if not _matrices_close(sums[state], first, rtol):
                        return False
    return True


def verify_compositional_result(
    result, rtol: float = 1e-8, max_states: int = 200_000
) -> bool:
    """Full semantic check of a compositional lumping: flatten both MDs,
    build the global product partition, and check Theorem 1 on the flat
    matrix plus agreement of the lumped MD with Theorem 2's lumped matrix.

    Only usable when the potential space is small enough to flatten.
    """
    original: MDModel = result.original
    lumped: MDModel = result.lumped
    n = original.potential_size()
    if n > max_states:
        raise LumpingError(
            f"potential space too large to verify flatly ({n} states)"
        )
    from repro.matrixdiagram.operations import flatten

    # Unrestricted copy: the flat checks run over the full potential space.
    unrestricted = MDModel(
        original.md,
        level_rewards=original.level_rewards,
        level_initial=original.level_initial,
        reward_combiner=original.reward_combiner,
    )
    flat = flatten(original.md)
    global_partition = global_product_partition(
        result.partitions, original.md.level_sizes
    )
    if result.kind == "ordinary":
        if not is_ordinarily_lumpable(
            flat, global_partition, rewards=unrestricted.global_rewards(), rtol=rtol
        ):
            return False
    else:
        if not is_exactly_lumpable(
            flat,
            global_partition,
            initial_distribution=unrestricted.global_initial(),
            rtol=rtol,
        ):
            return False
    # Lumped MD must equal Theorem 2's lumped flat matrix.
    membership = _membership_matrix(global_partition)
    class_of = global_partition.state_class_vector()
    k = len(global_partition)
    representatives = {}
    for block in global_partition.blocks():
        representatives[class_of[block[0]]] = (
            block[0] if result.kind == "ordinary" else block
        )
    flat_lumped = flatten(lumped.md).toarray()  # reprolint: disable=RL003 -- k x k lumped matrix; verification compares it entrywise
    expected = np.zeros((k, k))
    csr = sparse.csr_matrix(flat)
    if result.kind == "ordinary":
        aggregated = (csr @ membership).toarray()  # reprolint: disable=RL003 -- n x k with k = lumped size; verification-only
        for block in global_partition.blocks():
            expected[class_of[block[0]]] = aggregated[block[0]]
    else:
        # Exact: expected(i~, j~) = R(C_i, C_j) / |C_i| (see state_level).
        aggregated = (membership.T @ csr @ membership).toarray()  # reprolint: disable=RL003 -- k x k aggregated matrix; verification-only
        sizes = np.zeros(k)
        for block in global_partition.blocks():
            sizes[class_of[block[0]]] = len(block)
        expected = aggregated / sizes[:, None]
    # The lumped MD's state order is the mixed-radix order of class tuples;
    # align via the projection of each representative.
    order = np.empty(k, dtype=np.int64)
    for block in global_partition.blocks():
        order[class_of[block[0]]] = result.project_potential_index(block[0])
    reordered = flat_lumped[np.ix_(order, order)]
    return bool(np.abs(reordered - expected).max() <= rtol * max(1.0, np.abs(expected).max()))
