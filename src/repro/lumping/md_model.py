"""MD-represented Markov reward processes with decomposable rewards.

Section 3 of the paper requires the reward vector and the initial
probability distribution to be *decomposable* over levels:

* ``r(s) = g(f_1(s_1), .., f_L(s_L))``,
* ``pi_ini(s) = g_pi(f_pi,1(s_1), .., f_pi,L(s_L))``.

:class:`MDModel` stores the per-level vectors ``f_i`` and ``f_pi,i``
explicitly, with the combiner ``g`` restricted to the two forms that both
cover the practical cases and commute with per-level lumping:

* ``"sum"``: ``r(s) = sum_i f_i(s_i)`` — typical rate rewards (e.g. the
  total number of jobs is the sum of per-level job counts),
* ``"product"``: ``r(s) = prod_i f_i(s_i)`` — typical indicators (e.g.
  "subsystem available AND pool non-empty").

``g_pi`` is always a product, which covers point-mass initial states
(products of indicator vectors, the paper's own worked example of
``f_pi``) and independent per-level distributions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ModelError
from repro.markov.ctmc import CTMC
from repro.markov.mrp import MarkovRewardProcess
from repro.matrixdiagram.md import MatrixDiagram
from repro.matrixdiagram.operations import flatten


class MDModel:
    """An MRP whose CTMC is represented by a matrix diagram.

    Parameters
    ----------
    md:
        The matrix diagram of the rate matrix ``R`` over the potential
        product space.
    level_rewards:
        Per-level reward vectors ``f_i`` (defaults to all zeros).
    level_initial:
        Per-level initial-distribution factors ``f_pi,i`` (defaults to
        uniform).  The global initial distribution is their product,
        normalized over the given state space.
    reward_combiner:
        ``"sum"`` or ``"product"``; see module docstring.
    reachable:
        Optional sorted list of reachable potential-space indices; when
        set, global vectors and flat MRPs are restricted to it.
    """

    def __init__(
        self,
        md: MatrixDiagram,
        level_rewards: Optional[Sequence[Sequence[float]]] = None,
        level_initial: Optional[Sequence[Sequence[float]]] = None,
        reward_combiner: str = "sum",
        reachable: Optional[Sequence[int]] = None,
    ) -> None:
        if reward_combiner not in ("sum", "product"):
            raise ModelError(
                f"reward_combiner must be 'sum' or 'product', "
                f"not {reward_combiner!r}"
            )
        self.md = md
        self.reward_combiner = reward_combiner
        sizes = md.level_sizes
        if level_rewards is None:
            self.level_rewards = [np.zeros(size) for size in sizes]
        else:
            self.level_rewards = [
                np.asarray(vector, dtype=float).copy()
                for vector in level_rewards
            ]
        if level_initial is None:
            self.level_initial = [np.ones(size) for size in sizes]
        else:
            self.level_initial = [
                np.asarray(vector, dtype=float).copy()
                for vector in level_initial
            ]
        for name, vectors in (
            ("level_rewards", self.level_rewards),
            ("level_initial", self.level_initial),
        ):
            if len(vectors) != md.num_levels:
                raise ModelError(f"{name} must have one vector per level")
            for level, vector in enumerate(vectors, start=1):
                if vector.shape != (md.level_size(level),):
                    raise ModelError(
                        f"{name}[{level - 1}] has shape {vector.shape}, "
                        f"expected ({md.level_size(level)},)"
                    )
        if any(np.any(v < 0) for v in self.level_initial):
            raise ModelError("initial factors must be non-negative")
        self.reachable = (
            sorted(int(i) for i in reachable) if reachable is not None else None
        )
        if self.reachable is not None:
            n = md.potential_size()
            if self.reachable and (
                self.reachable[0] < 0 or self.reachable[-1] >= n
            ):
                raise ModelError("reachable indices outside potential space")

    # ------------------------------------------------------------------
    # global vectors
    # ------------------------------------------------------------------

    def _combine(self, vectors: List[np.ndarray], combiner: str) -> np.ndarray:
        result = vectors[0]
        for vector in vectors[1:]:
            if combiner == "sum":
                result = np.add.outer(result, vector)
            else:
                result = np.multiply.outer(result, vector)
        return result.reshape(-1)

    def global_rewards(self) -> np.ndarray:
        """The reward vector ``r`` over the potential space (or the
        reachable subspace if one is set)."""
        full = self._combine(self.level_rewards, self.reward_combiner)
        if self.reachable is None:
            return full
        return full[self.reachable]

    def global_initial(self, normalize: bool = True) -> np.ndarray:
        """The initial distribution over the potential space (or reachable
        subspace), optionally normalized to sum 1."""
        full = self._combine(self.level_initial, "product")
        if self.reachable is not None:
            full = full[self.reachable]
        if normalize:
            total = full.sum()
            if total <= 0:
                raise ModelError(
                    "initial factors give zero total mass on the state space"
                )
            full = full / total
        return full

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------

    def potential_size(self) -> int:
        """Size of the potential product space."""
        return self.md.potential_size()

    def num_states(self) -> int:
        """Number of states of the (restricted) chain."""
        if self.reachable is None:
            return self.potential_size()
        return len(self.reachable)

    def flat_ctmc(self, max_states: int = 5_000_000) -> CTMC:
        """The flat CTMC (restricted to reachable states when set).

        Only valid for spaces small enough to materialize; intended for
        verification and for the flat-baseline comparisons.  Raises
        :class:`ModelError` beyond ``max_states`` potential states instead
        of exhausting memory — use :class:`repro.matrixdiagram.MDOperator`
        for solver iterations at that scale.
        """
        if self.potential_size() > max_states:
            raise ModelError(
                f"potential space has {self.potential_size()} states "
                f"(> {max_states}); flattening would exhaust memory — "
                f"use MDOperator for iteration at this scale"
            )
        matrix = flatten(self.md)
        if self.reachable is not None:
            matrix = matrix[self.reachable, :][:, self.reachable]
        return CTMC(matrix)

    def flat_mrp(self) -> MarkovRewardProcess:
        """The flat MRP with combined rewards and initial distribution."""
        return MarkovRewardProcess(
            self.flat_ctmc(),
            rewards=self.global_rewards(),
            initial_distribution=self.global_initial(),
        )

    def state_tuple(self, potential_index: int):
        """Decode a potential-space index into per-level substates."""
        digits = []
        for size in reversed(self.md.level_sizes):
            digits.append(potential_index % size)
            potential_index //= size
        return tuple(reversed(digits))

    def __repr__(self) -> str:
        restriction = (
            f", reachable={len(self.reachable)}"
            if self.reachable is not None
            else ""
        )
        return (
            f"MDModel(levels={self.md.num_levels}, "
            f"potential={self.potential_size()}{restriction})"
        )
