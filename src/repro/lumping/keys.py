"""Key-function (``K``) factories for the refinement engine.

Section 4 of the paper: "Function K is the key to generalizing this
algorithm. ... By choosing K appropriately, we can customize the algorithm
to compute partitions that satisfy a set of desired conditions."

Flat variants (state-level lumping, baseline [9]):

* ordinary: ``K(R, s, C) = R(s, C)`` — cumulative rate from ``s`` into
  the splitter class,
* exact: ``K(R, s, C) = R(C, s)`` — cumulative rate from the splitter
  class into ``s``.

MD-node variants (the paper's contribution): ``K`` returns the *formal
sum* ``sum_{n3} r(s2, C2) . R_n3`` represented as a set of
``(coefficient, node index)`` pairs, so the algorithm runs on nodes of size
``|S2| x |S2|`` instead of matrices of size ``|S3| x |S3|``.

The concrete-matrix variants (``md_node_*_matrix_splitter``) realize the
"first obvious way" the paper describes and rejects as prohibitively
expensive; they exist for the ablation benchmark and as a correctness
oracle (they are sufficient *and* necessary on the node's represented
matrices).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.lumping.refinement import SplitterFactory
from repro.matrixdiagram.md import MatrixDiagram
from repro.matrixdiagram.node import MDNode
from repro.matrixdiagram.operations import flatten_node
from repro.util.numeric import quantize

# ----------------------------------------------------------------------
# flat matrices
# ----------------------------------------------------------------------


def _axis_sum_splitter(
    indptr: np.ndarray, indices: np.ndarray, data: np.ndarray, n: int
) -> SplitterFactory:
    """Shared core of the flat splitters: for a splitter class ``C``,
    accumulate ``sum(s) = sum over the stored slices of C`` touching ``s``.

    Works directly on the compressed arrays (no sparse-matrix slicing in
    the refinement hot loop): for the ordinary key the arrays come from
    the CSC form (slices are columns, touched entries are row indices);
    for the exact key from the CSR form (slices are rows, touched entries
    are column indices).
    """

    def factory(members: Tuple[int, ...]):
        chunks_index = []
        chunks_data = []
        for member in members:
            start, end = indptr[member], indptr[member + 1]
            if start != end:
                chunks_index.append(indices[start:end])
                chunks_data.append(data[start:end])
        if not chunks_index:
            return (lambda _state: 0.0), []
        touched_index = np.concatenate(chunks_index)
        sums = np.zeros(n)
        np.add.at(sums, touched_index, np.concatenate(chunks_data))
        touched = np.unique(touched_index)

        def key(state: int) -> Hashable:
            return quantize(float(sums[state]))

        return key, touched.tolist()

    return factory


def flat_ordinary_splitter(rate_matrix: sparse.spmatrix) -> SplitterFactory:
    """``K(R, s, C) = R(s, C)`` with sparsity: only rows with a transition
    into ``C`` can have a non-zero sum."""
    csc = sparse.csc_matrix(rate_matrix)
    return _axis_sum_splitter(
        csc.indptr, csc.indices, csc.data, csc.shape[0]
    )


def flat_exact_splitter(rate_matrix: sparse.spmatrix) -> SplitterFactory:
    """``K(R, s, C) = R(C, s)`` with sparsity: only columns receiving a
    transition from ``C`` can have a non-zero sum."""
    csr = sparse.csr_matrix(rate_matrix)
    return _axis_sum_splitter(
        csr.indptr, csr.indices, csr.data, csr.shape[1]
    )


# ----------------------------------------------------------------------
# MD nodes: formal-sum signatures (the paper's local K)
# ----------------------------------------------------------------------


def _node_row_index(node: MDNode) -> Dict[int, List[Tuple[int, object]]]:
    """row -> list of (col, entry)."""
    by_row: Dict[int, List[Tuple[int, object]]] = {}
    for r, c, entry in node.entries():
        by_row.setdefault(r, []).append((c, entry))
    return by_row


def _node_col_index(node: MDNode) -> Dict[int, List[Tuple[int, object]]]:
    """col -> list of (row, entry)."""
    by_col: Dict[int, List[Tuple[int, object]]] = {}
    for r, c, entry in node.entries():
        by_col.setdefault(c, []).append((r, entry))
    return by_col


def md_node_ordinary_splitter(node: MDNode) -> SplitterFactory:
    """``K(R_n2, s2, C2) = {(r(s2, C2), n3)}`` — the formal sum of row
    ``s2`` over the splitter class, as a signature of quantized
    ``(node, coefficient)`` pairs (zero-coefficient terms dropped)."""
    by_row = _node_row_index(node)
    by_col = _node_col_index(node)

    def factory(members: Tuple[int, ...]):
        member_set = set(members)
        touched = sorted(
            {
                r
                for col in members
                for r, _entry in by_col.get(col, ())
            }
        )
        cache: Dict[int, Hashable] = {}

        def key(state: int) -> Hashable:
            cached = cache.get(state)
            if cached is not None:
                return cached
            if node.terminal:
                total = 0.0
                for col, entry in by_row.get(state, ()):
                    if col in member_set:
                        total += entry
                result: Hashable = quantize(total)
            else:
                cols = tuple(
                    col
                    for col, _entry in by_row.get(state, ())
                    if col in member_set
                )
                result = node.row_sum_over(state, cols).signature
            cache[state] = result
            return result

        return key, touched

    return factory


def md_node_exact_splitter(node: MDNode) -> SplitterFactory:
    """``K(R_n2, s2, C2) = {(r(C2, s2), n3)}`` — the transposed variant
    for exact lumpability (Eq. (5) of Definition 3)."""
    by_col = _node_col_index(node)
    by_row = _node_row_index(node)

    def factory(members: Tuple[int, ...]):
        member_set = set(members)
        touched = sorted(
            {
                c
                for row in members
                for c, _entry in by_row.get(row, ())
            }
        )
        cache: Dict[int, Hashable] = {}

        def key(state: int) -> Hashable:
            cached = cache.get(state)
            if cached is not None:
                return cached
            if node.terminal:
                total = 0.0
                for row, entry in by_col.get(state, ()):
                    if row in member_set:
                        total += entry
                result: Hashable = quantize(total)
            else:
                rows = tuple(
                    row
                    for row, _entry in by_col.get(state, ())
                    if row in member_set
                )
                result = node.col_sum_over(rows, state).signature
            cache[state] = result
            return result

        return key, touched

    return factory


# ----------------------------------------------------------------------
# MD nodes: concrete-matrix keys (ablation / oracle)
# ----------------------------------------------------------------------


def _matrix_signature(matrix: sparse.spmatrix) -> Tuple:
    coo = matrix.tocoo()
    return tuple(
        sorted(
            (int(r), int(c), quantize(float(v)))
            for r, c, v in zip(coo.row, coo.col, coo.data)
            if quantize(float(v)) != 0.0
        )
    )


def _entry_matrix(
    md: MatrixDiagram,
    entry,
    terminal: bool,
    cache: Dict[int, sparse.csr_matrix],
    dim: int,
) -> sparse.csr_matrix:
    if terminal:
        return sparse.csr_matrix(([float(entry)], ([0], [0])), shape=(1, 1))
    total = sparse.csr_matrix((dim, dim))
    for child, coefficient in entry.items():
        total = total + coefficient * flatten_node(md, child, cache)
    return sparse.csr_matrix(total)


def md_node_ordinary_matrix_splitter(
    md: MatrixDiagram,
    node: MDNode,
    flat_cache: Optional[Dict[int, sparse.csr_matrix]] = None,
) -> SplitterFactory:
    """``K(R_n2, s2, C2) = bar(R)_n2(s2, C2)`` — the *represented matrix*
    of the row sum.  Sufficient and necessary on the node level, but
    requires flattening children (the trade-off of Section 4)."""
    if flat_cache is None:
        flat_cache = {}
    by_row = _node_row_index(node)
    import math

    dim = (
        1
        if node.terminal
        else math.prod(md.level_sizes[node.level :])
    )

    def factory(members: Tuple[int, ...]):
        member_set = set(members)

        def key(state: int) -> Hashable:
            total = sparse.csr_matrix((dim, dim))
            for col, entry in by_row.get(state, ()):
                if col in member_set:
                    total = total + _entry_matrix(
                        md, entry, node.terminal, flat_cache, dim
                    )
            return _matrix_signature(total)

        return key, None

    return factory


def md_node_exact_matrix_splitter(
    md: MatrixDiagram,
    node: MDNode,
    flat_cache: Optional[Dict[int, sparse.csr_matrix]] = None,
) -> SplitterFactory:
    """Transposed concrete-matrix key for exact lumpability."""
    if flat_cache is None:
        flat_cache = {}
    by_col = _node_col_index(node)
    import math

    dim = (
        1
        if node.terminal
        else math.prod(md.level_sizes[node.level :])
    )

    def factory(members: Tuple[int, ...]):
        member_set = set(members)

        def key(state: int) -> Hashable:
            total = sparse.csr_matrix((dim, dim))
            for row, entry in by_col.get(state, ()):
                if row in member_set:
                    total = total + _entry_matrix(
                        md, entry, node.terminal, flat_cache, dim
                    )
            return _matrix_signature(total)

        return key, None

    return factory
