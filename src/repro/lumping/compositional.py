"""``CompositionalLump`` (Figure 3b): lump an MD level by level.

For each level ``i``: compute ``P_i_ini``, run ``CompLumpingLevel``, then
replace every node of the level with its lumped version (Theorem 2 applied
node-locally):

* ordinary: ``Rhat_n(i~, j~) = R_n(s, C_j~)`` for the class representative
  ``s in C_i~`` — a formal sum, so no child matrix is ever expanded;
* exact:    ``Rhat_n(i~, j~) = R_n(C_i~, s)`` for the representative
  ``s in C_j~``.

Rewards and initial factors are lumped per level (line 7 of Figure 3b):
``f_i`` is constant on ordinary classes (taken from the representative) and
averaged for exact lumping; ``f_pi,i`` sums over class members, which under
the product combiner realizes ``pihat_ini(C) = pi_ini(C)``.

The node count per level never changes ("the compositional lumping
algorithm only replaces each MD node with a possibly smaller one and does
not create or delete any node" — Section 5); only node contents shrink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import LumpingError
from repro.lumping.local import (
    comp_lumping_level,
    initial_partition_exact,
    initial_partition_ordinary,
)
from repro.lumping.md_model import MDModel
from repro.matrixdiagram.md import MatrixDiagram
from repro.matrixdiagram.node import MDNode
from repro.partitions import Partition
from repro.robust import budgets, checkpoint, faults
from repro.robust.budgets import BudgetExceeded


@dataclass
class LevelReduction:
    """Size bookkeeping for one lumped level."""

    level: int
    original_size: int
    lumped_size: int

    @property
    def factor(self) -> float:
        """Original substates per lumped substate."""
        return self.original_size / max(1, self.lumped_size)


@dataclass
class SkippedLevel:
    """A level whose local lumping was skipped (graceful degradation).

    The level keeps the discrete (identity) partition, so the resulting
    MD is still a valid — just less lumped — representation: the level's
    contribution to the flattened CTMC is exactly the input's.
    """

    level: int
    reason: str


@dataclass
class CompositionalLumpingResult:
    """Outcome of :func:`compositional_lump`."""

    kind: str
    original: MDModel
    lumped: MDModel
    partitions: List[Partition]  # one per level
    reductions: List[LevelReduction] = field(default_factory=list)
    skipped_levels: List[SkippedLevel] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """Whether any level's lumping was skipped."""
        return bool(self.skipped_levels)

    @property
    def potential_reduction_factor(self) -> float:
        """Reduction of the potential product space."""
        return self.original.potential_size() / max(
            1, self.lumped.potential_size()
        )

    def class_tuple(self, state: Sequence[int]) -> Tuple[int, ...]:
        """Map per-level substates to per-level class indices."""
        out = []
        for level, substate in enumerate(state):
            partition = self.partitions[level]
            index_map = partition.block_index_map()
            out.append(index_map[partition.block_of(substate)])
        return tuple(out)

    def class_vectors(self) -> List[np.ndarray]:
        """Per level, the dense class index of every original substate."""
        return [
            np.asarray(p.state_class_vector(), dtype=np.int64)
            for p in self.partitions
        ]

    def project_potential_index(self, index: int) -> int:
        """Map an original potential-space index to the lumped one."""
        state = self.original.state_tuple(index)
        classes = self.class_tuple(state)
        lumped_index = 0
        for class_index, size in zip(classes, self.lumped.md.level_sizes):
            lumped_index = lumped_index * size + class_index
        return lumped_index

    def projection_vector(self) -> np.ndarray:
        """For every original state (reachable if restricted, else all
        potential states), the dense index of its lumped state."""
        class_vectors = self.class_vectors()
        lumped_sizes = self.lumped.md.level_sizes
        original_indices = (
            self.original.reachable
            if self.original.reachable is not None
            else range(self.original.potential_size())
        )
        lumped_reachable = self.lumped.reachable
        lumped_position: Optional[Dict[int, int]] = None
        if lumped_reachable is not None:
            lumped_position = {p: i for i, p in enumerate(lumped_reachable)}
        out = np.empty(
            len(original_indices)
            if not isinstance(original_indices, range)
            else original_indices.stop,
            dtype=np.int64,
        )
        for position, index in enumerate(original_indices):
            state = self.original.state_tuple(index)
            lumped_index = 0
            for level, substate in enumerate(state):
                lumped_index = (
                    lumped_index * lumped_sizes[level]
                    + int(class_vectors[level][substate])
                )
            if lumped_position is not None:
                lumped_index = lumped_position[lumped_index]
            out[position] = lumped_index
        return out

    def project_distribution(self, pi: np.ndarray) -> np.ndarray:
        """Aggregate a distribution over original states into the lumped
        state space (``pihat(C) = sum_{s in C} pi(s)``)."""
        projection = self.projection_vector()
        pi = np.asarray(pi, dtype=float)
        if pi.shape != projection.shape:
            raise LumpingError(
                f"distribution has shape {pi.shape}, expected {projection.shape}"
            )
        out = np.zeros(self.lumped.num_states())
        np.add.at(out, projection, pi)
        return out


def _lump_node(
    node: MDNode,
    partition: Partition,
    kind: str,
) -> MDNode:
    """Theorem 2 applied to a single node, on formal sums."""
    index_map = partition.block_index_map()
    class_of = partition.state_class_vector()
    representative = {}
    members: Dict[int, Tuple[int, ...]] = {}
    for block_id, dense in index_map.items():
        representative[dense] = partition.representative(block_id)
        members[dense] = partition.block(block_id)
    is_rep = [False] * partition.n
    for dense, rep in representative.items():
        is_rep[rep] = True

    new_entries: Dict[Tuple[int, int], object] = {}

    def accumulate(key: Tuple[int, int], entry) -> None:
        existing = new_entries.get(key)
        if existing is None:
            new_entries[key] = entry
        elif node.terminal:
            new_entries[key] = existing + entry
        else:
            new_entries[key] = existing + entry

    sizes = {dense: len(block) for dense, block in members.items()}
    for r, c, entry in node.entries():
        if kind == "ordinary":
            # Keep only the representative's row; sum over column classes.
            if not is_rep[r]:
                continue
            accumulate((class_of[r], class_of[c]), entry)
        else:
            # Keep only the representative's column; sum over row classes,
            # scaled by |C_col| / |C_row| (the aggregate-evolving exact
            # lumped matrix; see repro.lumping.state_level).  Applied per
            # level, the factors multiply across levels into the global
            # class-size ratio.
            if not is_rep[c]:
                continue
            scale = sizes[class_of[c]] / sizes[class_of[r]]
            if node.terminal:
                accumulate((class_of[r], class_of[c]), entry * scale)
            else:
                accumulate((class_of[r], class_of[c]), entry.scaled(scale))
    return MDNode(node.level, new_entries, terminal=node.terminal)


def _lumped_labels(
    md: MatrixDiagram, level: int, partition: Partition
) -> Optional[List[object]]:
    labels = md.level_labels(level)
    if labels is None:
        return None
    index_map = partition.block_index_map()
    out: List[object] = [None] * len(partition)
    for block_id, dense in index_map.items():
        block_members = partition.block(block_id)
        if len(block_members) == 1:
            out[dense] = labels[block_members[0]]
        else:
            out[dense] = tuple(labels[s] for s in block_members)
    return out


def compositional_lump(
    model: MDModel,
    kind: str = "ordinary",
    levels: Optional[Sequence[int]] = None,
    key: str = "formal",
    strategy: str = "paper",
    iterate: bool = False,
    degrade: bool = False,
    report=None,
    parallel=None,
) -> CompositionalLumpingResult:
    """Lump an MD-represented MRP level by level (Figure 3b).

    Parameters
    ----------
    model:
        The MD model (matrix diagram + decomposable rewards/initial).
    kind:
        ``"ordinary"`` or ``"exact"``.
    levels:
        The levels to lump (default: all).  Unlumped levels keep the
        discrete (identity) partition, which lets tests exercise
        Theorems 3/4 one level at a time.
    key:
        ``"formal"`` (paper) or ``"matrix"`` (ablation); see
        :func:`repro.lumping.local.comp_lumping_level`.
    strategy:
        Worklist strategy for the refinement engine.
    iterate:
        Extension beyond the paper's single pass: after lumping, lumped
        nodes that became structurally equal are merged (quasi-reduction),
        which can make the *formal-sum* condition succeed where it was
        previously blocked by two distinct-but-equal children (the
        incompleteness source the paper notes in Section 4).  Passes
        repeat until a fixed point.  The composed result is reported as a
        single :class:`CompositionalLumpingResult` whose per-level
        partitions are the compositions of all passes.
    degrade:
        Graceful degradation: when a level's local lumping fails (a
        :class:`~repro.errors.LumpingError`) or exhausts an active budget
        (:class:`~repro.robust.budgets.BudgetExceeded`), skip the level —
        it keeps the identity partition, the failure is recorded in
        ``skipped_levels`` (and in ``report`` when given), and lumping
        continues with the remaining levels.  The result is still a
        valid, just less-lumped, MD.  Without ``degrade`` such failures
        propagate.
    report:
        Optional :class:`~repro.robust.report.RunReport` that receives a
        fallback event per skipped level.
    parallel:
        An int or :class:`~repro.robust.pool.ParallelConfig`: run each
        level's per-node refinement on a fault-tolerant worker pool (see
        :func:`repro.lumping.local.comp_lumping_level`).  The result is
        bitwise-identical to the serial path's.
    """
    if not iterate:
        return _compositional_lump_once(
            model, kind, levels, key, strategy, degrade, report, parallel
        )
    current = model
    composed: Optional[CompositionalLumpingResult] = None
    pass_number = 0
    while True:
        # Each pass gets its own checkpoint scope so the per-level
        # snapshot keys of successive passes never collide.
        with checkpoint.scoped(f"pass{pass_number}"):
            result = _compositional_lump_once(
                current, kind, levels, key, strategy, degrade, report,
                parallel,
            )
        pass_number += 1
        composed = result if composed is None else _compose_results(
            composed, result
        )
        progressed = any(
            reduction.original_size != reduction.lumped_size
            for reduction in result.reductions
        )
        # Merge nodes that became equal so the next pass can see the
        # additional sharing.  Canonicalization (scale normalization +
        # quasi-reduction) also merges scalar multiples, which plain
        # reduction cannot.
        from repro.matrixdiagram.canonical import canonicalize

        reduced_md = canonicalize(result.lumped.md)
        merged = reduced_md.num_nodes < result.lumped.md.num_nodes
        if not progressed and not merged:
            return composed
        current = MDModel(
            reduced_md,
            level_rewards=result.lumped.level_rewards,
            level_initial=result.lumped.level_initial,
            reward_combiner=result.lumped.reward_combiner,
            reachable=result.lumped.reachable,
        )


def _compose_results(
    first: CompositionalLumpingResult, second: CompositionalLumpingResult
) -> CompositionalLumpingResult:
    """Compose two successive lumping passes into one result: the block of
    an original substate under the composition is its second-pass block's
    preimage through the first pass."""
    partitions: List[Partition] = []
    for p1, p2 in zip(first.partitions, second.partitions):
        class1 = p1.state_class_vector()
        class2 = p2.state_class_vector()
        labels = [class2[class1[s]] for s in range(p1.n)]
        partitions.append(Partition.from_labels(labels))
    reductions = [
        LevelReduction(
            level=r1.level,
            original_size=r1.original_size,
            lumped_size=len(partitions[r1.level - 1]),
        )
        for r1 in first.reductions
    ]
    return CompositionalLumpingResult(
        kind=first.kind,
        original=first.original,
        lumped=second.lumped,
        partitions=partitions,
        reductions=reductions,
        skipped_levels=first.skipped_levels + second.skipped_levels,
    )


def _compositional_lump_once(
    model: MDModel,
    kind: str,
    levels: Optional[Sequence[int]],
    key: str,
    strategy: str,
    degrade: bool = False,
    report=None,
    parallel=None,
) -> CompositionalLumpingResult:
    """One pass of Figure 3b."""
    if kind not in ("ordinary", "exact"):
        raise LumpingError(f"kind must be 'ordinary' or 'exact', not {kind!r}")
    md = model.md
    selected = (
        sorted(set(levels))
        if levels is not None
        else list(range(1, md.num_levels + 1))
    )
    for level in selected:
        if not 1 <= level <= md.num_levels:
            raise LumpingError(f"invalid level {level}")

    partitions: List[Partition] = []
    skipped: List[SkippedLevel] = []
    for level in range(1, md.num_levels + 1):
        if level not in selected:
            partitions.append(Partition.discrete(md.level_size(level)))
            continue
        try:
            faults.check("lumping.level")
            budgets.check_time("lumping")
            if kind == "ordinary":
                start = initial_partition_ordinary(model, level)
            else:
                start = initial_partition_exact(model, level)
            # Scope the refinement checkpoints per level, so a run killed
            # at level k resumes levels 1..k-1 from complete snapshots
            # and level k from its partial one.
            with checkpoint.scoped(f"level{level}"):
                partitions.append(
                    comp_lumping_level(
                        md, level, start, kind=kind, key=key,
                        strategy=strategy, parallel=parallel,
                    )
                )
        except (LumpingError, BudgetExceeded) as exc:
            if not degrade:
                raise
            # Graceful degradation: the level keeps the identity
            # partition, so its contribution to the flattened CTMC is
            # exactly the input's (valid, just not lumped).
            partitions.append(Partition.discrete(md.level_size(level)))
            reason = f"{type(exc).__name__}: {exc}"
            skipped.append(SkippedLevel(level=level, reason=reason))
            if report is not None:
                report.record_fallback(
                    stage="lumping",
                    requested=f"lump level {level}",
                    used="identity partition",
                    reason=reason,
                )

    return apply_partitions(model, partitions, kind, skipped_levels=skipped)


def apply_partitions(
    model: MDModel,
    partitions: Sequence[Partition],
    kind: str = "ordinary",
    skipped_levels: Sequence[SkippedLevel] = (),
) -> CompositionalLumpingResult:
    """Build the lumped model a given per-level partition list induces.

    This is the construction half of Figure 3b — replace every node with
    its lumped version (Theorem 2 node-locally), lump the per-level
    reward/initial vectors, and project the reachable set — separated
    from the refinement half so a caller that already *has* a valid
    partition (the parameter-sweep reuse gate,
    :mod:`repro.sweep.reuse`) can apply it without re-running the
    fixed-point iteration.  The caller is responsible for the
    partitions' validity: any per-level partition satisfying the
    lumpability condition yields exact results (Theorems 2/3/4 hold for
    every valid partition, coarsest or not).
    """
    if kind not in ("ordinary", "exact"):
        raise LumpingError(f"kind must be 'ordinary' or 'exact', not {kind!r}")
    md = model.md
    if len(partitions) != md.num_levels:
        raise LumpingError(
            f"{len(partitions)} partitions for a {md.num_levels}-level MD"
        )
    for level in range(1, md.num_levels + 1):
        if partitions[level - 1].n != md.level_size(level):
            raise LumpingError(
                f"level {level} partition covers {partitions[level - 1].n} "
                f"substates, level has {md.level_size(level)}"
            )
    partitions = list(partitions)
    skipped = list(skipped_levels)

    # Build the lumped MD: same node indices, shrunken contents.
    new_nodes: Dict[int, MDNode] = {}
    new_sizes: List[int] = []
    new_labels: Optional[List[List[object]]] = (
        [] if md.all_level_labels() is not None else None
    )
    for level in range(1, md.num_levels + 1):
        partition = partitions[level - 1]
        new_sizes.append(len(partition))
        if new_labels is not None:
            new_labels.append(_lumped_labels(md, level, partition))
        for index, node in md.nodes_at(level).items():
            new_nodes[index] = _lump_node(node, partition, kind)
    lumped_md = MatrixDiagram(
        new_sizes,
        new_nodes,
        md.root_index,
        level_state_labels=new_labels,
    )

    # Lump the per-level reward and initial vectors (Figure 3b, line 7).
    new_rewards: List[np.ndarray] = []
    new_initial: List[np.ndarray] = []
    for level in range(1, md.num_levels + 1):
        partition = partitions[level - 1]
        index_map = partition.block_index_map()
        rewards = model.level_rewards[level - 1]
        initial = model.level_initial[level - 1]
        r_hat = np.zeros(len(partition))
        pi_hat = np.zeros(len(partition))
        for block_id, dense in index_map.items():
            block = partition.block(block_id)
            if kind == "ordinary":
                r_hat[dense] = rewards[block[0]]
            else:
                r_hat[dense] = float(np.mean([rewards[s] for s in block]))
            pi_hat[dense] = float(sum(initial[s] for s in block))
        new_rewards.append(r_hat)
        new_initial.append(pi_hat)

    lumped_reachable = None
    if model.reachable is not None:
        lumped_sizes = lumped_md.level_sizes
        class_vectors = [
            np.asarray(p.state_class_vector(), dtype=np.int64)
            for p in partitions
        ]
        seen = set()
        for index in model.reachable:
            state = model.state_tuple(index)
            lumped_index = 0
            for level, substate in enumerate(state):
                lumped_index = (
                    lumped_index * lumped_sizes[level]
                    + int(class_vectors[level][substate])
                )
            seen.add(lumped_index)
        lumped_reachable = sorted(seen)

    lumped_model = MDModel(
        lumped_md,
        level_rewards=new_rewards,
        level_initial=new_initial,
        reward_combiner=model.reward_combiner,
        reachable=lumped_reachable,
    )
    reductions = [
        LevelReduction(
            level=level,
            original_size=md.level_size(level),
            lumped_size=len(partitions[level - 1]),
        )
        for level in range(1, md.num_levels + 1)
    ]
    return CompositionalLumpingResult(
        kind=kind,
        original=model,
        lumped=lumped_model,
        partitions=partitions,
        reductions=reductions,
        skipped_levels=skipped,
    )
