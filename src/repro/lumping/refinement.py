"""The generic partition-refinement engine (paper Figures 1b, 1c and 2).

``CompLumping`` repeatedly pops a potential splitter class ``C`` from a
worklist, computes ``sum(s) := K(R, s, C)`` for every state, and splits
every class into subclasses of equal ``sum``.  The key function ``K`` is
the plug point that makes the same engine compute

* ordinary state-level lumping (``K = R(s, C)``),
* exact state-level lumping (``K = R(C, s)``),
* MD-local ordinary/exact lumping (``K`` = formal-sum signatures, the
  paper's "set representation of the formal sum"),
* the concrete-matrix ablation variant.

The engine is expressed through a *splitter factory*: given the members of
the splitter class, it returns the key callable and (optionally) the set of
states whose key differs from the default — the sparsity information that
lets the engine skip classes a splitter cannot affect.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Optional, Tuple

from repro.errors import LumpingError
from repro.partitions import Partition
from repro.robust import budgets


@dataclass
class RefinementStats:
    """Work counters of one ``comp_lumping`` run.

    ``splitters_processed`` counts worklist pops (each evaluates one key
    function over the candidate states); ``blocks_split`` counts splits
    that actually refined a block; ``blocks_created`` counts new blocks.
    The "all-but-largest" strategy's advantage shows up directly in
    ``splitters_processed``.
    """

    splitters_processed: int = 0
    blocks_split: int = 0
    blocks_created: int = 0

#: A splitter factory: members of the splitter class -> (key, touched).
#: ``key(state)`` is the hashable ``sum(s)``; ``touched`` is an iterable of
#: the states whose key may differ from the default (``None`` = all states).
SplitterFactory = Callable[
    [Tuple[int, ...]],
    Tuple[Callable[[int], Hashable], Optional[Iterable[int]]],
]


def comp_lumping(
    num_states: int,
    splitter_factory: SplitterFactory,
    initial: Partition,
    strategy: str = "paper",
    stats: Optional[RefinementStats] = None,
) -> Partition:
    """Compute the coarsest partition refining ``initial`` that is stable
    under the key function (paper's ``CompLumping``, Figure 1b).

    Parameters
    ----------
    num_states:
        Size of the state space being partitioned.
    splitter_factory:
        See :data:`SplitterFactory`.
    initial:
        The initial partition ``P_ini`` (consumed by copy).
    strategy:
        ``"paper"`` pushes every subclass produced by a split back onto the
        worklist, exactly as in Figure 1c lines 5-7.  ``"all-but-largest"``
        relies on the split keeping the largest subclass under the parent's
        id and pushes only the split-off (smaller) subclasses — the
        Paige-Tarjan-style optimization of the underlying algorithm [9].
    stats:
        Optional :class:`RefinementStats` accumulator for work counters.

    Returns
    -------
    The refined partition.  With a correct key function it is the coarsest
    partition refining ``initial`` such that all states in a block have
    equal ``K(R, s, C)`` for every block ``C``.
    """
    if strategy not in ("paper", "all-but-largest"):
        raise LumpingError(f"unknown strategy {strategy!r}")
    if initial.n != num_states:
        raise LumpingError(
            f"initial partition is over {initial.n} states, expected {num_states}"
        )
    partition = initial.copy()
    worklist = deque(partition.block_ids())
    queued = set(worklist)

    def push(block_id: int) -> None:
        if block_id not in queued:
            queued.add(block_id)
            worklist.append(block_id)

    while worklist:
        budgets.charge_iterations(1, stage="refinement")
        splitter_id = worklist.popleft()
        queued.discard(splitter_id)
        members = partition.block(splitter_id)
        key, touched = splitter_factory(members)
        if stats is not None:
            stats.splitters_processed += 1
        if touched is None:
            candidate_blocks = list(partition.block_ids())
        else:
            candidate_blocks = sorted(
                {partition.block_of(s) for s in touched}
            )
        for block_id in candidate_blocks:
            created = partition.split_block(block_id, key)
            if not created:
                continue
            if stats is not None:
                stats.blocks_split += 1
                stats.blocks_created += len(created)
            for new_id in created:
                push(new_id)
            if strategy == "paper":
                push(block_id)
            # With "all-but-largest" the parent keeps the largest subclass
            # (guaranteed by Partition.split_block) and is only reprocessed
            # if it was already queued.
    return partition
