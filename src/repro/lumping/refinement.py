"""The generic partition-refinement engine (paper Figures 1b, 1c and 2).

``CompLumping`` repeatedly pops a potential splitter class ``C`` from a
worklist, computes ``sum(s) := K(R, s, C)`` for every state, and splits
every class into subclasses of equal ``sum``.  The key function ``K`` is
the plug point that makes the same engine compute

* ordinary state-level lumping (``K = R(s, C)``),
* exact state-level lumping (``K = R(C, s)``),
* MD-local ordinary/exact lumping (``K`` = formal-sum signatures, the
  paper's "set representation of the formal sum"),
* the concrete-matrix ablation variant.

The engine is expressed through a *splitter factory*: given the members of
the splitter class, it returns the key callable and (optionally) the set of
states whose key differs from the default — the sparsity information that
lets the engine skip classes a splitter cannot affect.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Optional, Tuple

from repro.errors import LumpingError
from repro.partitions import Partition
from repro.robust import budgets, checkpoint
from repro.robust.budgets import BudgetExceeded


@dataclass
class RefinementStats:
    """Work counters of one ``comp_lumping`` run.

    ``splitters_processed`` counts worklist pops (each evaluates one key
    function over the candidate states); ``blocks_split`` counts splits
    that actually refined a block; ``blocks_created`` counts new blocks.
    The "all-but-largest" strategy's advantage shows up directly in
    ``splitters_processed``.
    """

    splitters_processed: int = 0
    blocks_split: int = 0
    blocks_created: int = 0

#: A splitter factory: members of the splitter class -> (key, touched).
#: ``key(state)`` is the hashable ``sum(s)``; ``touched`` is an iterable of
#: the states whose key may differ from the default (``None`` = all states).
SplitterFactory = Callable[
    [Tuple[int, ...]],
    Tuple[Callable[[int], Hashable], Optional[Iterable[int]]],
]


def comp_lumping(
    num_states: int,
    splitter_factory: SplitterFactory,
    initial: Partition,
    strategy: str = "paper",
    stats: Optional[RefinementStats] = None,
) -> Partition:
    """Compute the coarsest partition refining ``initial`` that is stable
    under the key function (paper's ``CompLumping``, Figure 1b).

    Parameters
    ----------
    num_states:
        Size of the state space being partitioned.
    splitter_factory:
        See :data:`SplitterFactory`.
    initial:
        The initial partition ``P_ini`` (consumed by copy).
    strategy:
        ``"paper"`` pushes every subclass produced by a split back onto the
        worklist, exactly as in Figure 1c lines 5-7.  ``"all-but-largest"``
        relies on the split keeping the largest subclass under the parent's
        id and pushes only the split-off (smaller) subclasses — the
        Paige-Tarjan-style optimization of the underlying algorithm [9].
    stats:
        Optional :class:`RefinementStats` accumulator for work counters.

    Returns
    -------
    The refined partition.  With a correct key function it is the coarsest
    partition refining ``initial`` such that all states in a block have
    equal ``K(R, s, C)`` for every block ``C``.
    """
    if strategy not in ("paper", "all-but-largest"):
        raise LumpingError(f"unknown strategy {strategy!r}")
    if initial.n != num_states:
        raise LumpingError(
            f"initial partition is over {initial.n} states, expected {num_states}"
        )
    partition = initial.copy()
    worklist = deque(partition.block_ids())
    queued = set(worklist)

    ck = checkpoint.active()
    ck_key = ck_guard = None
    stats_base = None
    if ck is not None:
        ck_key = ck.sequence_key("refinement")
        ck_guard = {
            "n": num_states,
            "strategy": strategy,
            "initial": checkpoint.digest(
                repr(initial.canonical()).encode("utf-8")
            ),
        }
        if stats is not None:
            # The snapshot stores this call's *deltas*, so a shared
            # accumulator keeps counting correctly across a resume.
            stats_base = (
                stats.splitters_processed,
                stats.blocks_split,
                stats.blocks_created,
            )
        record = ck.load(ck_key, guard=ck_guard)
        if record is not None:
            payload = record["payload"]
            # Ids must be restored exactly: the worklist holds block ids,
            # and downstream renumbering is a function of the id order.
            partition = Partition.from_blocks_with_ids(
                num_states, payload["blocks"], next_id=payload["next_id"]
            )
            if stats is not None:
                delta = payload.get("stats") or (0, 0, 0)
                stats.splitters_processed = stats_base[0] + delta[0]
                stats.blocks_split = stats_base[1] + delta[1]
                stats.blocks_created = stats_base[2] + delta[2]
            if record["complete"]:
                return partition
            worklist = deque(int(b) for b in payload["worklist"])
            queued = set(worklist)

    def snapshot(complete: bool = False) -> None:
        payload = {
            "blocks": partition.blocks_with_ids(),
            "next_id": partition.next_block_id,
            "worklist": list(worklist),
        }
        if stats is not None and stats_base is not None:
            payload["stats"] = [
                stats.splitters_processed - stats_base[0],
                stats.blocks_split - stats_base[1],
                stats.blocks_created - stats_base[2],
            ]
        ck.save(ck_key, payload, guard=ck_guard, complete=complete)

    def push(block_id: int) -> None:
        if block_id not in queued:
            queued.add(block_id)
            worklist.append(block_id)

    try:
        while worklist:
            budgets.charge_iterations(1, stage="refinement")
            if ck is not None and ck.tick(ck_key):
                snapshot()
            splitter_id = worklist.popleft()
            queued.discard(splitter_id)
            members = partition.block(splitter_id)
            key, touched = splitter_factory(members)
            if stats is not None:
                stats.splitters_processed += 1
            if touched is None:
                candidate_blocks = list(partition.block_ids())
            else:
                candidate_blocks = sorted(
                    {partition.block_of(s) for s in touched}
                )
            for block_id in candidate_blocks:
                created = partition.split_block(block_id, key)
                if not created:
                    continue
                if stats is not None:
                    stats.blocks_split += 1
                    stats.blocks_created += len(created)
                for new_id in created:
                    push(new_id)
                if strategy == "paper":
                    push(block_id)
                # With "all-but-largest" the parent keeps the largest
                # subclass (guaranteed by Partition.split_block) and is
                # only reprocessed if it was already queued.
    except BudgetExceeded:
        # The budget hook sits at the top of the loop body, so the
        # partition and worklist are consistent here: persist them and
        # let the exception continue up.
        if ck is not None:
            snapshot()
        raise
    if ck is not None:
        snapshot(complete=True)
    return partition
