"""Wall-clock timing helpers used by the benchmark harness.

The paper's Table 1 reports state-space generation time and lumping time
separately; :class:`Stopwatch` lets the harness accumulate named phases and
report them in the same breakdown.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator


class Stopwatch:
    """Accumulates wall-clock time into named phases.

    >>> sw = Stopwatch()
    >>> with sw.phase("generation"):
    ...     pass
    >>> sw.total() >= 0.0
    True
    """

    def __init__(self) -> None:
        self._elapsed: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block and add it to phase ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._elapsed[name] = self._elapsed.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def elapsed(self, name: str) -> float:
        """Total seconds accumulated in phase ``name`` (0.0 if never timed)."""
        return self._elapsed.get(name, 0.0)

    def total(self) -> float:
        """Sum of all phases in seconds."""
        return sum(self._elapsed.values())

    def phases(self) -> Dict[str, float]:
        """A copy of the phase -> seconds mapping."""
        return dict(self._elapsed)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.3f}s" for k, v in self._elapsed.items())
        return f"Stopwatch({inner})"


@contextmanager
def timed() -> Iterator["_TimerResult"]:
    """Context manager yielding an object whose ``.seconds`` is the elapsed
    wall-clock time once the block exits.

    >>> with timed() as t:
    ...     pass
    >>> t.seconds >= 0.0
    True
    """
    result = _TimerResult()
    start = time.perf_counter()
    try:
        yield result
    finally:
        result.seconds = time.perf_counter() - start


class _TimerResult:
    """Mutable holder for the elapsed time of a :func:`timed` block."""

    def __init__(self) -> None:
        self.seconds = 0.0

    def __repr__(self) -> str:
        return f"_TimerResult(seconds={self.seconds:.6f})"
