"""Small shared utilities: timing, byte accounting, and table rendering."""

from repro.util.timing import Stopwatch, timed
from repro.util.tables import Table, format_bytes, format_seconds
from repro.util.numeric import (
    close,
    quantize,
    mixed_radix_index,
    mixed_radix_unindex,
)

__all__ = [
    "Stopwatch",
    "timed",
    "Table",
    "format_bytes",
    "format_seconds",
    "close",
    "quantize",
    "mixed_radix_index",
    "mixed_radix_unindex",
]
