"""Numeric helpers: tolerant comparison, rate quantization, mixed-radix maps,
hardened normalization, and extended-precision accumulation kernels.

Partition refinement compares floating-point transition rates for equality.
Raw ``==`` on floats computed through different summation orders is fragile,
so refinement keys are built from :func:`quantize`-d values: rates that agree
to within a relative tolerance map to the same key.

:func:`normalize` is the defensive probability-vector normalization used by
the certification layer (:mod:`repro.robust.certify`): instead of silently
propagating NaN or dividing by a (near-)zero mass, it raises a diagnostic
:class:`~repro.errors.SolverError` naming the defect.  The ``extended_*``
kernels accumulate in ``numpy.longdouble`` over COO triplets — a deliberately
different compute path from scipy's compiled CSR matvec, so a certificate's
residual recheck does not share failure modes with the solver it checks, and
the escalation ladder's final rung can refine a vector beyond float64.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import SolverError

#: Default relative tolerance used when quantizing rates into hashable keys.
DEFAULT_RTOL = 1e-9

#: Total mass at or below which :func:`normalize` treats a vector as
#: effectively zero (far below any honest probability mass, far above
#: denormal noise).
NEAR_ZERO_MASS = 1e-30


def close(a: float, b: float, rtol: float = DEFAULT_RTOL, atol: float = 1e-12) -> bool:
    """True if ``a`` and ``b`` are equal within the given tolerances."""
    return abs(a - b) <= max(atol, rtol * max(abs(a), abs(b)))


def quantize(value: float, digits: int = 9) -> float:
    """Round ``value`` to ``digits`` significant decimal digits.

    Quantized values are used as hashable stand-ins for rates inside
    refinement keys, so that rates differing only by floating-point noise
    compare equal.  ``digits=9`` keeps nine significant digits, far more
    precision than any model rate in practice while absorbing accumulation
    error from different summation orders.
    """
    if value == 0.0:
        return 0.0
    return float(f"{value:.{digits}e}")


def normalize(
    vector: "np.ndarray",
    *,
    name: str = "distribution",
    min_mass: float = NEAR_ZERO_MASS,
) -> "np.ndarray":
    """Normalize ``vector`` to unit total mass, defensively.

    Raises a diagnostic :class:`~repro.errors.SolverError` naming the
    defect — NaN entries, infinite entries, negative total mass, or a
    total at/below ``min_mass`` — instead of returning a NaN-bearing or
    meaningless vector for downstream code to trip over much later.
    Small negative entries (solver noise) are clipped to zero before
    summing; the caller is expected to have bounds-checked anything
    larger via the certificate's nonnegativity margin.
    """
    arr = np.asarray(vector, dtype=float).ravel()
    nan_count = int(np.isnan(arr).sum())
    inf_count = int(np.isinf(arr).sum())
    if nan_count or inf_count:
        raise SolverError(
            f"cannot normalize {name}: {nan_count} NaN and {inf_count} "
            f"infinite entr(ies) among {arr.size}"
        )
    clipped = np.clip(arr, 0.0, None)
    total = float(clipped.sum())
    if total <= min_mass:
        raise SolverError(
            f"cannot normalize {name}: total mass {total:.6e} is zero or "
            f"near zero (threshold {min_mass:.1e}; "
            f"min entry {float(arr.min()) if arr.size else 0.0:.6e})"
        )
    return clipped / total


def extended_matvec(
    pi: "np.ndarray",
    rows: "np.ndarray",
    cols: "np.ndarray",
    data: "np.ndarray",
    size: int,
) -> "np.ndarray":
    """``pi @ M`` accumulated in extended precision (``numpy.longdouble``).

    ``(rows, cols, data)`` are COO triplets of ``M``; the result has
    length ``size`` (the number of columns).  Accumulation runs through
    ``np.add.at`` over longdouble arrays — an independent compute path
    from scipy's compiled float64 CSR matvec, which is what makes it a
    *recheck* rather than a repetition.
    """
    pi_ld = np.asarray(pi, dtype=np.longdouble)
    data_ld = np.asarray(data, dtype=np.longdouble)
    out = np.zeros(size, dtype=np.longdouble)
    if data_ld.size:
        np.add.at(out, np.asarray(cols), pi_ld[np.asarray(rows)] * data_ld)
    return out


def extended_residual_inf(
    pi: "np.ndarray",
    rows: "np.ndarray",
    cols: "np.ndarray",
    data: "np.ndarray",
    size: int,
) -> float:
    """Infinity norm of ``pi @ M`` with extended-precision accumulation."""
    if np.asarray(pi).size == 0:
        return 0.0
    return float(np.abs(extended_matvec(pi, rows, cols, data, size)).max())


def extended_jacobi_refine(
    x0: "np.ndarray",
    rows: "np.ndarray",
    cols: "np.ndarray",
    data: "np.ndarray",
    diag: "np.ndarray",
    *,
    sweeps: int = 100,
    relaxation: float = 0.9,
    tol: Optional[float] = None,
) -> "np.ndarray":
    """Damped Jacobi sweeps of ``pi Q = 0`` in extended precision.

    ``(rows, cols, data)`` hold the *off-diagonal* entries of ``Q`` and
    ``diag`` its diagonal; ``x0`` seeds the iteration.  Each sweep
    computes ``pi <- (1-w) pi + w * (-(pi O) / d)`` in
    ``numpy.longdouble`` and renormalizes; stops early when the sweep
    delta drops below ``tol`` (when given).  Returns the refined vector
    as float64 via :func:`normalize` (so a collapsed refinement raises a
    diagnostic error instead of returning garbage).
    """
    if not 0 < relaxation <= 1:
        raise SolverError("relaxation must be in (0, 1]", method="float128")
    diag_ld = np.asarray(diag, dtype=np.longdouble)
    if diag_ld.size and np.any(diag_ld == 0):
        # An absorbing state: the chain is a single state (or not
        # irreducible, which the solvers reject before reaching here).
        return normalize(np.asarray(x0, dtype=float), name="refined vector")
    pi = np.asarray(x0, dtype=np.longdouble).copy()
    total = pi.sum()
    if total > 0:
        pi /= total
    size = int(diag_ld.size)
    for _ in range(max(0, int(sweeps))):
        step = -extended_matvec(pi, rows, cols, data, size) / diag_ld
        step_total = step.sum()
        if not step_total > 0:
            break
        new_pi = (1.0 - relaxation) * pi + relaxation * (step / step_total)
        new_pi /= new_pi.sum()
        delta = float(np.abs(new_pi - pi).max())
        pi = new_pi
        if tol is not None and delta < tol:
            break
    return normalize(np.asarray(pi, dtype=float), name="refined vector")


def mixed_radix_index(digits: Sequence[int], radices: Sequence[int]) -> int:
    """Map a tuple of per-level substate positions to a flat index.

    ``digits[i]`` is the position of the level-(i+1) substate within its
    level's local state space and ``radices[i]`` is that space's size.  The
    top level is the most significant digit, matching the nested block
    structure of a flattened matrix diagram (Section 3 of the paper).

    >>> mixed_radix_index((1, 0, 2), (2, 3, 4))
    14
    """
    if len(digits) != len(radices):
        raise ValueError("digits and radices must have equal length")
    index = 0
    for digit, radix in zip(digits, radices):
        if not 0 <= digit < radix:
            raise ValueError(f"digit {digit} out of range for radix {radix}")
        index = index * radix + digit
    return index


def mixed_radix_unindex(index: int, radices: Sequence[int]) -> Tuple[int, ...]:
    """Inverse of :func:`mixed_radix_index`.

    >>> mixed_radix_unindex(14, (2, 3, 4))
    (1, 0, 2)
    """
    if index < 0:
        raise ValueError("index must be non-negative")
    digits = []
    for radix in reversed(radices):
        digits.append(index % radix)
        index //= radix
    if index:
        raise ValueError("index out of range for the given radices")
    return tuple(reversed(digits))


def strides(radices: Sequence[int]) -> Tuple[int, ...]:
    """Number of flat indices spanned by one step of each level's substate.

    >>> strides((2, 3, 4))
    (12, 4, 1)
    """
    out = [1] * len(radices)
    for i in range(len(radices) - 2, -1, -1):
        out[i] = out[i + 1] * radices[i + 1]
    return tuple(out)
