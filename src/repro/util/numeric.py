"""Numeric helpers: tolerant comparison, rate quantization, mixed-radix maps.

Partition refinement compares floating-point transition rates for equality.
Raw ``==`` on floats computed through different summation orders is fragile,
so refinement keys are built from :func:`quantize`-d values: rates that agree
to within a relative tolerance map to the same key.
"""

from __future__ import annotations

from typing import Sequence, Tuple

#: Default relative tolerance used when quantizing rates into hashable keys.
DEFAULT_RTOL = 1e-9


def close(a: float, b: float, rtol: float = DEFAULT_RTOL, atol: float = 1e-12) -> bool:
    """True if ``a`` and ``b`` are equal within the given tolerances."""
    return abs(a - b) <= max(atol, rtol * max(abs(a), abs(b)))


def quantize(value: float, digits: int = 9) -> float:
    """Round ``value`` to ``digits`` significant decimal digits.

    Quantized values are used as hashable stand-ins for rates inside
    refinement keys, so that rates differing only by floating-point noise
    compare equal.  ``digits=9`` keeps nine significant digits, far more
    precision than any model rate in practice while absorbing accumulation
    error from different summation orders.
    """
    if value == 0.0:
        return 0.0
    return float(f"{value:.{digits}e}")


def mixed_radix_index(digits: Sequence[int], radices: Sequence[int]) -> int:
    """Map a tuple of per-level substate positions to a flat index.

    ``digits[i]`` is the position of the level-(i+1) substate within its
    level's local state space and ``radices[i]`` is that space's size.  The
    top level is the most significant digit, matching the nested block
    structure of a flattened matrix diagram (Section 3 of the paper).

    >>> mixed_radix_index((1, 0, 2), (2, 3, 4))
    14
    """
    if len(digits) != len(radices):
        raise ValueError("digits and radices must have equal length")
    index = 0
    for digit, radix in zip(digits, radices):
        if not 0 <= digit < radix:
            raise ValueError(f"digit {digit} out of range for radix {radix}")
        index = index * radix + digit
    return index


def mixed_radix_unindex(index: int, radices: Sequence[int]) -> Tuple[int, ...]:
    """Inverse of :func:`mixed_radix_index`.

    >>> mixed_radix_unindex(14, (2, 3, 4))
    (1, 0, 2)
    """
    if index < 0:
        raise ValueError("index must be non-negative")
    digits = []
    for radix in reversed(radices):
        digits.append(index % radix)
        index //= radix
    if index:
        raise ValueError("index out of range for the given radices")
    return tuple(reversed(digits))


def strides(radices: Sequence[int]) -> Tuple[int, ...]:
    """Number of flat indices spanned by one step of each level's substate.

    >>> strides((2, 3, 4))
    (12, 4, 1)
    """
    out = [1] * len(radices)
    for i in range(len(radices) - 2, -1, -1):
        out[i] = out[i + 1] * radices[i + 1]
    return tuple(out)
