"""Plain-text table rendering for the benchmark harness.

The harness prints the same rows Table 1 of the paper reports; this module
keeps the formatting in one place so every bench renders consistently.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_bytes(num_bytes: int) -> str:
    """Render a byte count the way the paper does (KB with one decimal).

    >>> format_bytes(53900)
    '52.6 KB'
    """
    if num_bytes < 1024:
        return f"{num_bytes} B"
    if num_bytes < 1024 * 1024:
        return f"{num_bytes / 1024:.1f} KB"
    return f"{num_bytes / (1024 * 1024):.1f} MB"


def format_seconds(seconds: float) -> str:
    """Render seconds with two decimals, as in Table 1.

    >>> format_seconds(0.804)
    '0.80 s'
    """
    return f"{seconds:.2f} s"


class Table:
    """A minimal fixed-width text table.

    >>> t = Table(["J", "overall"])
    >>> t.add_row([1, 22100])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    J | overall
    --+--------
    1 | 22100
    """

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, cells: Iterable[object]) -> None:
        """Append a row; cells are stringified with ``str``."""
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Render the table (and title, if any) as a string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(
            " | ".join(h.ljust(w) for h, w in zip(self.headers, widths)).rstrip()
        )
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
