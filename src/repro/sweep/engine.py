"""The sweep engine: one crash-safe job per rate point, failure-isolated.

``run_sweep`` drives every point of a sweep spec through the durable
analysis service: each point becomes a service job (batch-submitted, so
identical points coalesce and cache hits complete instantly), the
engine claims and solves them in deterministic plan order, publishes
certified results to the content cache, and records each terminal
outcome in the :class:`~repro.sweep.frontier.SweepFrontier`.  A killed
driver loses at most the point it was solving; ``resume=True`` replays
nothing that the frontier already recorded.

Three optimizations ride on the robustness substrate, each with an
explicit fallback:

* **partition reuse** — the base model is lumped once (the *anchor*);
  every point first tries :func:`~repro.sweep.reuse.lump_with_reuse`,
  which re-proves the anchor partition's validity on the derived model
  before applying it, and re-lumps from scratch (recorded in the
  :class:`~repro.robust.report.RunReport`) when the proof fails.
* **warm starts** — iterative solves seed from the nearest solved
  neighbor's stationary vector (log-factor distance, lowest plan index
  on ties), read back from the cache so an uninterrupted run and a
  resumed one see byte-identical seeds.
* **failure isolation** — a point that diverges, faults, or fails
  certification walks a quarantine ladder (retry with backoff → cold
  start with fresh lumping → terminally ``failed``), always with a
  condemning certificate attached to the ``failed`` record.  The sweep
  itself always completes with a full per-point outcome table.

The deterministic fault site ``sweep.point`` fires (position-addressed
by plan index) at the start of every solve attempt; ``sweep.frontier``
fires before every frontier write (see :mod:`repro.sweep.frontier`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis import lump_and_solve
from repro.errors import LumpingError, SolverError, SweepError
from repro.lumping.compositional import (
    CompositionalLumpingResult,
    compositional_lump,
)
from repro.lumping.md_model import MDModel
from repro.robust import faults
from repro.robust.budgets import BudgetExceeded
from repro.robust.faults import InjectedFault
from repro.robust.report import RunReport
from repro.service import store as job_store
from repro.service.cache import ResultCache
from repro.service.spec import canonical_digest, model_from_spec, solve_params
from repro.service.store import DEFAULT_LEASE_SECONDS, JobStore
from repro.service.worker import payload_from_solution
from repro.sweep.frontier import POINT_DONE, POINT_FAILED, SweepFrontier
from repro.sweep.spec import (
    RatePoint,
    apply_point,
    nearest_neighbor,
    normalize_sweep_spec,
    point_spec,
    sweep_points,
)
from repro.sweep.reuse import lump_with_reuse

#: Base backoff between quarantine-ladder attempts (seconds); attempt
#: ``k`` waits ``k`` times this.  Short by design — the ladder handles
#: deterministic failures, not transient infrastructure.
DEFAULT_BACKOFF_SECONDS = 0.05

#: How long to wait for a coalesced/backing-off job to become claimable.
CLAIM_POLL_SECONDS = 0.05


def default_frontier_dir(store_root: str, sweep_digest: str) -> str:
    """Where a sweep's frontier lives when the caller does not choose:
    inside the job store, keyed by the sweep digest, so two different
    sweeps against one store never collide."""
    return os.path.join(store_root, "sweep", sweep_digest[:12])


@dataclass
class PointOutcome:
    """Terminal outcome of one sweep point."""

    index: int
    point_id: str
    spec_digest: str
    status: str  # "done" | "failed"
    factors: Dict[str, float]
    job_id: Optional[str] = None
    error: Optional[str] = None
    certificate: Optional[dict] = None
    stationary: Optional[List[float]] = None
    solve_method: Optional[str] = None
    stats: Dict[str, Any] = field(default_factory=dict)

    def record(self) -> dict:
        """The frontier record (everything but the stationary vector,
        which lives in the content cache under ``spec_digest``)."""
        return {
            "index": self.index,
            "spec_digest": self.spec_digest,
            "status": self.status,
            "factors": self.factors,
            "job_id": self.job_id,
            "error": self.error,
            "solve_method": self.solve_method,
            "stats": self.stats,
        }


@dataclass
class SweepStats:
    """Honest accounting of what the sweep engine did (and skipped)."""

    points: int = 0
    done: int = 0
    failed: int = 0
    replayed: int = 0  # terminal in the frontier before this run
    cache_hits: int = 0
    reuse_hits: int = 0
    relumps: int = 0
    warm_started: int = 0
    warm_unavailable: int = 0
    fallback_to_cold: int = 0
    retries: int = 0
    solve_iterations: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class SweepResult:
    """Everything a sweep run produced."""

    sweep_digest: str
    outcomes: List[PointOutcome]
    stats: SweepStats
    report: RunReport

    @property
    def completed(self) -> bool:
        """Every point reached a terminal outcome."""
        return len(self.outcomes) == self.stats.points

    def table(self) -> dict:
        """The JSON-compatible per-point outcome table."""
        return {
            "sweep_digest": self.sweep_digest,
            "stats": self.stats.to_dict(),
            "points": [
                {
                    "index": o.index,
                    "point_id": o.point_id,
                    "status": o.status,
                    "factors": o.factors,
                    "spec_digest": o.spec_digest,
                    "job_id": o.job_id,
                    "error": o.error,
                    "solve_method": o.solve_method,
                    "stationary": o.stationary,
                    "certificate": o.certificate,
                    "stats": o.stats,
                }
                for o in self.outcomes
            ],
        }


def _condemning_certificate(
    exc: BaseException,
    lumped_ctmc: Optional[Any],
    method: str,
    kind: str,
) -> dict:
    """The certificate a terminally failed point carries as diagnosis.

    Preference order: the failing certificate the exception already
    carries (an exhausted escalation ladder); else a fresh
    :func:`~repro.robust.certify.certify_stationary` run over the
    solver's last iterate (or the uniform vector) against the lumped
    chain — real numerical evidence of *how* the answer is wrong; else,
    when not even a lumped chain exists, a synthetic failed certificate
    naming the error.
    """
    from repro.robust.certify import Certificate, CertificateCheck

    carried = getattr(exc, "certificate", None)
    if carried is not None and hasattr(carried, "to_dict"):
        return dict(carried.to_dict())
    if lumped_ctmc is not None:
        from repro.robust.certify import certify_stationary

        vector = getattr(exc, "last_iterate", None)
        if vector is None:
            n = lumped_ctmc.num_states
            vector = np.full(n, 1.0 / n)
        return dict(
            certify_stationary(
                np.asarray(vector, dtype=float),
                lumped_ctmc,
                method=method,
                kind=kind,
            ).to_dict()
        )
    return dict(
        Certificate(
            passed=False,
            checks=[
                CertificateCheck(
                    name="solve",
                    passed=False,
                    detail=f"{type(exc).__name__}: {exc}",
                )
            ],
            method=method,
            kind=kind,
        ).to_dict()
    )


class SweepEngine:
    """Drives one sweep spec to completion against a job store."""

    def __init__(
        self,
        sweep_spec: dict,
        store_root: str,
        *,
        frontier_dir: Optional[str] = None,
        resume: bool = False,
        report: Optional[RunReport] = None,
        queue_limit: Optional[int] = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
        worker_id: Optional[str] = None,
        sleep: Callable[[float], None] = time.sleep,
        progress: Optional[Callable[[PointOutcome], None]] = None,
    ) -> None:
        self.spec = normalize_sweep_spec(sweep_spec)
        self.sweep_digest = canonical_digest(self.spec)
        self.points = sweep_points(self.spec)
        self.base_model = model_from_spec(self.spec["base"])
        self.params = solve_params(self.spec["base"])
        self.report = report if report is not None else RunReport()
        self.store = JobStore(store_root)
        self.cache = ResultCache(os.path.join(store_root, "cache"))
        self.queue_limit = queue_limit
        self.lease_seconds = float(lease_seconds)
        self.backoff_seconds = float(backoff_seconds)
        self.worker_id = worker_id or f"sweep-{os.getpid()}"
        self.sleep = sleep
        self.progress = progress
        self.resume = resume
        if frontier_dir is None:
            frontier_dir = default_frontier_dir(
                store_root, self.sweep_digest
            )
        self.frontier = SweepFrontier(
            frontier_dir,
            self.sweep_digest,
            len(self.points),
            resume=resume,
        )
        self.stats = SweepStats(points=len(self.points))
        # Deterministic per-point derived specs and cache keys.  The
        # derived model built for each spec is kept so the solve path
        # does not rebuild (and re-validate) it.
        self.derived: List[Tuple[RatePoint, dict, str]] = []
        self._derived_models: Dict[int, MDModel] = {}
        for point in self.points:
            derived_model = apply_point(
                self.base_model, self.spec["sites"], point.factor_map()
            )
            spec = point_spec(
                self.spec["base"],
                self.base_model,
                self.spec["sites"],
                point,
                derived=derived_model,
            )
            self.derived.append((point, spec, canonical_digest(spec)))
            self._derived_models[point.index] = derived_model
        self._iterative = self.params["method"] != "direct"
        self._anchor: Optional[CompositionalLumpingResult] = None
        # A point differs from the base model exactly at its site
        # nodes, so the reuse proof's stability scan (but never its
        # initial-condition check) is narrowed to these.
        self._site_nodes = frozenset(
            index
            for nodes in self.spec["sites"].values()
            for index in nodes
        )

    # ------------------------------------------------------------------

    @property
    def anchor(self) -> CompositionalLumpingResult:
        """The base model's lumping — computed once per run, from the
        *base* model (not the first point), so the reuse anchor is the
        same in an uninterrupted run and every resumed one."""
        if self._anchor is None:
            self._anchor = compositional_lump(
                self.base_model,
                kind=self.params["kind"],
                key=self.params["key"],
                iterate=self.params["iterate"],
            )
        return self._anchor

    def run(self) -> SweepResult:
        """Run (or resume) the sweep to a full per-point outcome table."""
        if self.resume:
            # A killed driver leaves leased/running jobs behind; the
            # standard recovery scan requeues them before we re-claim.
            self.store.recover(report=self.report)
        self._submit_pending()
        solved: List[Tuple[RatePoint, str]] = []
        outcomes: List[PointOutcome] = []
        for point, spec, digest in self.derived:
            existing = self.frontier.lookup(point.point_id)
            if existing is not None:
                outcome = self._outcome_from_record(point, existing)
                self.stats.replayed += 1
            else:
                outcome = self._process_point(point, spec, digest, solved)
                self.frontier.record(point.point_id, outcome.record())
            outcomes.append(outcome)
            if outcome.status == POINT_DONE:
                self.stats.done += 1
                solved.append((point, digest))
            else:
                self.stats.failed += 1
            if self.progress is not None:
                self.progress(outcome)
        return SweepResult(
            sweep_digest=self.sweep_digest,
            outcomes=outcomes,
            stats=self.stats,
            report=self.report,
        )

    # ------------------------------------------------------------------

    def _submit_pending(self) -> None:
        """Sweep-batch submission: one job per point that has neither a
        frontier record nor a registered primary job yet."""
        pending = set(
            self.frontier.pending([p.point_id for p in self.points])
        )
        to_submit = [
            (spec, digest)
            for point, spec, digest in self.derived
            if point.point_id in pending
            and self.store.primary_for(digest) is None
        ]
        submitted = self.store.submit_batch(
            [spec for spec, _ in to_submit],
            queue_limit=self.queue_limit,
            cache=self.cache,
            report=self.report,
            digests=[digest for _, digest in to_submit],
        )
        shed = sum(1 for outcome in submitted if outcome.shed)
        if shed:
            raise SweepError(
                f"{shed} of {len(to_submit)} point submissions shed by "
                f"queue_limit={self.queue_limit}; raise the limit or "
                "drain the store before sweeping"
            )

    def _outcome_from_record(
        self, point: RatePoint, record: dict
    ) -> PointOutcome:
        """Rehydrate a frontier record (a point finished in an earlier
        run); the stationary vector comes back from the cache."""
        digest = str(record.get("spec_digest"))
        outcome = PointOutcome(
            index=point.index,
            point_id=point.point_id,
            spec_digest=digest,
            status=str(record.get("status")),
            factors=point.factor_map(),
            job_id=record.get("job_id"),
            error=record.get("error"),
            solve_method=record.get("solve_method"),
            stats=dict(record.get("stats") or {}),
        )
        if outcome.status == POINT_DONE:
            entry = self.cache.get(digest, report=self.report)
            if entry is not None:
                outcome.stationary = list(entry["result"]["stationary"])
        else:
            outcome.certificate = self._failure_certificate(outcome.job_id)
        return outcome

    def _failure_certificate(
        self, job_id: Optional[str]
    ) -> Optional[dict]:
        """The condemning certificate a failed job's record carries."""
        if job_id is None:
            return None
        try:
            view = self.store.view(job_id)
        except job_store.StoreError:
            return None
        last = view.last or {}
        detail = last.get("detail") or {}
        certificate = detail.get("certificate")
        return dict(certificate) if isinstance(certificate, dict) else None

    # ------------------------------------------------------------------

    def _claim(self, job_id: str) -> Optional[Any]:
        """Claim the point's job, waiting out requeue backoff; returns
        the leased view, or ``None`` when the job is already terminal
        (another worker, or a pre-kill completion).

        A killed driver leaves its in-flight point leased; the startup
        recovery scan only requeues leases that have *already* expired,
        so when we find a held lease we re-run recovery as soon as it
        expires instead of waiting for a dispatcher that may never run.
        """
        while True:
            view = self.store.view(job_id)
            if view.terminal:
                return None
            claimed = self.store.claim(
                job_id, self.worker_id, self.lease_seconds
            )
            if claimed is not None:
                return claimed
            if view.lease_expired(float(self.store.clock())):
                self.store.recover(report=self.report)
                continue
            self.sleep(CLAIM_POLL_SECONDS)

    def _process_point(
        self,
        point: RatePoint,
        spec: dict,
        digest: str,
        solved: List[Tuple[RatePoint, str]],
    ) -> PointOutcome:
        outcome = PointOutcome(
            index=point.index,
            point_id=point.point_id,
            spec_digest=digest,
            status=POINT_FAILED,
            factors=point.factor_map(),
        )
        job_id = self.store.primary_for(digest)
        if job_id is None:
            # The submitter's byhash registration was lost (killed
            # mid-submit and gc'd); submit fresh.
            submitted = self.store.submit(
                spec, cache=self.cache, report=self.report
            )
            job_id = submitted.job_id
            if job_id is None:
                raise SweepError(
                    f"point {point.point_id}: resubmission shed"
                )
        outcome.job_id = job_id
        leased = self._claim(job_id)
        if leased is None:
            return self._absorb_terminal_job(point, digest, outcome)
        running = self.store.start_running(
            leased, self.worker_id, self.lease_seconds
        )
        if running is None:
            # Lost the lease race; fall back to whatever terminal state
            # the winner produces.
            return self._absorb_terminal_job(point, digest, outcome)
        cached = self.cache.get(digest, report=self.report)
        if cached is not None:
            self.store.complete(
                running, self.worker_id, "cache", cached["digest"]
            )
            self.stats.cache_hits += 1
            outcome.status = POINT_DONE
            outcome.stationary = list(cached["result"]["stationary"])
            outcome.solve_method = cached["result"].get("solve_method")
            outcome.stats = {"source": "cache"}
            return outcome
        return self._solve_point(point, digest, running, solved, outcome)

    def _absorb_terminal_job(
        self, point: RatePoint, digest: str, outcome: PointOutcome
    ) -> PointOutcome:
        """A point whose job is already terminal (cache hit at submit,
        a pre-kill completion, or a concurrent worker)."""
        view = self.store.view(outcome.job_id)
        last = view.last or {}
        detail = last.get("detail") or {}
        if view.state == job_store.DONE:
            entry = self.cache.get(digest, report=self.report)
            if entry is not None:
                outcome.status = POINT_DONE
                outcome.stationary = list(entry["result"]["stationary"])
                outcome.solve_method = entry["result"].get("solve_method")
                outcome.stats = {"source": detail.get("source", "cache")}
                self.stats.cache_hits += 1
                return outcome
            outcome.error = (
                f"job {outcome.job_id} is done but its cache entry is "
                "missing or corrupt"
            )
        else:
            outcome.error = detail.get(
                "error", f"job {outcome.job_id} ended {view.state}"
            )
            certificate = detail.get("certificate")
            if isinstance(certificate, dict):
                outcome.certificate = dict(certificate)
        outcome.status = POINT_FAILED
        return outcome

    # ------------------------------------------------------------------

    def _warm_vector(
        self,
        point: RatePoint,
        solved: List[Tuple[RatePoint, str]],
    ) -> Tuple[Optional[np.ndarray], Optional[int]]:
        """The nearest solved neighbor's stationary vector (from the
        cache, so seeds are byte-identical across resume), or ``None``."""
        if not self._iterative or not solved:
            return None, None
        by_point = {p.index: d for p, d in solved}
        neighbor = nearest_neighbor(point, [p for p, _ in solved])
        if neighbor is None:
            return None, None
        entry = self.cache.get(by_point[neighbor.index], report=self.report)
        if entry is None:
            return None, None
        vector = np.asarray(entry["result"]["stationary"], dtype=float)
        return vector, neighbor.index

    def _solve_point(
        self,
        point: RatePoint,
        digest: str,
        running: Any,
        solved: List[Tuple[RatePoint, str]],
        outcome: PointOutcome,
    ) -> PointOutcome:
        """The quarantine ladder: warm attempt, one retry with backoff,
        then a cold start; an exhausted ladder fails the job with a
        condemning certificate."""
        point_model = self._derived_models[point.index]
        warm, warm_source = self._warm_vector(point, solved)
        if self._iterative and solved and warm is None:
            self.stats.warm_unavailable += 1
        ladder = [
            ("warm" if warm is not None else "initial", True, warm),
            ("retry", True, warm),
            ("cold", False, None),
        ]
        last_error: Optional[BaseException] = None
        last_lumping: Optional[CompositionalLumpingResult] = None
        for attempt_number, (label, try_reuse, seed) in enumerate(
            ladder, start=1
        ):
            if attempt_number > 1:
                self.stats.retries += 1
                self.sleep(self.backoff_seconds * (attempt_number - 1))
                # The first attempt runs on the lease claim just
                # granted; later attempts renew it after backoff sleep.
                renewed = self.store.renew(
                    running, self.worker_id, self.lease_seconds
                )
                if renewed is not None:
                    running = renewed
            point_report = RunReport()
            started = time.perf_counter()
            try:
                faults.check_at("sweep.point", point.index)
                reused = False
                lumping: Optional[CompositionalLumpingResult] = None
                if try_reuse:
                    lumping, reused = lump_with_reuse(
                        point_model,
                        self.anchor,
                        key=self.params["key"],
                        iterate=self.params["iterate"],
                        report=point_report,
                        sites=self.spec["sites"],
                        factors=point.factor_map(),
                        changed_nodes=self._site_nodes,
                    )
                    last_lumping = lumping
                x0 = seed
                if (
                    lumping is not None
                    and x0 is not None
                    and x0.size != lumping.lumped.num_states()
                ):
                    # A re-lumped neighbor lives on a different lumped
                    # space; seeding across spaces is meaningless.
                    x0 = None
                solution = lump_and_solve(
                    point_model,
                    kind=self.params["kind"],
                    method=self.params["method"],
                    iterate=self.params["iterate"],
                    key=self.params["key"],
                    robust=True,
                    report=point_report,
                    certify=bool(self.params["certify"]),
                    lumping=lumping,
                    x0=x0,
                )
            except BudgetExceeded:
                raise
            except (SolverError, LumpingError, InjectedFault) as exc:
                last_error = exc
                self.report.merge(point_report)
                self.report.record_attempt(
                    stage="sweep.point",
                    name=f"{point.point_id}:{label}",
                    succeeded=False,
                    seconds=time.perf_counter() - started,
                    error=f"{type(exc).__name__}: {exc}",
                )
                continue
            # Success: publish, complete, account.
            self.report.merge(point_report)
            self.report.record_attempt(
                stage="sweep.point",
                name=f"{point.point_id}:{label}",
                succeeded=True,
                seconds=time.perf_counter() - started,
            )
            iterations = sum(
                a.iterations or 0
                for a in point_report.attempts
                if a.stage == "solve"
            )
            self.stats.solve_iterations += iterations
            if reused:
                self.stats.reuse_hits += 1
            elif try_reuse or label == "cold":
                self.stats.relumps += 1
            warm_used = x0 is not None
            if warm_used:
                self.stats.warm_started += 1
            if label == "cold" and warm is not None:
                self.stats.fallback_to_cold += 1
            payload = payload_from_solution(solution)
            certificate = (
                None
                if solution.certificate is None
                else solution.certificate.to_dict()
            )
            entry_digest = self.cache.put(
                digest, payload, certificate=certificate
            )
            self.store.complete(
                running, self.worker_id, "solve", entry_digest
            )
            outcome.status = POINT_DONE
            outcome.stationary = payload["stationary"]
            outcome.solve_method = payload["solve_method"]
            outcome.stats = {
                "attempt": label,
                "attempts": attempt_number,
                "reused_partition": reused,
                "warm_started": warm_used,
                "warm_source": warm_source if warm_used else None,
                "iterations": iterations,
            }
            return outcome
        # Ladder exhausted: quarantine the point as terminally failed,
        # with the condemning certificate as diagnosis.
        assert last_error is not None
        # The lumped chain is only flattened here, on the failure path —
        # successful points never pay for the condemnation evidence.
        last_ctmc = (
            None
            if last_lumping is None
            else last_lumping.lumped.flat_ctmc()
        )
        certificate = _condemning_certificate(
            last_error,
            last_ctmc,
            method=self.params["method"],
            kind=self.params["kind"],
        )
        outcome.status = POINT_FAILED
        outcome.error = f"{type(last_error).__name__}: {last_error}"
        outcome.certificate = certificate
        outcome.stats = {
            "attempts": len(ladder),
            "warm_source": warm_source,
        }
        self.report.note(
            f"sweep: point {point.point_id} quarantined after "
            f"{len(ladder)} attempt(s): {outcome.error}"
        )
        self.store.fail(
            running, self.worker_id, outcome.error, certificate=certificate
        )
        return outcome


def run_sweep(sweep_spec: dict, store_root: str, **kwargs: Any) -> SweepResult:
    """Convenience wrapper: build a :class:`SweepEngine` and run it."""
    return SweepEngine(sweep_spec, store_root, **kwargs).run()
