"""Failure-isolated, crash-resumable parameter sweeps over MD models.

A sweep takes a base job spec plus a grid (or explicit list) of rate
points and drives every point through the durable analysis service as
one crash-safe job each: a checkpointed frontier records per-point
terminal outcomes so ``--resume`` replays nothing, a proof-gated
partition-reuse path and nearest-neighbor warm starts make the
incremental re-analysis cheap, and a per-point quarantine ladder keeps
one divergent point from sinking the sweep.  See ``docs/sweep.md``.

Run one from the command line with ``python -m repro.sweep``.
"""

from repro.sweep.engine import (
    PointOutcome,
    SweepEngine,
    SweepResult,
    SweepStats,
    run_sweep,
)
from repro.sweep.frontier import (
    POINT_DONE,
    POINT_FAILED,
    POINT_STATES,
    SweepFrontier,
)
from repro.sweep.reuse import (
    lump_with_reuse,
    partition_reuse_proof,
)
from repro.sweep.spec import (
    SWEEP_FORMAT,
    RatePoint,
    apply_point,
    auto_sites,
    nearest_neighbor,
    normalize_sweep_spec,
    point_spec,
    sweep_digest,
    sweep_points,
)

__all__ = [
    "SWEEP_FORMAT",
    "POINT_DONE",
    "POINT_FAILED",
    "POINT_STATES",
    "RatePoint",
    "PointOutcome",
    "SweepEngine",
    "SweepFrontier",
    "SweepResult",
    "SweepStats",
    "apply_point",
    "auto_sites",
    "lump_with_reuse",
    "nearest_neighbor",
    "normalize_sweep_spec",
    "partition_reuse_proof",
    "point_spec",
    "run_sweep",
    "sweep_digest",
    "sweep_points",
]
