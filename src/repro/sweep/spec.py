"""Sweep specs: an MD model plus a grid/list of rate points.

A *sweep spec* names a base job spec (the :mod:`repro.service.spec`
format — model, solve parameters), a set of **rate sites** (named lists
of MD node indices whose entries carry the swept rates), and either an
explicit point list or a per-site factor grid (expanded as a cartesian
product in sorted-site order).  Each point scales every entry of its
sites' nodes by the point's factor — terminal entries directly, formal
sums through :meth:`~repro.matrixdiagram.formal_sum.FormalSum.scaled` —
producing a *derived model* and, through
:func:`~repro.service.spec.spec_from_model`, a derived job spec whose
canonical digest is the service cache key.  Identical points therefore
coalesce across sweeps exactly like identical submissions coalesce in
the durable service.

The plan order (``sweep_points``) is deterministic: point ``k`` of a
spec is always the same transform, so a resumed sweep and an
uninterrupted one agree on point identity, processing order, and
warm-start provenance.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SweepError
from repro.lumping.md_model import MDModel
from repro.matrixdiagram.md import MatrixDiagram
from repro.matrixdiagram.node import MDNode
from repro.service.spec import (
    canonical_digest,
    solve_params,
    spec_from_model,
)

#: Version stamp of the sweep-spec format.
SWEEP_FORMAT = 1


@dataclass(frozen=True)
class RatePoint:
    """One point of the sweep plan: a per-site scale-factor assignment.

    ``index`` is the 1-based position in the deterministic plan order —
    it addresses the point in the frontier, in fault-injection rules
    (``sweep.point:<index>``), and in the outcome table.
    """

    index: int
    factors: Tuple[Tuple[str, float], ...]  # sorted by site name

    @property
    def point_id(self) -> str:
        return f"p{self.index:05d}"

    def factor_map(self) -> Dict[str, float]:
        return dict(self.factors)

    def distance_to(self, other: "RatePoint") -> float:
        """Euclidean distance in log-factor space (factors compose
        multiplicatively, so log space makes 0.5x and 2x equidistant
        from 1x)."""
        mine = self.factor_map()
        theirs = other.factor_map()
        total = 0.0
        for site in set(mine) | set(theirs):
            delta = math.log(mine.get(site, 1.0)) - math.log(
                theirs.get(site, 1.0)
            )
            total += delta * delta
        return math.sqrt(total)


def _require_positive(site: str, factor: object) -> float:
    try:
        value = float(factor)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise SweepError(
            f"site {site!r}: factor {factor!r} is not a number"
        ) from exc
    if not math.isfinite(value) or value <= 0.0:
        raise SweepError(
            f"site {site!r}: factor must be finite and > 0, got {value!r}"
        )
    return value


def normalize_sweep_spec(spec: dict) -> dict:
    """Validate a sweep spec and return its canonical form.

    The canonical form always carries ``format``, ``base``, ``sites``
    (name -> sorted node-index list) and exactly one of ``grid`` /
    ``points``; factors are floats.  Raises :class:`SweepError` on
    anything malformed — a sweep must fail at plan time, not at point
    47 of 200.
    """
    if not isinstance(spec, dict):
        raise SweepError("sweep spec must be a JSON object")
    if spec.get("format", SWEEP_FORMAT) != SWEEP_FORMAT:
        raise SweepError(
            f"unsupported sweep format {spec.get('format')!r} "
            f"(this build reads format {SWEEP_FORMAT})"
        )
    base = spec.get("base")
    if not isinstance(base, dict):
        raise SweepError("sweep spec needs a 'base' job spec")
    solve_params(base)  # rejects unknown solve keys early
    raw_sites = spec.get("sites")
    if not isinstance(raw_sites, dict) or not raw_sites:
        raise SweepError("sweep spec needs a non-empty 'sites' mapping")
    sites: Dict[str, List[int]] = {}
    for name in sorted(raw_sites):
        nodes = raw_sites[name]
        if not isinstance(nodes, (list, tuple)) or not nodes:
            raise SweepError(
                f"site {name!r} must list at least one MD node index"
            )
        sites[str(name)] = sorted(int(n) for n in nodes)
    has_grid = "grid" in spec
    has_points = "points" in spec
    if has_grid == has_points:
        raise SweepError(
            "sweep spec needs exactly one of 'grid' or 'points'"
        )
    out: dict = {"format": SWEEP_FORMAT, "base": base, "sites": sites}
    if has_grid:
        raw_grid = spec["grid"]
        if not isinstance(raw_grid, dict) or not raw_grid:
            raise SweepError("'grid' must map site names to factor lists")
        grid: Dict[str, List[float]] = {}
        for name in sorted(raw_grid):
            if name not in sites:
                raise SweepError(f"grid names unknown site {name!r}")
            factors = raw_grid[name]
            if not isinstance(factors, (list, tuple)) or not factors:
                raise SweepError(
                    f"grid for site {name!r} must be a non-empty list"
                )
            grid[str(name)] = [
                _require_positive(name, f) for f in factors
            ]
        out["grid"] = grid
    else:
        raw_points = spec["points"]
        if not isinstance(raw_points, (list, tuple)) or not raw_points:
            raise SweepError("'points' must be a non-empty list")
        points: List[Dict[str, float]] = []
        for position, raw in enumerate(raw_points, start=1):
            if not isinstance(raw, dict):
                raise SweepError(f"point {position} must be an object")
            cleaned: Dict[str, float] = {}
            for name in sorted(raw):
                if name not in sites:
                    raise SweepError(
                        f"point {position} names unknown site {name!r}"
                    )
                cleaned[str(name)] = _require_positive(name, raw[name])
            points.append(cleaned)
        out["points"] = points
    return out


def sweep_digest(spec: dict) -> str:
    """The canonical digest of a (normalized) sweep spec — the identity
    the frontier directory is bound to."""
    return canonical_digest(normalize_sweep_spec(spec))


def sweep_points(spec: dict) -> List[RatePoint]:
    """The deterministic plan order of a sweep spec.

    A grid expands as the cartesian product over sites in sorted-name
    order (last site fastest, like :func:`itertools.product`); explicit
    points keep their listed order.  Sites a point does not mention get
    factor 1.0 so every point carries the full site tuple.
    """
    spec = normalize_sweep_spec(spec)
    site_names = sorted(spec["sites"])
    points: List[RatePoint] = []
    if "grid" in spec:
        grid = spec["grid"]
        axes = [grid.get(name, [1.0]) for name in site_names]
        for position, combo in enumerate(itertools.product(*axes), start=1):
            factors = tuple(zip(site_names, (float(f) for f in combo)))
            points.append(RatePoint(index=position, factors=factors))
    else:
        for position, raw in enumerate(spec["points"], start=1):
            factors = tuple(
                (name, float(raw.get(name, 1.0))) for name in site_names
            )
            points.append(RatePoint(index=position, factors=factors))
    return points


def apply_point(
    model: MDModel,
    sites: Mapping[str, Sequence[int]],
    factors: Mapping[str, float],
) -> MDModel:
    """The derived model a rate point describes: every entry of every
    node a site addresses is scaled by the site's factor (factors
    compose multiplicatively when sites share a node).

    Rewards, initial factors, the reward combiner, and the reachable
    restriction are inherited unchanged: with strictly positive factors
    the transition *structure* — which entries are non-zero — is
    exactly the base model's, so the base reachable set stays valid.
    """
    md = model.md
    per_node: Dict[int, float] = {}
    known = set(md.node_indices())
    for name in sorted(sites):
        factor = _require_positive(name, factors.get(name, 1.0))
        for index in sites[name]:
            if index not in known:
                raise SweepError(
                    f"site {name!r} addresses node {index}, which the "
                    "model does not have"
                )
            per_node[index] = per_node.get(index, 1.0) * factor
    replacements: Dict[int, MDNode] = {}
    for index, factor in sorted(per_node.items()):
        if factor == 1.0:
            continue
        node = md.node(index)
        if node.terminal:
            entries: Dict[Tuple[int, int], object] = {
                (row, col): float(entry) * factor
                for row, col, entry in node.entries()
            }
        else:
            entries = {
                (row, col): entry.scaled(factor)
                for row, col, entry in node.entries()
            }
        replacements[index] = MDNode(node.level, entries, node.terminal)
    if not replacements:
        new_md = md
    else:
        new_md = md.with_nodes(replacements)
    return MDModel(
        new_md,
        level_rewards=model.level_rewards,
        level_initial=model.level_initial,
        reward_combiner=model.reward_combiner,
        reachable=model.reachable,
    )


def point_spec(
    base_spec: dict, base_model: MDModel, sites: Mapping[str, Sequence[int]],
    point: RatePoint,
    derived: Optional[MDModel] = None,
) -> dict:
    """The derived per-point job spec (service format), whose canonical
    digest is the point's cache key.

    ``derived`` lets a caller that already built the point's model
    (:func:`apply_point`) skip rebuilding it here.
    """
    if derived is None:
        derived = apply_point(base_model, sites, point.factor_map())
    solve = base_spec.get("solve", {})
    return spec_from_model(
        derived,
        kind=solve.get("kind", "ordinary"),
        method=solve.get("method", "direct"),
        iterate=bool(solve.get("iterate", False)),
        key=solve.get("key", "formal"),
        certify=solve.get("certify"),
    )


def auto_sites(md: MatrixDiagram) -> Dict[str, List[int]]:
    """A deterministic single-site pick for demo models: the
    lowest-indexed node of the deepest level that has at least two
    nodes.

    Scaling *every* node of a level — or any single node every path
    passes through — multiplies the whole generator by the factor and
    leaves the stationary distribution unchanged; a level with >= 2
    nodes guarantees a non-degenerate sweep.  Raises
    :class:`SweepError` when every level has a single node (use an
    explicit ``sites`` mapping instead).
    """
    for level in range(md.num_levels, 0, -1):
        nodes = md.nodes_at(level)
        if len(nodes) >= 2:
            return {"rate": [min(nodes)]}
    raise SweepError(
        "every level of this MD has a single node; scaling it would "
        "scale the whole generator uniformly (stationary distribution "
        "unchanged) — pick explicit sites"
    )


def nearest_neighbor(
    point: RatePoint, candidates: Sequence[RatePoint]
) -> Optional[RatePoint]:
    """The candidate closest to ``point`` in log-factor space, ties
    broken by lowest plan index (deterministic across resume)."""
    best: Optional[RatePoint] = None
    best_key: Optional[Tuple[float, int]] = None
    for candidate in candidates:
        key = (point.distance_to(candidate), candidate.index)
        if best_key is None or key < best_key:
            best, best_key = candidate, key
    return best


def parse_site_arg(raw: str) -> Tuple[str, List[int]]:
    """``"mu=3,7"`` -> ``("mu", [3, 7])`` (CLI sugar)."""
    name, _, nodes = raw.partition("=")
    if not name or not nodes:
        raise SweepError(
            f"malformed --site {raw!r} (expected name=node[,node...])"
        )
    try:
        indices = sorted(int(n) for n in nodes.split(","))
    except ValueError as exc:
        raise SweepError(
            f"malformed --site {raw!r}: node indices must be integers"
        ) from exc
    return name, indices


def parse_grid_arg(raw: str) -> Tuple[str, List[float]]:
    """``"mu=0.5:2.0:4"`` -> ``("mu", [0.5, 1.0, 1.5, 2.0])`` — an
    inclusive linear range — or ``"mu=0.5,1,2"`` as an explicit list."""
    name, _, body = raw.partition("=")
    if not name or not body:
        raise SweepError(
            f"malformed --grid {raw!r} "
            "(expected name=start:stop:count or name=f1,f2,...)"
        )
    if ":" in body:
        parts = body.split(":")
        if len(parts) != 3:
            raise SweepError(
                f"malformed --grid {raw!r} (expected name=start:stop:count)"
            )
        try:
            start, stop = float(parts[0]), float(parts[1])
            count = int(parts[2])
        except ValueError as exc:
            raise SweepError(f"malformed --grid {raw!r}: {exc}") from exc
        if count < 1:
            raise SweepError(f"--grid {raw!r}: count must be >= 1")
        if count == 1:
            factors = [start]
        else:
            step = (stop - start) / (count - 1)
            factors = [start + step * i for i in range(count)]
    else:
        try:
            factors = [float(f) for f in body.split(",")]
        except ValueError as exc:
            raise SweepError(f"malformed --grid {raw!r}: {exc}") from exc
    return name, [_require_positive(name, f) for f in factors]
