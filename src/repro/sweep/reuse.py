"""The partition-reuse gate: prove a rate change kept the partition.

Rates enter the refinement keys only as formal-sum coefficients, so
many rate changes — uniform scalings of a site's entries in particular
— cannot alter the lumping partition.  Instead of *assuming* that, the
gate re-checks the lumpability conditions of the base partition
directly on the derived model, with the same quantized formal-sum
signature comparison the refinement itself uses
(:mod:`repro.lumping.keys`):

* the **initial condition** (Section 4, ``P_i_ini``): rewards constant
  on every class for ordinary lumping; initial factors and full
  coefficient row sums constant for exact lumping;
* the **stability condition** (Figure 3a): for every node of the
  level, every class ``C``, and every class ``B``, the class-sum
  ``R_n(s, C)`` (ordinary; transposed for exact) has the same
  signature for all ``s in B``.

These are exactly the conditions the fixed-point refinement enforces,
so a partition that passes is a valid — not necessarily coarsest —
lumping of the derived model, and Theorems 2/3/4 make its results
exact.  A partition that fails (quantization ties flipping under
scaling, a site that breaks a symmetry) falls back to full re-lumping,
recorded in the :class:`~repro.robust.report.RunReport` as a
``sweep.reuse`` fallback: reuse is an optimization the proof licenses,
never a correctness assumption.
"""

from __future__ import annotations

from dataclasses import replace
from typing import (
    AbstractSet,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.lumping.compositional import (
    CompositionalLumpingResult,
    apply_partitions,
    compositional_lump,
)
from repro.lumping.md_model import MDModel
from repro.partitions import Partition
from repro.sweep.spec import apply_point
from repro.robust.report import RunReport
from repro.util.numeric import quantize

_ZERO_TERMINAL_KEY = quantize(0.0)


def _formal_signature(
    terms: Dict[int, float],
) -> Tuple[Tuple[int, float], ...]:
    """The :attr:`FormalSum.signature` of an accumulated coefficient
    map, computed without constructing the sum (the constructor's
    re-validation dominated proof time)."""
    return tuple(
        sorted(
            (child, quantize(v)) for child, v in terms.items() if v != 0.0
        )
    )


def _blocks(partition: Partition) -> List[Tuple[int, ...]]:
    """The classes of a partition as member tuples, in dense order."""
    index_map = partition.block_index_map()
    ordered = sorted(index_map.items(), key=lambda item: item[1])
    return [tuple(partition.block(block_id)) for block_id, _ in ordered]


def _node_class_keys(
    node: Any,
    class_of: Dict[int, int],
    states: Sequence[int],
    transpose: bool = False,
) -> Dict[int, Dict[int, Any]]:
    """Per-state sparse map ``class_id -> quantized class-sum key``.

    One pass over the node's entries replaces the per-(state, class)
    ``row_sum_over`` calls, which are quadratic in the number of
    classes.  Classes whose sum is (quantized) zero are dropped so a
    cancelling class compares equal to a class the state has no
    entries in — the same verdict ``row_sum_over`` gives on those
    member sets.  With ``transpose`` the roles of rows and columns
    swap (exact lumping's column condition).
    """
    terminal = node.terminal
    raw: Dict[int, Dict[int, Any]] = {state: {} for state in states}
    for row, col, entry in node.entries():
        state, other = (col, row) if transpose else (row, col)
        bucket = raw.get(state)
        if bucket is None:
            continue
        cls = class_of[other]
        if terminal:
            bucket[cls] = bucket.get(cls, 0.0) + float(entry)
        else:
            acc = bucket.get(cls)
            if acc is None:
                acc = {}
                bucket[cls] = acc
            for child, coefficient in entry.items():
                acc[child] = acc.get(child, 0.0) + coefficient
    keys: Dict[int, Dict[int, Any]] = {}
    for state, bucket in raw.items():
        state_keys: Dict[int, Any] = {}
        for cls, total in bucket.items():
            if terminal:
                key = quantize(float(total))
                if key == _ZERO_TERMINAL_KEY:
                    continue
            else:
                key = _formal_signature(total)
                if not key:
                    continue
            state_keys[cls] = key
        keys[state] = state_keys
    return keys


def _full_row_keys(node: Any, states: Sequence[int]) -> Dict[int, Any]:
    """Quantized key of each state's full row sum, in one pass."""
    terminal = node.terminal
    raw: Dict[int, Any] = {
        state: (0.0 if terminal else {}) for state in states
    }
    for row, col, entry in node.entries():
        acc = raw.get(row)
        if acc is None:
            continue
        if terminal:
            raw[row] = acc + float(entry)
        else:
            for child, coefficient in entry.items():
                acc[child] = acc.get(child, 0.0) + coefficient
    if terminal:
        return {state: quantize(float(v)) for state, v in raw.items()}
    return {state: _formal_signature(v) for state, v in raw.items()}


def partition_reuse_proof(
    model: MDModel,
    partitions: Sequence[Partition],
    kind: str = "ordinary",
    changed_nodes: Optional[AbstractSet[int]] = None,
) -> Optional[str]:
    """Check that ``partitions`` remains a valid per-level lumping of
    ``model``.

    Returns ``None`` when the proof goes through, else a one-line
    reason naming the first violated condition (level, node, class) —
    the caller records it and re-lumps from scratch.

    ``changed_nodes`` restricts the per-node stability scan to those
    node indices.  This is the incremental form of the proof: it is
    ONLY sound when the caller knows every other node of ``model`` is
    entry-identical to a model the partition is already stable on (a
    sweep point differs from the anchored base model exactly at its
    site nodes).  The initial condition is always checked in full —
    it is cheap and depends on rewards/initial vectors, not rates.
    """
    md = model.md
    if len(partitions) != md.num_levels:
        return (
            f"{len(partitions)} partitions for a {md.num_levels}-level MD"
        )
    for level in range(1, md.num_levels + 1):
        partition = partitions[level - 1]
        if partition.n != md.level_size(level):
            return (
                f"level {level}: partition covers {partition.n} substates, "
                f"level has {md.level_size(level)}"
            )
        blocks = _blocks(partition)
        # Initial condition: the quantities P_i_ini splits on must be
        # constant on every class.
        rewards = model.level_rewards[level - 1]
        initial = model.level_initial[level - 1]
        for block in blocks:
            if len(block) < 2:
                continue
            if kind == "ordinary":
                head = quantize(float(rewards[block[0]]))
                for state in block[1:]:
                    if quantize(float(rewards[state])) != head:
                        return (
                            f"level {level}: rewards differ inside class "
                            f"{block}"
                        )
            else:
                head = quantize(float(initial[block[0]]))
                for state in block[1:]:
                    if quantize(float(initial[state])) != head:
                        return (
                            f"level {level}: initial factors differ inside "
                            f"class {block}"
                        )
        # Stability: every node of the level, against every class C.
        # Each state's class sums are gathered in a single pass over
        # the node's entries (sparse, zero classes dropped), so the
        # check is linear in the node's entry count — comparing the
        # sparse maps blockwise is the old per-(class, block) loop
        # without the quadratic blowup in the number of classes.
        nontrivial = [b for b in blocks if len(b) >= 2]
        if not nontrivial:
            continue
        level_nodes = md.nodes_at(level)
        scan = [
            index
            for index in sorted(level_nodes)
            if changed_nodes is None or index in changed_nodes
        ]
        if not scan:
            continue
        class_of: Dict[int, int] = {}
        for cls, block in enumerate(blocks):
            for state in block:
                class_of[state] = cls
        states = [state for block in nontrivial for state in block]
        for index in scan:
            node = level_nodes[index]
            if kind == "exact":
                # Exact lumping additionally needs equal full row sums
                # (condition (4) of Definition 3); per-class equality
                # of quantized signatures does not imply it.
                full = _full_row_keys(node, states)
                for block in nontrivial:
                    head = full[block[0]]
                    for state in block[1:]:
                        if full[state] != head:
                            return (
                                f"level {level} node {index}: full row "
                                f"sums differ inside class {block}"
                            )
            keys = _node_class_keys(
                node, class_of, states, transpose=(kind == "exact")
            )
            for block in nontrivial:
                head = keys[block[0]]
                for state in block[1:]:
                    if keys[state] == head:
                        continue
                    mismatched = keys[state]
                    culprit = min(
                        cls
                        for cls in set(head) | set(mismatched)
                        if head.get(cls) != mismatched.get(cls)
                    )
                    return (
                        f"level {level} node {index}: class sums over "
                        f"{blocks[culprit]} differ inside class {block}"
                    )
    return None


def scaled_lumping(
    base: CompositionalLumpingResult,
    sites: Mapping[str, Sequence[int]],
    factors: Mapping[str, float],
    derived: MDModel,
) -> CompositionalLumpingResult:
    """The lumped model of a rate point, built by scaling ``base``'s
    lumped model directly.

    :func:`~repro.lumping.compositional.apply_partitions` keeps node
    indices ("same node indices, shrunken contents") and lumping is
    linear in each node's entries, so scaling a site's nodes by ``f``
    commutes with quotient construction: the quotient of the scaled
    model *is* the scaled quotient.  Only valid once
    :func:`partition_reuse_proof` has licensed the partition for the
    derived model; ``derived`` becomes the result's ``original``.
    """
    return replace(
        base,
        original=derived,
        lumped=apply_point(base.lumped, sites, factors),
    )


def lump_with_reuse(
    model: MDModel,
    base: CompositionalLumpingResult,
    *,
    key: str = "formal",
    iterate: bool = False,
    report: Optional[RunReport] = None,
    sites: Optional[Mapping[str, Sequence[int]]] = None,
    factors: Optional[Mapping[str, float]] = None,
    changed_nodes: Optional[AbstractSet[int]] = None,
) -> Tuple[CompositionalLumpingResult, bool]:
    """Lump ``model`` by reusing ``base``'s partitions when the proof
    licenses it, else by full re-lumping.

    Returns ``(lumping, reused)``.  A failed proof is recorded in
    ``report`` as a ``sweep.reuse`` fallback with the proof's reason;
    it is a (slower) success path, never an error.  When the caller
    passes the point's ``sites``/``factors``, a successful proof skips
    re-quotienting entirely and scales ``base``'s lumped model instead
    (:func:`scaled_lumping`).  ``changed_nodes`` narrows the proof's
    stability scan (see :func:`partition_reuse_proof` for the soundness
    contract — for a sweep point, the union of its site node sets).
    """
    reason = partition_reuse_proof(
        model,
        base.partitions,
        kind=base.kind,
        changed_nodes=changed_nodes,
    )
    if reason is None:
        if sites is not None and factors is not None:
            return scaled_lumping(base, sites, factors, model), True
        return (
            apply_partitions(model, base.partitions, kind=base.kind),
            True,
        )
    if report is not None:
        report.record_fallback(
            stage="sweep.reuse",
            requested="reuse base partition",
            used="full re-lumping",
            reason=reason,
        )
    return (
        compositional_lump(
            model, kind=base.kind, key=key, iterate=iterate
        ),
        False,
    )
