"""Command-line front end of the sweep engine.

Usage::

    python -m repro.sweep run    --store DIR (--spec FILE | --demo NAME)
                                 [--site auto | --site name=node[,node...]]
                                 [--grid name=start:stop:count | name=f,...]
                                 [--kind K --method M --iterate --key K]
                                 [--no-certify] [--resume]
                                 [--frontier DIR] [--table FILE.json]
                                 [--queue-limit N]
    python -m repro.sweep status --store DIR [--frontier DIR] [--verbose]
    python -m repro.sweep sites  (--spec FILE | --demo NAME)

``run`` drives every point of the sweep to a terminal outcome (``done``
or ``failed``) and prints the per-point table; a killed run continues
with ``--resume`` and replays nothing the frontier already recorded.

Exit codes: 0 every point done; 1 usage/plan error; 5 submission shed
by admission control; 7 the sweep completed but some points are
terminally ``failed`` (their condemning certificates are in the table).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError, SweepError
from repro.robust.checkpoint import atomic_write_text
from repro.robust.report import RunReport
from repro.service.spec import SpecError, demo_spec
from repro.sweep.engine import SweepEngine, default_frontier_dir
from repro.sweep.frontier import POINT_DONE, SweepFrontier
from repro.sweep.spec import (
    auto_sites,
    normalize_sweep_spec,
    parse_grid_arg,
    parse_site_arg,
    sweep_digest,
    sweep_points,
)

EXIT_SHED = 5
EXIT_POINTS_FAILED = 7


def _load_base(args: argparse.Namespace) -> dict:
    if args.demo:
        spec = demo_spec(args.demo)
    else:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = json.load(handle)
        if "md" not in spec:
            raise SpecError(
                f"{args.spec}: not a job spec (no 'md' field); build one "
                "with repro.service.spec_from_model"
            )
    solve = spec.setdefault("solve", {})
    if getattr(args, "kind", None):
        solve["kind"] = args.kind
    if getattr(args, "method", None):
        solve["method"] = args.method
    if getattr(args, "key", None):
        solve["key"] = args.key
    if getattr(args, "iterate", False):
        solve["iterate"] = True
    if getattr(args, "no_certify", False):
        solve["certify"] = False
    return spec


def _build_sweep_spec(args: argparse.Namespace) -> dict:
    base = _load_base(args)
    sites: Dict[str, List[int]] = {}
    site_args = args.site or ["auto"]
    for raw in site_args:
        if raw == "auto":
            from repro.service.spec import model_from_spec

            sites.update(auto_sites(model_from_spec(base).md))
        else:
            name, nodes = parse_site_arg(raw)
            sites[name] = nodes
    grid: Dict[str, List[float]] = {}
    for raw in args.grid or []:
        name, factors = parse_grid_arg(raw)
        grid[name] = factors
    if not grid:
        # A useful default: five factors around 1x on every site.
        grid = {name: [0.5, 0.75, 1.0, 1.5, 2.0] for name in sites}
    return normalize_sweep_spec(
        {"base": base, "sites": sites, "grid": grid}
    )


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _build_sweep_spec(args)
    try:
        engine_kwargs = {}
        if args.lease_seconds is not None:
            engine_kwargs["lease_seconds"] = args.lease_seconds
        engine = SweepEngine(
            spec,
            args.store,
            frontier_dir=args.frontier,
            resume=args.resume,
            report=RunReport(),
            queue_limit=args.queue_limit,
            **engine_kwargs,
        )
        result = engine.run()
    except SweepError as exc:
        if "shed" in str(exc):
            print(f"shed: {exc}", file=sys.stderr)
            return EXIT_SHED
        raise
    table = result.table()
    if args.table:
        atomic_write_text(
            args.table, json.dumps(table, indent=2) + "\n"
        )
    stats = result.stats
    print(
        f"sweep {result.sweep_digest[:12]}: {stats.points} point(s), "
        f"{stats.done} done, {stats.failed} failed "
        f"({stats.replayed} replayed, {stats.cache_hits} cache hits, "
        f"{stats.reuse_hits} partition reuses, {stats.relumps} relumps, "
        f"{stats.warm_started} warm starts, "
        f"{stats.fallback_to_cold} cold fallbacks)"
    )
    for outcome in result.outcomes:
        if outcome.status != POINT_DONE:
            print(
                f"  {outcome.point_id} failed: {outcome.error}",
                file=sys.stderr,
            )
    return 0 if stats.failed == 0 else EXIT_POINTS_FAILED


def _cmd_status(args: argparse.Namespace) -> int:
    spec = _build_sweep_spec(args)
    digest = sweep_digest(spec)
    points = sweep_points(spec)
    frontier_dir = args.frontier or default_frontier_dir(
        args.store, digest
    )
    if not os.path.exists(os.path.join(frontier_dir, "MANIFEST.json")):
        print(
            f"sweep {digest[:12]}: {len(points)} point(s), not started "
            f"(no frontier at {frontier_dir})"
        )
        return 0
    frontier = SweepFrontier(
        frontier_dir, digest, len(points), resume=True
    )
    outcomes = frontier.outcomes()
    done = sum(
        1 for o in outcomes.values() if o.get("status") == POINT_DONE
    )
    failed = len(outcomes) - done
    pending = len(points) - len(outcomes)
    print(
        f"sweep {digest[:12]}: {len(points)} point(s), "
        f"{done} done, {failed} failed, {pending} pending"
    )
    if args.verbose:
        for point in points:
            record = outcomes.get(point.point_id)
            if record is None:
                line = f"  {point.point_id} pending"
            else:
                line = f"  {point.point_id} {record.get('status')}"
                if record.get("error"):
                    line += f" error={record['error']!r}"
            line += f" factors={point.factor_map()}"
            print(line)
    return 0


def _cmd_sites(args: argparse.Namespace) -> int:
    from repro.service.spec import model_from_spec

    base = _load_base(args)
    md = model_from_spec(base).md
    for level in range(1, md.num_levels + 1):
        nodes = sorted(md.nodes_at(level))
        print(f"level {level} (size {md.level_size(level)}): nodes {nodes}")
    try:
        print(f"auto pick: {auto_sites(md)}")
    except SweepError as exc:
        print(f"auto pick: none ({exc})")
    return 0


def _add_model_args(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--spec", help="base job spec JSON file (see repro.service.spec)"
    )
    source.add_argument(
        "--demo",
        help="built-in demo model: redundant:U,S or tandem:J,C,S,Q",
    )


def _add_plan_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--site",
        action="append",
        metavar="NAME=NODE[,NODE...]|auto",
        help="rate site (repeatable); 'auto' picks one deterministically",
    )
    parser.add_argument(
        "--grid",
        action="append",
        metavar="NAME=START:STOP:COUNT|NAME=F1,F2,...",
        help="factor grid per site (repeatable); default 0.5..2.0 x5",
    )
    parser.add_argument("--kind", choices=["ordinary", "exact"])
    parser.add_argument(
        "--method", choices=["direct", "gauss-seidel", "jacobi", "power"]
    )
    parser.add_argument("--key")
    parser.add_argument("--iterate", action="store_true")
    parser.add_argument(
        "--no-certify",
        action="store_true",
        help="skip per-point certification (on by default)",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Crash-resumable parameter sweeps over MD models.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run (or resume) a sweep")
    p_run.add_argument("--store", required=True)
    _add_model_args(p_run)
    _add_plan_args(p_run)
    p_run.add_argument(
        "--frontier",
        help="frontier directory (default: <store>/sweep/<digest>)",
    )
    p_run.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted sweep (replays nothing recorded)",
    )
    p_run.add_argument(
        "--table", metavar="FILE.json", help="write the outcome table here"
    )
    p_run.add_argument(
        "--queue-limit",
        type=int,
        metavar="N",
        help="admission bound for point submissions (exit 5 when shed)",
    )
    p_run.add_argument(
        "--lease-seconds",
        type=float,
        default=None,
        metavar="S",
        help="per-point job lease (a resume waits at most this long to "
        "reclaim the killed driver's in-flight point)",
    )

    p_status = sub.add_parser(
        "status", help="summarize a sweep's frontier"
    )
    p_status.add_argument("--store", required=True)
    _add_model_args(p_status)
    _add_plan_args(p_status)
    p_status.add_argument("--frontier")
    p_status.add_argument(
        "--verbose", action="store_true", help="one line per point"
    )

    p_sites = sub.add_parser(
        "sites", help="list a model's MD nodes per level"
    )
    _add_model_args(p_sites)

    args = parser.parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "status": _cmd_status,
        "sites": _cmd_sites,
    }
    try:
        return handlers[args.command](args)
    except (SweepError, SpecError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
