"""The crash-safe sweep frontier: per-point status that survives kill.

The frontier is a directory in the :mod:`repro.robust.checkpoint`
idiom — every write is atomic (tmp + fsync + rename), every record is
self-digested, and a manifest binds the directory to one sweep spec's
canonical digest so a resumed run can never mix points from two
different sweeps:

.. code-block:: text

    <frontier>/
        MANIFEST.json          # format, sweep digest, total points
        points/p00001.json     # one self-digested outcome per point

A point's record is written exactly once, *after* its outcome is
terminal (``done`` or ``failed``); a process killed mid-point simply
leaves no record, and ``--resume`` recomputes that point
deterministically — which is what makes a killed-and-resumed sweep
bitwise-identical to an uninterrupted one.  A record that fails its
digest check (a torn write cannot happen under atomic rename, but a
truncated disk or stray edit can) is treated as missing and recomputed,
never trusted.

The deterministic fault site ``sweep.frontier`` fires before every
frontier write, so the kill-anywhere property test can SIGKILL the
driver at any persistence boundary.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.errors import SweepError
from repro.robust import faults
from repro.robust.checkpoint import atomic_write_json
from repro.service.spec import SpecError, self_digested, verify_digest

#: Version stamp of the frontier directory layout.
FRONTIER_FORMAT = 1

#: Outcome states a point record may carry.
POINT_DONE = "done"
POINT_FAILED = "failed"
POINT_STATES = (POINT_DONE, POINT_FAILED)


class SweepFrontier:
    """Per-point terminal outcomes for one sweep, keyed by point id."""

    def __init__(
        self,
        directory: str,
        sweep_digest: str,
        total_points: int,
        resume: bool = False,
    ) -> None:
        self.directory = directory
        self.sweep_digest = sweep_digest
        self.total_points = int(total_points)
        self._points_dir = os.path.join(directory, "points")
        manifest_path = os.path.join(directory, "MANIFEST.json")
        existing = self._read_json(manifest_path)
        if existing is not None:
            body = self._verify(existing)
            if body is None:
                raise SweepError(
                    f"frontier manifest {manifest_path} fails its digest "
                    "check; refusing to resume from a corrupt frontier "
                    "(delete the directory to start over)"
                )
            if body.get("sweep_digest") != sweep_digest:
                raise SweepError(
                    f"frontier {directory} belongs to sweep "
                    f"{str(body.get('sweep_digest'))[:12]}..., not "
                    f"{sweep_digest[:12]}... — refusing to mix sweeps"
                )
            if not resume:
                raise SweepError(
                    f"frontier {directory} already exists for this sweep; "
                    "pass --resume to continue it"
                )
        else:
            os.makedirs(self._points_dir, exist_ok=True)
            faults.check("sweep.frontier")
            atomic_write_json(
                manifest_path,
                self_digested(
                    {
                        "format": FRONTIER_FORMAT,
                        "sweep_digest": sweep_digest,
                        "total_points": self.total_points,
                    }
                ),
            )
        os.makedirs(self._points_dir, exist_ok=True)

    # ------------------------------------------------------------------

    @staticmethod
    def _read_json(path: str) -> Optional[dict]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            # Unreadable bytes are indistinguishable from no record:
            # the caller recomputes instead of trusting them.
            return None
        return loaded if isinstance(loaded, dict) else None

    @staticmethod
    def _verify(stamped: dict) -> Optional[dict]:
        try:
            return verify_digest(stamped)
        except SpecError:
            return None

    # ------------------------------------------------------------------

    def _point_path(self, point_id: str) -> str:
        return os.path.join(self._points_dir, f"{point_id}.json")

    def record(self, point_id: str, outcome: dict) -> None:
        """Durably record a terminal point outcome (atomic, digested).

        Must only be called with a terminal outcome: the frontier's
        contract is that a recorded point is never reprocessed.
        """
        if outcome.get("status") not in POINT_STATES:
            raise SweepError(
                f"refusing to record non-terminal outcome "
                f"{outcome.get('status')!r} for {point_id}"
            )
        body = dict(outcome)
        body["point_id"] = point_id
        faults.check("sweep.frontier")
        atomic_write_json(self._point_path(point_id), self_digested(body))

    def lookup(self, point_id: str) -> Optional[dict]:
        """The recorded outcome for a point, or ``None`` (missing or
        failing its digest check — both mean: recompute)."""
        stamped = self._read_json(self._point_path(point_id))
        if stamped is None:
            return None
        body = self._verify(stamped)
        if body is None or body.get("status") not in POINT_STATES:
            return None
        return body

    def outcomes(self) -> Dict[str, dict]:
        """All valid recorded outcomes, keyed by point id."""
        out: Dict[str, dict] = {}
        try:
            names = sorted(os.listdir(self._points_dir))
        except FileNotFoundError:
            return out
        for name in names:
            if not name.endswith(".json"):
                continue
            point_id = name[: -len(".json")]
            body = self.lookup(point_id)
            if body is not None:
                out[point_id] = body
        return out

    def pending(self, point_ids: List[str]) -> List[str]:
        """The subset of ``point_ids`` with no valid terminal record."""
        return [pid for pid in point_ids if self.lookup(pid) is None]
