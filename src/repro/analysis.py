"""One-call lump-and-solve pipeline.

``lump_and_solve`` runs the full workflow a user of the paper's system
would: compositional lumping of an MD model, restriction to the (lumped)
reachable states, steady-state solution of the lumped chain, and measure
evaluation — all without ever solving the unlumped chain.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

if TYPE_CHECKING:
    from repro.robust.certify import Certificate

from repro.errors import LumpingError
from repro.lumping.compositional import (
    CompositionalLumpingResult,
    compositional_lump,
)
from repro.lumping.md_model import MDModel
from repro.markov.solvers import steady_state
from repro.markov.transient import transient_distribution
from repro.robust.budgets import Budget
from repro.robust.pool import autodegrade_parallel
from repro.robust.report import RunReport


@dataclass
class LumpedSolution:
    """Everything a measure evaluation needs, on the lumped chain."""

    lumping: CompositionalLumpingResult
    stationary: np.ndarray  # over the lumped (restricted) state space
    report: Optional[RunReport] = field(default=None, compare=False)
    solve_method: str = "direct"
    certificate: Optional["Certificate"] = field(default=None, compare=False)

    @property
    def lumped_model(self) -> MDModel:
        """The lumped MD model the solution lives on."""
        return self.lumping.lumped

    @property
    def num_states(self) -> int:
        """Size of the solved (lumped) chain."""
        return self.lumped_model.num_states()

    @property
    def reduction_factor(self) -> float:
        """Unlumped states per lumped state (restricted spaces)."""
        original = self.lumping.original.num_states()
        return original / max(1, self.num_states)

    def expected_reward(self) -> float:
        """Steady-state expected rate reward, from the lumped vectors.

        Exact for the original model by Theorems 2/3/4: the lumped reward
        vector is the class (representative/average) reward and the lumped
        stationary distribution carries the aggregated class probability.
        """
        rewards = self.lumped_model.global_rewards()
        return float(self.stationary @ rewards)

    def transient_reward(self, time: float) -> float:
        """Expected rate reward at time ``time`` starting from the lumped
        initial distribution."""
        mrp = self.lumped_model.flat_mrp()
        pi_t = transient_distribution(
            mrp.ctmc, mrp.initial_distribution, time
        )
        return float(pi_t @ mrp.rewards)

    def class_probability(
        self, predicate: Callable[[tuple], bool]
    ) -> float:
        """Steady-state probability of the lumped states whose per-level
        label tuples satisfy ``predicate``.

        ``predicate`` receives a tuple of per-level labels; a lumped
        level's label is the tuple of its merged original labels (or the
        single original label for singleton classes).
        """
        md = self.lumped_model.md
        total = 0.0
        states = (
            self.lumped_model.reachable
            if self.lumped_model.reachable is not None
            else range(md.potential_size())
        )
        for position, index in enumerate(states):
            tuple_state = self.lumped_model.state_tuple(index)
            labels = tuple(
                md.substate_label(level + 1, substate)
                for level, substate in enumerate(tuple_state)
            )
            if predicate(labels):
                total += float(self.stationary[position])
        return total


def _make_checkpointer(
    checkpoint_dir: Optional[str],
    resume: bool,
    model: MDModel,
    kind: str,
    method: str,
    key: str,
    iterate: bool,
    report: Optional[RunReport],
    checkpoint_interval: Optional[int] = None,
    checkpoint_keep_last: Optional[int] = None,
):
    """A :class:`~repro.robust.checkpoint.Checkpointer` for one
    ``lump_and_solve`` configuration, or ``None`` when disabled.

    The fingerprint ties the checkpoint directory to the full pipeline
    configuration, so snapshots from a different model or method are
    treated as stale in their entirety.
    """
    if checkpoint_dir is None:
        return None
    from repro.robust.checkpoint import Checkpointer

    fingerprint = (
        f"lump_and_solve kind={kind} method={method} key={key} "
        f"iterate={iterate} levels={tuple(model.md.level_sizes)} "
        f"n={model.num_states()}"
    )
    kwargs = {}
    if checkpoint_interval is not None:
        kwargs["interval_iterations"] = checkpoint_interval
    return Checkpointer(
        checkpoint_dir,
        resume=resume,
        fingerprint=fingerprint,
        report=report,
        keep_last=checkpoint_keep_last,
        **kwargs,
    )


def lump_and_solve(
    model: MDModel,
    kind: str = "ordinary",
    method: str = "direct",
    iterate: bool = False,
    key: str = "formal",
    *,
    robust: bool = False,
    budget: Optional[Budget] = None,
    solver_chain: Optional[Sequence[str]] = None,
    report: Optional[RunReport] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    checkpoint_interval: Optional[int] = None,
    checkpoint_keep_last: Optional[int] = None,
    supervised: bool = False,
    supervisor=None,
    parallel=None,
    certify: bool = False,
    certificate_tol: Optional[float] = None,
    lumping: Optional[CompositionalLumpingResult] = None,
    x0: Optional[np.ndarray] = None,
) -> LumpedSolution:
    """Lump ``model`` compositionally and solve the lumped chain.

    The model must carry a ``reachable`` restriction (or be fully
    reachable): the lumped chain is solved over the restricted space.

    With ``robust=True`` the pipeline degrades instead of dying: levels
    whose lumping fails are skipped (identity partition), the solve walks
    a fallback chain starting at ``method`` (see
    :func:`repro.robust.fallback.solve_with_fallback`), everything runs
    under ``budget`` when one is given, and the returned solution carries
    a :class:`~repro.robust.report.RunReport` describing what degraded
    and why.

    With ``checkpoint_dir`` set, the refinement and solver loops write
    crash-safe snapshots there (see :mod:`repro.robust.checkpoint`); with
    ``resume=True`` a rerun continues from the latest valid snapshots
    instead of restarting, falling back to a fresh start (recorded in the
    report, when robust) on any corrupt or stale snapshot.
    ``checkpoint_interval`` overrides the snapshot cadence (cooperative
    iterations between periodic saves) and ``checkpoint_keep_last``
    garbage-collects all but the newest K snapshots per loop sequence.

    With ``supervised=True`` (implies robust) the whole pipeline runs in
    a watchdog-supervised child process that is restarted from the
    latest checkpoint on crash, hang, or OOM, climbing a progressive
    degradation ladder — see :mod:`repro.robust.supervisor`.
    ``supervisor`` is an optional
    :class:`~repro.robust.supervisor.SupervisorConfig`.

    With ``parallel=N`` (an int >= 2 or a
    :class:`~repro.robust.pool.ParallelConfig`) the per-level refinement
    fans out to a fault-tolerant worker pool
    (:mod:`repro.robust.pool`); results merge deterministically, so the
    solution is bitwise-identical to the serial one.  When combined with
    ``robust``/``supervised``, every worker crash, retry, reassignment,
    and degradation lands in the returned
    :class:`~repro.robust.report.RunReport`.

    With ``certify=True`` the solved vector is certified
    (:mod:`repro.robust.certify`): NaN/Inf guards, probability-mass
    defect, nonnegativity, an independent extended-precision residual
    recheck, and (for small models) lumped-vs-unlumped measure
    consistency plus a spectral lumpability spot-check.  On failure an
    escalation ladder runs — the next method of the fallback chain, a
    tightened-tolerance re-solve, a float128 refinement — with every
    step recorded as ``certificate``/``certificate-escalation`` events
    in the report; an exhausted ladder raises
    :class:`~repro.errors.CertificationError` with the last certificate
    attached.  ``certificate_tol`` overrides the base tolerance
    (:data:`~repro.robust.certify.DEFAULT_CERTIFICATE_TOL`).  The
    certificate lands on ``LumpedSolution.certificate``.

    With ``lumping`` given (a :class:`CompositionalLumpingResult` whose
    ``original`` matches ``model``), the refinement is skipped entirely
    and the precomputed partition is used as-is — the parameter-sweep
    reuse path (:mod:`repro.sweep`), which proves partition validity
    separately before passing it here.  With ``x0`` given, iterative
    solve methods are warm-started from it instead of the uniform
    vector (``direct`` ignores it); certification still checks the
    answer, so a poisoned warm start cannot certify.  Neither is
    supported under ``supervised=True``.
    """
    if supervised and (lumping is not None or x0 is not None):
        raise LumpingError(
            "lumping=/x0= are not supported with supervised=True"
        )
    if lumping is not None and (
        lumping.original.md.level_sizes != model.md.level_sizes
        or lumping.kind != kind
    ):
        raise LumpingError(
            "precomputed lumping does not match the model/kind "
            f"(lumping: kind={lumping.kind!r} "
            f"levels={lumping.original.md.level_sizes}; requested: "
            f"kind={kind!r} levels={model.md.level_sizes})"
        )
    if supervised:
        return _lump_and_solve_supervised(
            model,
            kind=kind,
            method=method,
            iterate=iterate,
            key=key,
            budget=budget,
            solver_chain=solver_chain,
            report=report,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            config=supervisor,
            parallel=parallel,
            certify=certify,
            certificate_tol=certificate_tol,
        )
    if not robust:
        ck = _make_checkpointer(
            checkpoint_dir, resume, model, kind, method, key, iterate, None
        )
        solve_method = method
        certificate = None
        with (ck if ck is not None else nullcontext()):
            if lumping is not None:
                result = lumping
            else:
                result = compositional_lump(
                    model, kind=kind, key=key, iterate=iterate,
                    parallel=autodegrade_parallel(parallel),
                )
            lumped_ctmc = result.lumped.flat_ctmc()
            if not lumped_ctmc.is_irreducible():
                raise LumpingError(
                    "the lumped chain is not irreducible; restrict the "
                    "model to a single recurrent class before solving"
                )
            solver_kwargs = {}
            if x0 is not None:
                from repro.robust.fallback import ITERATIVE_METHODS

                if method in ITERATIVE_METHODS:
                    solver_kwargs["x0"] = x0
            stationary = steady_state(
                lumped_ctmc, method=method, **solver_kwargs
            ).distribution
            if certify:
                from repro.robust.certify import certify_with_escalation
                from repro.robust.fallback import DEFAULT_SOLVER_CHAIN

                chain = [method] + [
                    m for m in DEFAULT_SOLVER_CHAIN if m != method
                ]
                certified = certify_with_escalation(
                    stationary,
                    lumped_ctmc,
                    method=method,
                    kind=kind,
                    lumping=result,
                    original=model,
                    chain=chain,
                    tol=certificate_tol,
                )
                stationary = certified.stationary
                solve_method = certified.method
                certificate = certified.certificate
        return LumpedSolution(
            lumping=result,
            stationary=stationary,
            solve_method=solve_method,
            certificate=certificate,
        )
    return _lump_and_solve_robust(
        model,
        kind=kind,
        method=method,
        iterate=iterate,
        key=key,
        budget=budget,
        solver_chain=solver_chain,
        report=report,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        checkpoint_interval=checkpoint_interval,
        checkpoint_keep_last=checkpoint_keep_last,
        parallel=parallel,
        certify=certify,
        certificate_tol=certificate_tol,
        lumping=lumping,
        x0=x0,
    )


def _lump_and_solve_supervised(
    model: MDModel,
    kind: str,
    method: str,
    iterate: bool,
    key: str,
    budget: Optional[Budget],
    solver_chain: Optional[Sequence[str]],
    report: Optional[RunReport],
    checkpoint_dir: Optional[str],
    resume: bool,
    config=None,
    parallel=None,
    certify: bool = False,
    certificate_tol: Optional[float] = None,
) -> LumpedSolution:
    """The supervised variant: robust pipeline in a watched child."""
    from repro.robust.supervisor import run_supervised

    def _attempt(ctx) -> LumpedSolution:
        level = ctx.degradation
        chain = (
            level.solver_chain if level.solver_chain is not None
            else solver_chain
        )
        return _lump_and_solve_robust(
            model,
            kind=kind,
            method=method,
            iterate=iterate,
            key=key,
            budget=ctx.budget,
            solver_chain=chain,
            report=ctx.report,
            checkpoint_dir=ctx.checkpoint_dir,
            resume=ctx.resume,
            checkpoint_interval=ctx.checkpoint_interval,
            checkpoint_keep_last=ctx.checkpoint_keep_last,
            degrade=level.lumping_degrade,
            parallel=parallel,
            certify=certify,
            certificate_tol=certificate_tol,
        )

    supervised = run_supervised(
        _attempt,
        checkpoint_dir=checkpoint_dir,
        config=config,
        budget=budget,
        report=report,
        resume=resume,
    )
    solution: LumpedSolution = supervised.result
    solution.report = supervised.report
    return solution


def _lump_and_solve_robust(
    model: MDModel,
    kind: str,
    method: str,
    iterate: bool,
    key: str,
    budget: Optional[Budget],
    solver_chain: Optional[Sequence[str]],
    report: Optional[RunReport],
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    checkpoint_interval: Optional[int] = None,
    checkpoint_keep_last: Optional[int] = None,
    degrade: bool = True,
    parallel=None,
    certify: bool = False,
    certificate_tol: Optional[float] = None,
    lumping: Optional[CompositionalLumpingResult] = None,
    x0: Optional[np.ndarray] = None,
) -> LumpedSolution:
    """The degrading variant of :func:`lump_and_solve`.

    ``degrade=False`` (used by the supervisor's strict baseline rungs)
    keeps the fallback chain and reporting but makes per-level lumping
    failures fatal to the attempt instead of skipping the level.
    """
    from repro.robust.fallback import (
        DEFAULT_SOLVER_CHAIN,
        solve_with_fallback,
    )

    if report is None:
        report = RunReport()
    cfg = autodegrade_parallel(parallel, report)
    if cfg is not None and cfg.report is None:
        # Worker-pool events (crashes, retries, reassignments,
        # degradations) land in the same run report as everything else.
        cfg.report = report
    if solver_chain is None:
        # Start at the requested method, then the remaining defaults.
        solver_chain = [method] + [
            m for m in DEFAULT_SOLVER_CHAIN if m != method
        ]
    ck = _make_checkpointer(
        checkpoint_dir, resume, model, kind, method, key, iterate, report,
        checkpoint_interval, checkpoint_keep_last,
    )
    scope = budget if budget is not None else nullcontext()
    with scope, (ck if ck is not None else nullcontext()):
        with report.stage("lumping") as stage:
            if lumping is not None:
                result = lumping
                stage.detail = "reused precomputed partition"
            else:
                result = compositional_lump(
                    model, kind=kind, key=key, iterate=iterate,
                    degrade=degrade, report=report, parallel=cfg,
                )
            if result.skipped_levels:
                stage.status = "degraded"
                stage.detail = (
                    f"{len(result.skipped_levels)} level(s) kept the "
                    "identity partition"
                )
        with report.stage("solve") as stage:
            lumped_ctmc = result.lumped.flat_ctmc()
            if not lumped_ctmc.is_irreducible():
                raise LumpingError(
                    "the lumped chain is not irreducible; restrict the "
                    "model to a single recurrent class before solving"
                )
            from repro.robust.fallback import ITERATIVE_METHODS

            per_method = (
                {m: {"x0": x0} for m in ITERATIVE_METHODS}
                if x0 is not None
                else None
            )
            solution = solve_with_fallback(
                lumped_ctmc, chain=solver_chain, per_method=per_method
            )
            for attempt in solution.attempts:
                report.record_attempt(
                    stage="solve",
                    name=attempt.method,
                    succeeded=attempt.succeeded,
                    seconds=attempt.seconds,
                    error=attempt.error,
                    iterations=attempt.iterations,
                    residual=attempt.residual,
                )
            if solution.degraded:
                stage.status = "degraded"
                stage.detail = f"solved by {solution.method!r}"
                report.record_fallback(
                    stage="solve",
                    requested=solution.requested_method,
                    used=solution.method
                    + (
                        f" (tol relaxed to {solution.relaxed_tolerance:g})"
                        if solution.relaxed_tolerance is not None
                        else ""
                    ),
                    reason="; ".join(
                        a.error for a in solution.attempts if a.error
                    )
                    or "earlier attempts failed",
                )
        if solution.result.note:
            report.note(
                f"solver note ({solution.method}): {solution.result.note}"
            )
        stationary = solution.distribution
        solve_method = solution.method
        certificate = None
        if certify:
            from repro.robust.certify import certify_with_escalation

            with report.stage("certify") as stage:
                certified = certify_with_escalation(
                    stationary,
                    lumped_ctmc,
                    method=solution.method,
                    kind=kind,
                    lumping=result,
                    original=model,
                    chain=solver_chain,
                    report=report,
                    tol=certificate_tol,
                )
                stationary = certified.stationary
                solve_method = certified.method
                certificate = certified.certificate
                if certified.escalated:
                    stage.status = "degraded"
                    stage.detail = "escalated: " + ", ".join(
                        certified.escalations
                    )
    report.attach_budget(budget)
    return LumpedSolution(
        lumping=result,
        stationary=stationary,
        report=report,
        solve_method=solve_method,
        certificate=certificate,
    )
