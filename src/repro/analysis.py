"""One-call lump-and-solve pipeline.

``lump_and_solve`` runs the full workflow a user of the paper's system
would: compositional lumping of an MD model, restriction to the (lumped)
reachable states, steady-state solution of the lumped chain, and measure
evaluation — all without ever solving the unlumped chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import LumpingError
from repro.lumping.compositional import (
    CompositionalLumpingResult,
    compositional_lump,
)
from repro.lumping.md_model import MDModel
from repro.markov.solvers import steady_state
from repro.markov.transient import transient_distribution


@dataclass
class LumpedSolution:
    """Everything a measure evaluation needs, on the lumped chain."""

    lumping: CompositionalLumpingResult
    stationary: np.ndarray  # over the lumped (restricted) state space

    @property
    def lumped_model(self) -> MDModel:
        """The lumped MD model the solution lives on."""
        return self.lumping.lumped

    @property
    def num_states(self) -> int:
        """Size of the solved (lumped) chain."""
        return self.lumped_model.num_states()

    @property
    def reduction_factor(self) -> float:
        """Unlumped states per lumped state (restricted spaces)."""
        original = self.lumping.original.num_states()
        return original / max(1, self.num_states)

    def expected_reward(self) -> float:
        """Steady-state expected rate reward, from the lumped vectors.

        Exact for the original model by Theorems 2/3/4: the lumped reward
        vector is the class (representative/average) reward and the lumped
        stationary distribution carries the aggregated class probability.
        """
        rewards = self.lumped_model.global_rewards()
        return float(self.stationary @ rewards)

    def transient_reward(self, time: float) -> float:
        """Expected rate reward at time ``time`` starting from the lumped
        initial distribution."""
        mrp = self.lumped_model.flat_mrp()
        pi_t = transient_distribution(
            mrp.ctmc, mrp.initial_distribution, time
        )
        return float(pi_t @ mrp.rewards)

    def class_probability(
        self, predicate: Callable[[tuple], bool]
    ) -> float:
        """Steady-state probability of the lumped states whose per-level
        label tuples satisfy ``predicate``.

        ``predicate`` receives a tuple of per-level labels; a lumped
        level's label is the tuple of its merged original labels (or the
        single original label for singleton classes).
        """
        md = self.lumped_model.md
        total = 0.0
        states = (
            self.lumped_model.reachable
            if self.lumped_model.reachable is not None
            else range(md.potential_size())
        )
        for position, index in enumerate(states):
            tuple_state = self.lumped_model.state_tuple(index)
            labels = tuple(
                md.substate_label(level + 1, substate)
                for level, substate in enumerate(tuple_state)
            )
            if predicate(labels):
                total += float(self.stationary[position])
        return total


def lump_and_solve(
    model: MDModel,
    kind: str = "ordinary",
    method: str = "direct",
    iterate: bool = False,
    key: str = "formal",
) -> LumpedSolution:
    """Lump ``model`` compositionally and solve the lumped chain.

    The model must carry a ``reachable`` restriction (or be fully
    reachable): the lumped chain is solved over the restricted space.
    """
    result = compositional_lump(model, kind=kind, key=key, iterate=iterate)
    lumped_ctmc = result.lumped.flat_ctmc()
    if not lumped_ctmc.is_irreducible():
        raise LumpingError(
            "the lumped chain is not irreducible; restrict the model to a "
            "single recurrent class before solving"
        )
    stationary = steady_state(lumped_ctmc, method=method).distribution
    return LumpedSolution(lumping=result, stationary=stationary)
