"""A small stochastic-activity-network-like modeling formalism.

Substitutes for the Möbius front end the paper used: atomic models are
places + timed activities with marking-dependent rates and probabilistic
cases; models compose by *state sharing* (the Rep/Join operator's Join):
places with equal names are identified.  The composed model compiles to an
:class:`repro.statespace.events.EventModel` with the paper's level
assignment — shared places at level 1, each submodel's private places at
their own level — from which the MD, the Kronecker descriptor and the
reachable state space all derive.
"""

from repro.san.model import Activity, Case, Place, SANModel
from repro.san.composition import Join
from repro.san.semantics import CompiledModel, compile_join
from repro.san.replication import replicate

__all__ = [
    "Activity",
    "Case",
    "Place",
    "SANModel",
    "Join",
    "CompiledModel",
    "compile_join",
    "replicate",
]
