"""State-sharing composition (the Join of Möbius' Rep/Join editor).

Submodels that declare places with equal names share those places: the
joined model has a single copy, and every submodel's activities read and
write it.  Shared places must agree on capacity and initial marking.

The joined model fixes the paper's level assignment (Section 5): the
shared places form level 1; each submodel's private places form one
further level, in submodel order.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import CompositionError
from repro.san.model import Marking, Place, SANModel


class Join:
    """A state-sharing composition of submodels.

    Parameters
    ----------
    submodels:
        The atomic models to join.  Places with equal names are shared.
    shared_invariant:
        Optional predicate over the shared places' marking, used to bound
        the enumeration of the shared level's local state space (e.g.
        "the two pools together never hold more than J jobs").
    """

    def __init__(
        self,
        submodels: Sequence[SANModel],
        shared_invariant: Optional[Callable[[Marking], bool]] = None,
    ) -> None:
        if len(submodels) < 2:
            raise CompositionError("Join needs at least two submodels")
        self.submodels: List[SANModel] = list(submodels)
        self.shared_invariant = shared_invariant

        owners: Dict[str, List[int]] = {}
        declaration: Dict[str, Place] = {}
        for index, model in enumerate(self.submodels):
            for place in model.places:
                owners.setdefault(place.name, []).append(index)
                previous = declaration.get(place.name)
                if previous is None:
                    declaration[place.name] = place
                elif (
                    previous.capacity != place.capacity
                    or previous.initial != place.initial
                ):
                    raise CompositionError(
                        f"shared place {place.name!r} declared with "
                        f"different capacity/initial marking in different "
                        f"submodels"
                    )
        self.shared_places: List[Place] = [
            declaration[name]
            for name, models in owners.items()
            if len(models) > 1
        ]
        shared_names = {place.name for place in self.shared_places}
        if not shared_names:
            raise CompositionError(
                "Join shares no places; did you mean independent models?"
            )
        self.private_places: List[List[Place]] = [
            [place for place in model.places if place.name not in shared_names]
            for model in self.submodels
        ]
        for index, places in enumerate(self.private_places):
            if not places:
                raise CompositionError(
                    f"submodel {self.submodels[index].name!r} has no private "
                    f"places; give it at least one or merge it into another "
                    f"submodel"
                )

    @property
    def num_levels(self) -> int:
        """1 (shared) + one level per submodel."""
        return 1 + len(self.submodels)

    def shared_place_names(self) -> List[str]:
        """Names of the shared places (level 1), in a stable order."""
        return [place.name for place in self.shared_places]

    def private_place_names(self, submodel_index: int) -> List[str]:
        """Names of a submodel's private places (its level)."""
        return [
            place.name for place in self.private_places[submodel_index]
        ]

    def initial_shared_marking(self) -> Marking:
        """Initial marking of the shared places."""
        return {place.name: place.initial for place in self.shared_places}

    def check_shared_marking(self, marking: Marking) -> bool:
        """Capacity + invariant check for a shared marking."""
        for place in self.shared_places:
            value = marking.get(place.name, 0)
            if not 0 <= value <= place.capacity:
                return False
        if self.shared_invariant is not None and not self.shared_invariant(
            marking
        ):
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"Join(submodels={[m.name for m in self.submodels]}, "
            f"shared={self.shared_place_names()})"
        )
