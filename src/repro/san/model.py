"""Atomic stochastic activity network models.

A :class:`SANModel` has named integer-valued *places* and timed
*activities*.  An activity has a marking-dependent exponential rate (rate 0
means disabled) and one or more probabilistic *cases*; each case transforms
the marking.  This mirrors the stochastic-activity-network formalism
(Sanders & Meyer) closely enough to express the paper's example models,
while keeping the semantics simple: markings are dicts, rate/probability
functions are plain callables over them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import ModelError

Marking = Dict[str, int]
#: A case probability: constant or marking-dependent.
Probability = Union[float, Callable[[Marking], float]]
#: A case update: returns the new marking (or ``None`` if the case cannot
#: fire in this marking, e.g. a full target queue).
Update = Callable[[Marking], Optional[Marking]]


@dataclass(frozen=True)
class Place:
    """A named integer state variable with a finite range ``0..capacity``."""

    name: str
    capacity: int
    initial: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ModelError(f"place {self.name!r} has negative capacity")
        if not 0 <= self.initial <= self.capacity:
            raise ModelError(
                f"place {self.name!r} initial marking {self.initial} "
                f"outside 0..{self.capacity}"
            )


@dataclass(frozen=True)
class Case:
    """One probabilistic outcome of an activity."""

    probability: Probability
    update: Update
    name: str = ""

    def probability_in(self, marking: Marking) -> float:
        """Evaluate the case probability in a marking."""
        if callable(self.probability):
            return float(self.probability(marking))
        return float(self.probability)


class Activity:
    """A timed activity: exponential rate + probabilistic cases.

    Parameters
    ----------
    name:
        Activity name (diagnostics and event naming).
    rate:
        Marking-dependent rate; 0 disables the activity.  A plain float is
        accepted for constant rates.
    cases:
        The probabilistic outcomes.  Case probabilities should sum to 1
        over the cases *enabled* in a marking; the compiler checks this.
    shared:
        Whether the activity may read or write shared (level-1) places.
        ``False`` declares the activity local to its submodel, which lets
        the compiler emit a single event instead of one per shared
        substate.  Declaring ``shared=False`` for an activity that does
        touch shared places is a modeling error the compiler detects.
    """

    def __init__(
        self,
        name: str,
        rate: Union[float, Callable[[Marking], float]],
        cases: Sequence[Case],
        shared: bool = True,
    ) -> None:
        if not cases:
            raise ModelError(f"activity {name!r} needs at least one case")
        self.name = name
        self._rate = rate
        self.cases: List[Case] = list(cases)
        self.shared = shared

    def rate_in(self, marking: Marking) -> float:
        """Evaluate the rate in a marking."""
        if callable(self._rate):
            value = float(self._rate(marking))
        else:
            value = float(self._rate)
        if value < 0:
            raise ModelError(
                f"activity {self.name!r} produced negative rate {value}"
            )
        return value

    def __repr__(self) -> str:
        return f"Activity({self.name!r}, cases={len(self.cases)})"


class SANModel:
    """An atomic model: places + activities (+ optional local invariant).

    ``local_invariant`` is a predicate over the model's *own* marking used
    to bound local state-space enumeration; it encodes invariants that hold
    globally but are not visible locally (e.g. "total jobs in my queues
    never exceeds J" in a closed system).
    """

    def __init__(
        self,
        name: str,
        places: Sequence[Place],
        activities: Sequence[Activity],
        local_invariant: Optional[Callable[[Marking], bool]] = None,
    ) -> None:
        self.name = name
        self.places: List[Place] = list(places)
        seen = set()
        for place in self.places:
            if place.name in seen:
                raise ModelError(
                    f"model {name!r} declares place {place.name!r} twice"
                )
            seen.add(place.name)
        self.activities: List[Activity] = list(activities)
        self.local_invariant = local_invariant

    def place_names(self) -> List[str]:
        """Names of this model's places, in declaration order."""
        return [place.name for place in self.places]

    def initial_marking(self) -> Marking:
        """The initial marking of this model's places."""
        return {place.name: place.initial for place in self.places}

    def check_marking(self, marking: Mapping[str, int]) -> bool:
        """True if ``marking`` respects capacities and the local invariant
        (only this model's places are inspected)."""
        for place in self.places:
            value = marking.get(place.name, 0)
            if not 0 <= value <= place.capacity:
                return False
        if self.local_invariant is not None:
            own = {p.name: marking.get(p.name, 0) for p in self.places}
            if not self.local_invariant(own):
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"SANModel({self.name!r}, places={len(self.places)}, "
            f"activities={len(self.activities)})"
        )
