"""Compilation of joined SAN models to event models.

This is the analogue of the paper's symbolic state-space generator [10]:
it assigns the shared places to level 1 and each submodel's private places
to one level (Section 5's partitioning), enumerates per-level local state
spaces, and turns every activity into events with per-level effects.

Local activities (``shared=False``) compile to a single event touching only
their submodel's level.  Shared activities compile to one event per
(shared-substate, shared-substate') pair they induce; fixing the shared
substate inside the event is what makes arbitrary joint rate dependence
between the shared level and the submodel level *exactly* representable in
Kronecker/MD form — no factorization assumption is needed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ModelError, StateSpaceError
from repro.san.composition import Join
from repro.san.model import Activity, Marking
from repro.statespace.events import Event, EventModel, LevelSpace

_PROBABILITY_TOL = 1e-9


@dataclass
class CompiledModel:
    """A joined SAN model compiled to an event model.

    ``dropped_transitions`` counts case firings whose target violated a
    declared invariant; they can only originate from unreachable states of
    the over-approximated local spaces (a true invariant is closed under
    reachable transitions), and the count is surfaced so tests can assert
    it stays plausible.
    """

    join: Join
    event_model: EventModel
    level_names: List[str]
    level_place_names: List[List[str]]
    dropped_transitions: int = 0
    stats: Dict[str, int] = field(default_factory=dict)

    def marking_of_state(self, state: Tuple[int, ...]) -> Marking:
        """The full marking of a global state (per-level indices)."""
        marking: Marking = {}
        for level, substate in enumerate(state, start=1):
            label = self.event_model.levels[level - 1].label(substate)
            for name, value in zip(self.level_place_names[level - 1], label):
                marking[name] = value
        return marking


def _marking_tuple(names: List[str], marking: Marking) -> Tuple[int, ...]:
    return tuple(int(marking.get(name, 0)) for name in names)


def _enumerate_shared(join: Join) -> List[Tuple[int, ...]]:
    names = join.shared_place_names()
    ranges = [range(place.capacity + 1) for place in join.shared_places]
    states = []
    for values in itertools.product(*ranges):
        marking = dict(zip(names, values))
        if join.check_shared_marking(marking):
            states.append(tuple(values))
    if not states:
        raise StateSpaceError("shared invariant rejects every marking")
    return sorted(states)


def _enumerate_private(
    join: Join,
    submodel_index: int,
    shared_states: List[Tuple[int, ...]],
    max_states: Optional[int],
) -> List[Tuple[int, ...]]:
    """Local BFS over a submodel's private markings, trying every shared
    marking as context (the standard over-approximation of the projection:
    a superset of the exact projection, pruned by the local invariant)."""
    model = join.submodels[submodel_index]
    shared_names = join.shared_place_names()
    private_names = join.private_place_names(submodel_index)
    initial = _marking_tuple(private_names, model.initial_marking())
    seen = {initial}
    frontier = [initial]
    while frontier:
        state = frontier.pop()
        private_marking = dict(zip(private_names, state))
        for shared in shared_states:
            full = dict(zip(shared_names, shared))
            full.update(private_marking)
            for activity in model.activities:
                for target_full, _rate in _fire_activity(activity, full):
                    target = _marking_tuple(private_names, target_full)
                    if target in seen:
                        continue
                    if not model.check_marking(
                        dict(zip(private_names, target))
                    ):
                        continue
                    seen.add(target)
                    frontier.append(target)
                    if max_states is not None and len(seen) > max_states:
                        raise StateSpaceError(
                            f"submodel {model.name!r} exceeds "
                            f"{max_states} local states"
                        )
    return sorted(seen)


def _fire_activity(
    activity: Activity, marking: Marking
) -> List[Tuple[Marking, float]]:
    """All (target marking, rate) outcomes of an activity in a marking."""
    rate = activity.rate_in(marking)
    if rate <= 0:
        return []
    outcomes = []
    total_probability = 0.0
    for case in activity.cases:
        probability = case.probability_in(marking)
        if probability < 0:
            raise ModelError(
                f"activity {activity.name!r} case has negative probability"
            )
        if probability == 0:
            continue
        target = case.update(dict(marking))
        if target is None:
            raise ModelError(
                f"activity {activity.name!r}: case with positive "
                f"probability {probability} cannot fire; make the "
                f"probability conditional on firability"
            )
        total_probability += probability
        outcomes.append((target, rate * probability))
    if outcomes and abs(total_probability - 1.0) > _PROBABILITY_TOL:
        raise ModelError(
            f"activity {activity.name!r}: enabled case probabilities "
            f"sum to {total_probability}, expected 1"
        )
    return outcomes


def compile_join(
    join: Join,
    max_local_states: Optional[int] = 2_000_000,
) -> CompiledModel:
    """Compile a :class:`Join` into an :class:`EventModel`.

    Levels: 1 = shared places, ``k + 1`` = submodel ``k``'s private places.
    """
    shared_names = join.shared_place_names()
    shared_states = _enumerate_shared(join)
    shared_index = {state: i for i, state in enumerate(shared_states)}

    level_spaces = [LevelSpace("shared", shared_states)]
    level_names = ["shared"]
    level_place_names = [shared_names]
    private_states: List[List[Tuple[int, ...]]] = []
    private_indices: List[Dict[Tuple[int, ...], int]] = []
    for k, model in enumerate(join.submodels):
        states = _enumerate_private(join, k, shared_states, max_local_states)
        private_states.append(states)
        private_indices.append({state: i for i, state in enumerate(states)})
        level_spaces.append(LevelSpace(model.name, states))
        level_names.append(model.name)
        level_place_names.append(join.private_place_names(k))

    # Events are merged per submodel: all local activities of a submodel
    # form ONE event (identity on level 1), and all shared activities of a
    # submodel that induce the same shared transition (s1 -> s1') form one
    # event per such pair.  The merge is exact (the non-merged Kronecker
    # factors are identical) and is what lets a single MD node collect all
    # symmetric transitions of a submodel — the per-node local lumpability
    # conditions of Definition 3 can then see the symmetry.
    events: List[Event] = []
    dropped = 0
    stats = {"local_events": 0, "shared_events": 0}
    for k, model in enumerate(join.submodels):
        level = k + 2
        local_table: Dict[int, List[Tuple[int, float]]] = {}
        sync_tables: Dict[
            Tuple[int, int], Dict[int, List[Tuple[int, float]]]
        ] = {}
        for activity in model.activities:
            if not activity.shared:
                table, dropped_here = _compile_local_activity(
                    join, k, activity, shared_states, private_states[k],
                    private_indices[k],
                )
                dropped += dropped_here
                for source, options in table.items():
                    local_table.setdefault(source, []).extend(options)
            else:
                grouped, dropped_here = _compile_shared_activity(
                    join, k, activity, shared_states, shared_index,
                    private_states[k], private_indices[k],
                )
                dropped += dropped_here
                for pair, table in grouped.items():
                    merged = sync_tables.setdefault(pair, {})
                    for source, options in table.items():
                        merged.setdefault(source, []).extend(options)
        if local_table:
            events.append(
                Event(f"{model.name}.local", 1.0, {level: local_table})
            )
            stats["local_events"] += 1
        for (s1_source, s1_target), table in sorted(sync_tables.items()):
            events.append(
                Event(
                    f"{model.name}.sync[{s1_source}->{s1_target}]",
                    1.0,
                    {
                        1: {s1_source: [(s1_target, 1.0)]},
                        level: table,
                    },
                )
            )
            stats["shared_events"] += 1

    initial_labels: List[Tuple[int, ...]] = [
        _marking_tuple(shared_names, join.initial_shared_marking())
    ]
    for k, model in enumerate(join.submodels):
        initial_labels.append(
            _marking_tuple(
                join.private_place_names(k), model.initial_marking()
            )
        )
    event_model = EventModel(level_spaces, events, initial_labels)
    return CompiledModel(
        join=join,
        event_model=event_model,
        level_names=level_names,
        level_place_names=level_place_names,
        dropped_transitions=dropped,
        stats=stats,
    )


def _compile_local_activity(
    join: Join,
    submodel_index: int,
    activity: Activity,
    shared_states: List[Tuple[int, ...]],
    private_states: List[Tuple[int, ...]],
    private_index: Dict[Tuple[int, ...], int],
):
    """A ``shared=False`` activity becomes one single-level effect table.

    The activity is evaluated under two different shared contexts; any
    disagreement means the ``shared=False`` declaration was wrong.
    """
    model = join.submodels[submodel_index]
    shared_names = join.shared_place_names()
    names = join.private_place_names(submodel_index)
    contexts = [shared_states[0]]
    if len(shared_states) > 1:
        contexts.append(shared_states[-1])
    table: Dict[int, List[Tuple[int, float]]] = {}
    dropped = 0
    for source_index, source in enumerate(private_states):
        reference: Optional[List[Tuple[int, float]]] = None
        for context in contexts:
            full = dict(zip(shared_names, context))
            full.update(dict(zip(names, source)))
            options: List[Tuple[int, float]] = []
            for target_full, rate in _fire_activity(activity, full):
                if _marking_tuple(shared_names, target_full) != context:
                    raise ModelError(
                        f"activity {activity.name!r} is declared local "
                        f"but modifies shared places"
                    )
                target = _marking_tuple(names, target_full)
                target_index = private_index.get(target)
                if target_index is None or not model.check_marking(
                    dict(zip(names, target))
                ):
                    dropped += 1
                    continue
                options.append((target_index, rate))
            options.sort()
            if reference is None:
                reference = options
            elif reference != options:
                raise ModelError(
                    f"activity {activity.name!r} is declared local but its "
                    f"behaviour depends on shared places"
                )
        if reference:
            table[source_index] = reference
    return table, dropped


def _compile_shared_activity(
    join: Join,
    submodel_index: int,
    activity: Activity,
    shared_states: List[Tuple[int, ...]],
    shared_index: Dict[Tuple[int, ...], int],
    private_states: List[Tuple[int, ...]],
    private_index: Dict[Tuple[int, ...], int],
):
    """A shared activity becomes one event per (shared, shared') pair."""
    model = join.submodels[submodel_index]
    shared_names = join.shared_place_names()
    names = join.private_place_names(submodel_index)
    level = submodel_index + 2
    grouped: Dict[Tuple[int, int], Dict[int, List[Tuple[int, float]]]] = {}
    dropped = 0
    for s1_index, shared in enumerate(shared_states):
        shared_marking = dict(zip(shared_names, shared))
        for source_index, source in enumerate(private_states):
            full = dict(shared_marking)
            full.update(dict(zip(names, source)))
            for target_full, rate in _fire_activity(activity, full):
                shared_target = _marking_tuple(shared_names, target_full)
                target = _marking_tuple(names, target_full)
                s1_target_index = shared_index.get(shared_target)
                target_index = private_index.get(target)
                if (
                    s1_target_index is None
                    or target_index is None
                    or not model.check_marking(dict(zip(names, target)))
                    or not join.check_shared_marking(
                        dict(zip(shared_names, shared_target))
                    )
                ):
                    dropped += 1
                    continue
                table = grouped.setdefault((s1_index, s1_target_index), {})
                table.setdefault(source_index, []).append(
                    (target_index, rate)
                )
    return grouped, dropped
