"""Replication of submodels (the Rep of Möbius' Rep/Join editor).

``replicate`` builds ``count`` copies of a template submodel inside a
single :class:`SANModel`: private places are renamed ``r{i}.{name}``,
shared places stay shared, and every activity is instantiated per replica
with its rate/probability/update functions operating on that replica's
renamed places.

Keeping all replicas in ONE submodel puts them in ONE MD level, which is
what lets the *compositional* lumping algorithm discover the replica
symmetry (permutations of identical replicas) from the MD alone — the
per-level encoding of the symmetry that model-level techniques like [10]
and [18] exploit structurally.  The test suite verifies that the lumped
level size equals the number of replica-state multisets.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import CompositionError
from repro.san.model import Activity, Case, Marking, Place, SANModel


def _rename(prefix: str, name: str) -> str:
    return f"{prefix}.{name}"


def _view(marking: Marking, prefix: str, private_names: List[str]) -> Marking:
    """The marking as one replica sees it: its own places unprefixed,
    shared places as-is."""
    view = dict(marking)
    for name in private_names:
        view[name] = marking[_rename(prefix, name)]
    return view


def _unview(
    base: Marking, updated: Marking, prefix: str, private_names: List[str]
) -> Marking:
    """Push a replica-local update back into the replicated namespace."""
    result = dict(base)
    private = set(private_names)
    for name, value in updated.items():
        if name in private:
            result[_rename(prefix, name)] = value
        else:
            result[name] = value
    return result


def replicate(
    template: SANModel,
    count: int,
    shared_names: Optional[List[str]] = None,
    name: Optional[str] = None,
    replica_prefix: str = "r",
) -> SANModel:
    """``count`` anonymous copies of ``template`` in one submodel.

    Parameters
    ----------
    template:
        The single-replica model.  Its activities must only read/write its
        own places (enforced by construction: each instantiated activity
        sees a per-replica view of the marking).
    count:
        Number of replicas (>= 1).
    shared_names:
        Places of the template that are common to all replicas (and
        typically shared further with other submodels via Join).  Default:
        none — all places replicated.
    name:
        Name of the resulting model (default ``{template.name}[xN]``).
    replica_prefix:
        Prefix for replica place names (``{prefix}{i}.{place}``); choose
        distinct prefixes when several replicated farms meet in one Join,
        or their private places would collide and become shared.
    """
    if count < 1:
        raise CompositionError("need at least one replica")
    shared = set(shared_names or ())
    unknown = shared - {p.name for p in template.places}
    if unknown:
        raise CompositionError(
            f"shared names {sorted(unknown)} are not places of the template"
        )
    private_names = [
        p.name for p in template.places if p.name not in shared
    ]

    places: List[Place] = [
        p for p in template.places if p.name in shared
    ]
    for replica in range(count):
        prefix = f"{replica_prefix}{replica}"
        for place in template.places:
            if place.name in shared:
                continue
            places.append(
                Place(_rename(prefix, place.name), place.capacity, place.initial)
            )

    activities: List[Activity] = []
    for replica in range(count):
        prefix = f"{replica_prefix}{replica}"
        for activity in template.activities:
            activities.append(
                _instantiate(activity, prefix, private_names)
            )

    invariant = None
    if template.local_invariant is not None:
        template_invariant = template.local_invariant

        def invariant(marking: Marking, _names=private_names) -> bool:
            return all(
                template_invariant(
                    {
                        name: marking[_rename(f"{replica_prefix}{r}", name)]
                        for name in _names
                    }
                )
                for r in range(count)
            )

    return SANModel(
        name or f"{template.name}[x{count}]",
        places,
        activities,
        local_invariant=invariant,
    )


def _instantiate(
    activity: Activity, prefix: str, private_names: List[str]
) -> Activity:
    def rate(marking: Marking) -> float:
        return activity.rate_in(_view(marking, prefix, private_names))

    cases = []
    for case in activity.cases:
        cases.append(_instantiate_case(case, prefix, private_names))
    return Activity(
        f"{prefix}.{activity.name}", rate, cases, shared=activity.shared
    )


def _instantiate_case(case: Case, prefix: str, private_names: List[str]) -> Case:
    def probability(marking: Marking) -> float:
        return case.probability_in(_view(marking, prefix, private_names))

    def update(marking: Marking) -> Optional[Marking]:
        updated = case.update(_view(marking, prefix, private_names))
        if updated is None:
            return None
        return _unview(marking, updated, prefix, private_names)

    return Case(probability, update, name=f"{prefix}.{case.name}")
