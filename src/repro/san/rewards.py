"""Reward specifications over markings, compiled to per-level vectors.

The paper's Section 3 requires rewards and initial vectors decomposable
over MD levels: ``r(s) = g(f_1(s_1), .., f_L(s_L))``.  This module lets a
modeler state measures in terms of *places* and compiles them into the
per-level ``f_i`` vectors of an :class:`repro.lumping.md_model.MDModel`,
checking decomposability structurally: each term may only read places that
live on a single level.

Example — mean number of jobs queued anywhere::

    spec = RewardSpec.sum(
        *[place_count(f"q{v}") for v in range(8)],
        *[place_count(f"w{k}") for k in range(4)],
    )

Example — availability indicator (product of per-level indicators)::

    spec = RewardSpec.product(
        marking_predicate(lambda m: m["f0"] + m["f1"] < 2, ["f0", "f1"]),
    )
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.errors import ModelError
from repro.lumping.md_model import MDModel
from repro.san.semantics import CompiledModel
from repro.statespace.reachability import ReachabilityResult


@dataclass(frozen=True)
class RewardTerm:
    """One decomposable factor: a function of some places' markings.

    ``places`` declares which places the function reads; they must all be
    assigned to the same MD level (checked at compile time).
    """

    function: Callable[[dict], float]
    places: Sequence[str]
    name: str = ""


def place_count(place: str) -> RewardTerm:
    """The marking of one place as a reward term."""
    return RewardTerm(lambda m: float(m[place]), [place], name=place)


def weighted_place(place: str, weight: float) -> RewardTerm:
    """``weight * marking(place)``."""
    return RewardTerm(
        lambda m: weight * float(m[place]), [place], name=f"{weight}*{place}"
    )


def marking_predicate(
    predicate: Callable[[dict], bool], places: Sequence[str], name: str = ""
) -> RewardTerm:
    """A 0/1 indicator of a predicate over some places."""
    return RewardTerm(
        lambda m: 1.0 if predicate(m) else 0.0, places, name=name
    )


class RewardSpec:
    """A decomposable reward: sum or product of :class:`RewardTerm`."""

    def __init__(self, terms: Sequence[RewardTerm], combiner: str) -> None:
        if combiner not in ("sum", "product"):
            raise ModelError("combiner must be 'sum' or 'product'")
        if not terms:
            raise ModelError("a reward spec needs at least one term")
        self.terms = list(terms)
        self.combiner = combiner

    @classmethod
    def sum(cls, *terms: RewardTerm) -> "RewardSpec":
        """``r(s) = sum of terms`` (rate rewards, e.g. queue lengths)."""
        return cls(terms, "sum")

    @classmethod
    def product(cls, *terms: RewardTerm) -> "RewardSpec":
        """``r(s) = product of terms`` (indicators / availability)."""
        return cls(terms, "product")


def _level_of_places(
    compiled: CompiledModel, places: Sequence[str]
) -> int:
    """The (single) 1-based level owning all the given places."""
    owners = set()
    for place in places:
        found = None
        for level, names in enumerate(compiled.level_place_names, start=1):
            if place in names:
                found = level
                break
        if found is None:
            raise ModelError(f"unknown place {place!r}")
        owners.add(found)
    if len(owners) != 1:
        raise ModelError(
            f"places {list(places)} span levels {sorted(owners)}; a "
            f"decomposable reward term must read a single level "
            f"(split it into per-level terms)"
        )
    return owners.pop()


def compile_reward(
    compiled: CompiledModel, spec: RewardSpec
) -> List[np.ndarray]:
    """Per-level ``f_i`` vectors realizing the spec.

    * ``sum``: untouched levels contribute 0; terms on the same level add.
    * ``product``: untouched levels contribute 1; terms on the same level
      multiply.
    """
    model = compiled.event_model
    neutral = 0.0 if spec.combiner == "sum" else 1.0
    vectors = [
        np.full(len(level), neutral) for level in model.levels
    ]
    for term in spec.terms:
        level = _level_of_places(compiled, term.places)
        names = compiled.level_place_names[level - 1]
        space = model.levels[level - 1]
        values = np.empty(len(space))
        for index in range(len(space)):
            label = space.label(index)
            marking = dict(zip(names, label))
            values[index] = float(term.function(marking))
        if spec.combiner == "sum":
            vectors[level - 1] = vectors[level - 1] + values
        else:
            vectors[level - 1] = vectors[level - 1] * values
    return vectors


def build_md_model(
    compiled: CompiledModel,
    reachable: Optional[ReachabilityResult] = None,
    rewards: Optional[RewardSpec] = None,
    initial: str = "point",
) -> MDModel:
    """One-call construction of an :class:`MDModel` from a compiled SAN.

    ``initial='point'`` puts all mass on the model's initial state (the
    paper's worked example of a decomposable ``pi_ini``);
    ``initial='uniform'`` weights every potential state equally.
    """
    model = compiled.event_model
    md = model.to_md()
    sizes = md.level_sizes

    if initial == "point":
        level_initial = []
        for level, substate in enumerate(model.initial_state):
            vector = np.zeros(sizes[level])
            vector[substate] = 1.0
            level_initial.append(vector)
    elif initial == "uniform":
        level_initial = [np.ones(size) for size in sizes]
    else:
        raise ModelError(f"unknown initial spec {initial!r}")

    if rewards is None:
        level_rewards = [np.zeros(size) for size in sizes]
        combiner = "sum"
    else:
        level_rewards = compile_reward(compiled, rewards)
        combiner = rewards.combiner

    reachable_indices = None
    if reachable is not None:
        if reachable.model is not model:
            raise ModelError(
                "reachability result was computed on a different event model"
            )
        reachable_indices = reachable.potential_indices()
    return MDModel(
        md,
        level_rewards=level_rewards,
        level_initial=level_initial,
        reward_combiner=combiner,
        reachable=reachable_indices,
    )
