"""Resilience layer: budgets, fault injection, fallbacks, run reports.

Production Markov tooling must degrade, not die.  This package makes
degradation first-class across the pipeline:

* :mod:`repro.robust.budgets` — composable wall-clock / iteration /
  state-count budgets, checked cooperatively inside reachability,
  refinement, and solver loops;
* :mod:`repro.robust.faults` — a deterministic, seedable fault injector
  (context manager or ``REPRO_FAULTS`` env var) so every degradation
  path is testable in CI;
* :mod:`repro.robust.fallback` — solver and reachability-engine fallback
  chains with per-attempt diagnostics and warm starts;
* :mod:`repro.robust.checkpoint` — crash-safe checkpoint/resume: atomic,
  sha256-verified snapshots of the reachability / refinement / solver
  loops, so a killed or budget-stopped run continues instead of
  restarting;
* :mod:`repro.robust.report` — a structured :class:`RunReport` of stage
  timings, attempts, fallbacks taken, and budget consumption.

``fallback`` is loaded lazily (PEP 562): it imports the solvers, which in
turn import :mod:`budgets`/:mod:`faults` for their cooperative hooks.
"""

from repro.robust.checkpoint import (
    CheckpointError,
    CheckpointEvent,
    Checkpointer,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)
from repro.robust.budgets import (
    Budget,
    BudgetConsumption,
    BudgetExceeded,
    IterationBudgetExceeded,
    StateBudgetExceeded,
    TimeBudgetExceeded,
    active_budget,
)
from repro.robust.faults import (
    FaultInjector,
    FaultRule,
    InjectedBudgetFault,
    InjectedFault,
    InjectedLumpingFault,
    InjectedSolverFault,
    InjectedStateSpaceFault,
    inject_faults,
)
from repro.robust.report import (
    AttemptReport,
    FallbackEvent,
    RunReport,
    StageReport,
)

_FALLBACK_EXPORTS = frozenset(
    {
        "DEFAULT_SOLVER_CHAIN",
        "EngineAttempt",
        "EngineFallbackResult",
        "FallbackSolution",
        "SolveAttempt",
        "reachable_with_fallback",
        "solve_with_fallback",
    }
)


def __getattr__(name):
    if name in _FALLBACK_EXPORTS:
        from repro.robust import fallback

        return getattr(fallback, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Budget",
    "BudgetConsumption",
    "BudgetExceeded",
    "TimeBudgetExceeded",
    "IterationBudgetExceeded",
    "StateBudgetExceeded",
    "active_budget",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "InjectedSolverFault",
    "InjectedStateSpaceFault",
    "InjectedLumpingFault",
    "InjectedBudgetFault",
    "inject_faults",
    "RunReport",
    "StageReport",
    "AttemptReport",
    "FallbackEvent",
    "Checkpointer",
    "CheckpointError",
    "CheckpointEvent",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "DEFAULT_SOLVER_CHAIN",
    "SolveAttempt",
    "FallbackSolution",
    "EngineAttempt",
    "EngineFallbackResult",
    "solve_with_fallback",
    "reachable_with_fallback",
]
