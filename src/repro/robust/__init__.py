"""Resilience layer: budgets, fault injection, fallbacks, run reports.

Production Markov tooling must degrade, not die.  This package makes
degradation first-class across the pipeline:

* :mod:`repro.robust.budgets` — composable wall-clock / iteration /
  state-count budgets, checked cooperatively inside reachability,
  refinement, and solver loops;
* :mod:`repro.robust.faults` — a deterministic, seedable fault injector
  (context manager or ``REPRO_FAULTS`` env var) so every degradation
  path is testable in CI;
* :mod:`repro.robust.fallback` — solver and reachability-engine fallback
  chains with per-attempt diagnostics and warm starts;
* :mod:`repro.robust.checkpoint` — crash-safe checkpoint/resume: atomic,
  sha256-verified snapshots of the reachability / refinement / solver
  loops, so a killed or budget-stopped run continues instead of
  restarting;
* :mod:`repro.robust.report` — a structured :class:`RunReport` of stage
  timings, attempts, fallbacks taken, and budget consumption;
* :mod:`repro.robust.certify` — numerical result certificates (NaN/Inf
  guards, mass defect, independent extended-precision residual recheck,
  lumped-vs-unlumped measure consistency, spectral lumpability
  spot-check) with an escalation ladder on failure, so "the result is
  right" is a checked property instead of an assumption;
* :mod:`repro.robust.supervisor` (with :mod:`~repro.robust.heartbeat`
  and :mod:`~repro.robust.retry`) — supervised execution: the pipeline
  in a forked child under hard OS limits, a watchdog that tells slow
  from hung via budget-site heartbeats, automatic restart from the
  latest checkpoint with backoff and a progressive degradation ladder,
  and a crash-loop circuit breaker with a structured diagnosis.

``fallback`` and the supervision modules are loaded lazily (PEP 562):
``fallback`` imports the solvers, which in turn import
:mod:`budgets`/:mod:`faults` for their cooperative hooks, and most runs
never fork a supervised child.
"""

from repro.robust.checkpoint import (
    CheckpointError,
    CheckpointEvent,
    Checkpointer,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)
from repro.robust.budgets import (
    Budget,
    BudgetConsumption,
    BudgetExceeded,
    IterationBudgetExceeded,
    StateBudgetExceeded,
    TimeBudgetExceeded,
    active_budget,
)
from repro.robust.faults import (
    FaultInjector,
    FaultRule,
    InjectedBudgetFault,
    InjectedFault,
    InjectedLumpingFault,
    InjectedSolverFault,
    InjectedStateSpaceFault,
    inject_faults,
)
from repro.robust.report import (
    AttemptReport,
    FallbackEvent,
    ProcessAttemptReport,
    RunReport,
    StageReport,
)

#: Lazily-loaded exports: attribute name -> providing submodule.
_LAZY_EXPORTS = {
    "Certificate": "certify",
    "CertificateCheck": "certify",
    "CertifiedSolve": "certify",
    "apply_corruption": "certify",
    "certify": "certify",
    "certify_stationary": "certify",
    "certify_with_escalation": "certify",
    "revalidate_cached": "certify",
    "DEFAULT_SOLVER_CHAIN": "fallback",
    "ITERATIVE_METHODS": "fallback",
    "EngineAttempt": "fallback",
    "EngineFallbackResult": "fallback",
    "FallbackSolution": "fallback",
    "SolveAttempt": "fallback",
    "reachable_with_fallback": "fallback",
    "solve_with_fallback": "fallback",
    "Heartbeat": "heartbeat",
    "HeartbeatMonitor": "heartbeat",
    "DEFAULT_LADDER": "retry",
    "DegradationLevel": "retry",
    "RetryPolicy": "retry",
    "level_for_failures": "retry",
    "scale_budget": "retry",
    "AttemptContext": "supervisor",
    "CrashLoopError": "supervisor",
    "SupervisedResult": "supervisor",
    "SupervisorConfig": "supervisor",
    "SupervisorError": "supervisor",
    "run_supervised": "supervisor",
}


def __getattr__(name: str) -> object:
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is not None:
        import importlib

        module = importlib.import_module(f"repro.robust.{module_name}")
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Budget",
    "BudgetConsumption",
    "BudgetExceeded",
    "TimeBudgetExceeded",
    "IterationBudgetExceeded",
    "StateBudgetExceeded",
    "active_budget",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "InjectedSolverFault",
    "InjectedStateSpaceFault",
    "InjectedLumpingFault",
    "InjectedBudgetFault",
    "inject_faults",
    "RunReport",
    "StageReport",
    "AttemptReport",
    "FallbackEvent",
    "ProcessAttemptReport",
    "Checkpointer",
    "CheckpointError",
    "CheckpointEvent",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "Certificate",
    "CertificateCheck",
    "CertifiedSolve",
    "apply_corruption",
    "certify",
    "certify_stationary",
    "certify_with_escalation",
    "revalidate_cached",
    "DEFAULT_SOLVER_CHAIN",
    "ITERATIVE_METHODS",
    "SolveAttempt",
    "FallbackSolution",
    "EngineAttempt",
    "EngineFallbackResult",
    "solve_with_fallback",
    "reachable_with_fallback",
    "Heartbeat",
    "HeartbeatMonitor",
    "RetryPolicy",
    "DegradationLevel",
    "DEFAULT_LADDER",
    "level_for_failures",
    "scale_budget",
    "AttemptContext",
    "SupervisorConfig",
    "SupervisedResult",
    "SupervisorError",
    "CrashLoopError",
    "run_supervised",
]
