"""Restart policy for supervised execution: backoff + degradation.

Two orthogonal pieces:

* :class:`RetryPolicy` — how many restarts, and how long to wait between
  them.  Backoff is exponential with *deterministic* jitter: the jitter
  for restart ``i`` is drawn from ``random.Random`` seeded by
  ``(seed, i)``, so a replayed crash schedule produces byte-identical
  backoff decisions (and hence identical supervisor logs/reports).

* :class:`DegradationLevel` / :data:`DEFAULT_LADDER` — *what to change*
  on each successive failure.  The ladder trades result cost for
  survivability in the order the issue mandates: shorter checkpoint
  intervals (lose less work per crash) → ``degrade=True`` lumping
  (identity partitions on pathological levels, still exact) → the
  iterative-only solver chain (skips a possibly-crashing direct solve)
  → reduced budgets (fail fast so the circuit breaker can diagnose).

The ladder is data, not code: callers may pass their own tuple of
levels to the supervisor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.robust.budgets import Budget


@dataclass(frozen=True)
class RetryPolicy:
    """Restart count and backoff schedule for the supervisor."""

    #: Restarts after the first attempt; total attempts = max_restarts + 1.
    max_restarts: int = 4
    backoff_initial_seconds: float = 0.1
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 30.0
    #: Fraction of the base delay used as the jitter range.
    jitter_fraction: float = 0.1
    #: Seed for deterministic jitter; same seed + same restart index
    #: always yields the same delay.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, not {self.max_restarts!r}"
            )
        if self.backoff_initial_seconds < 0:
            raise ValueError(
                "backoff_initial_seconds must be >= 0, "
                f"not {self.backoff_initial_seconds!r}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, not {self.backoff_factor!r}"
            )
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError(
                "jitter_fraction must be in [0, 1], "
                f"not {self.jitter_fraction!r}"
            )

    def backoff_seconds(self, restart_index: int) -> float:
        """Delay before restart ``restart_index`` (0-based: the wait
        before the second attempt has index 0)."""
        if restart_index < 0:
            raise ValueError(
                f"restart_index must be >= 0, not {restart_index!r}"
            )
        base = min(
            self.backoff_max_seconds,
            self.backoff_initial_seconds
            * self.backoff_factor**restart_index,
        )
        if base <= 0 or self.jitter_fraction == 0:
            return base
        # Deterministic jitter: a fresh, explicitly seeded generator per
        # (policy seed, restart index) — replays are byte-identical.
        rng = random.Random(self.seed * 1_000_003 + restart_index)
        jitter = base * self.jitter_fraction * (2.0 * rng.random() - 1.0)
        return max(0.0, min(self.backoff_max_seconds, base + jitter))


@dataclass(frozen=True)
class DegradationLevel:
    """One rung of the progressive degradation ladder."""

    name: str
    #: Checkpoint cadence in cooperative iterations (None = module default).
    checkpoint_interval: Optional[int] = None
    #: Enable graceful per-level lumping degradation (identity partition
    #: on levels that fail to refine; still exact).
    lumping_degrade: bool = False
    #: Override the solver fallback chain (None = caller's chain).
    solver_chain: Optional[Tuple[str, ...]] = None
    #: Multiply the caller's budgets by this factor (1.0 = unchanged).
    budget_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.checkpoint_interval is not None and self.checkpoint_interval < 1:
            raise ValueError(
                "checkpoint_interval must be >= 1, "
                f"not {self.checkpoint_interval!r}"
            )
        if not 0.0 < self.budget_scale <= 1.0:
            raise ValueError(
                f"budget_scale must be in (0, 1], not {self.budget_scale!r}"
            )


#: The default ladder: level ``min(consecutive_failures, len - 1)``.
#: Rungs 0–2 are bitwise-neutral for the final results (checkpointing
#: cadence and degrade-on-*failure* lumping do not change outputs on a
#: pipeline whose lumping succeeds); rungs 3–4 may change the numbers
#: (weaker solver, tighter budgets) and exist to keep *something*
#: completing so the breaker's diagnosis has data.
DEFAULT_LADDER: Tuple[DegradationLevel, ...] = (
    DegradationLevel(name="baseline"),
    DegradationLevel(name="frequent-checkpoints", checkpoint_interval=32),
    DegradationLevel(
        name="degraded-lumping",
        checkpoint_interval=32,
        lumping_degrade=True,
    ),
    DegradationLevel(
        name="iterative-solver",
        checkpoint_interval=16,
        lumping_degrade=True,
        solver_chain=("gauss-seidel", "jacobi", "power"),
    ),
    DegradationLevel(
        name="reduced-budgets",
        checkpoint_interval=16,
        lumping_degrade=True,
        solver_chain=("gauss-seidel", "jacobi", "power"),
        budget_scale=0.5,
    ),
)


def level_for_failures(
    failures: int, ladder: Sequence[DegradationLevel] = DEFAULT_LADDER
) -> DegradationLevel:
    """The rung to use after ``failures`` consecutive failed attempts
    (saturating at the last rung)."""
    if failures < 0:
        raise ValueError(f"failures must be >= 0, not {failures!r}")
    if not ladder:
        raise ValueError("ladder must not be empty")
    return ladder[min(failures, len(ladder) - 1)]


def scale_budget(budget: Optional[Budget], scale: float) -> Optional[Budget]:
    """A *fresh* budget with limits multiplied by ``scale``.

    Fresh matters: each supervised attempt must start with full (scaled)
    headroom, not inherit the consumed counters of the attempt it is
    replacing.  ``None`` stays ``None`` (unlimited).
    """
    if budget is None:
        return None
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], not {scale!r}")
    seconds = budget.wall_clock_seconds
    iterations = budget.max_iterations
    states = budget.max_states
    return Budget(
        wall_clock_seconds=None if seconds is None else seconds * scale,
        max_iterations=None
        if iterations is None
        else max(1, int(iterations * scale)),
        max_states=None if states is None else max(1, int(states * scale)),
    )
