"""Crash-safe checkpoint/resume for the pipeline's long-running loops.

Table-1-scale runs are long-lived; PR 1's budgets and fallbacks degrade a
run *in process* but still throw away all completed work when the process
dies or a budget fires.  This module adds durable progress: versioned,
integrity-checked, atomically written snapshots of the three loops that
dominate wall-clock time —

* reachability (the BFS frontier + visited set, and the current fixpoint
  set of the symbolic MDD engines),
* partition refinement (the current partition with its block ids, the
  splitter worklist, and the work counters),
* the iterative steady-state solvers (iterate vector + iteration count).

Checkpoint hooks piggyback on the same cooperative check sites the budget
system already instruments: each loop reads :func:`active` once at entry
(one global read — the entire inactive-path cost) and only engages when a
:class:`Checkpointer` is active.  ``BudgetExceeded`` escaping a loop
persists a final snapshot first, so re-running with a larger budget
continues instead of restarting.

On-disk format
--------------

A checkpoint directory holds one JSON file per snapshot key plus a
``MANIFEST.json`` mapping each file name to the sha256 of its exact
bytes.  Every write is atomic (tmp file + fsync + rename), so a crash
mid-write leaves either the old snapshot or the new one, never a torn
file.

A checkpoint directory may have *concurrent* writers: the parallel
execution layer (:mod:`repro.robust.pool`) forks worker processes that
inherit the active checkpointer and snapshot their shard of the work
under per-task scopes.  Two rules make that safe.  First, every
manifest mutation happens under an advisory ``flock`` on
``<directory>/.lock`` and starts by re-reading the manifest from disk
(read-merge-write), so one worker's manifest write can never erase
another's entry.  Second, shard snapshots live under per-task scope
labels (distinct sequence-key bases), so keep_last pruning — which only
ever touches files of the *same* base — cannot garbage-collect another
worker's snapshots.  Each snapshot records ``format`` (the schema version), a ``guard``
dict describing the computation it belongs to (problem sizes, content
digests), ``complete`` (whether the loop finished), and the ``payload``.

Resume is strictly best-effort: a snapshot that is missing from the
manifest, fails its hash, carries the wrong format version, or whose
guard does not match the caller's is *ignored* — the loop starts fresh
and the event is recorded (in :attr:`Checkpointer.events` and, when a
report is attached, as a ``checkpoint`` fallback in the
:class:`~repro.robust.report.RunReport`).  Corruption therefore degrades
to recomputation, never to a wrong answer.

Crash-equivalence is the contract: a run killed at any cooperative check
site and resumed from its checkpoints produces bitwise-identical
partitions and state spaces, and solution vectors equal within solver
tolerance, to an uninterrupted run
(``tests/test_crash_equivalence.py``).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from contextlib import contextmanager
from dataclasses import dataclass
from types import TracebackType
from typing import Any, Dict, Iterator, List, Optional, Type

try:
    import fcntl
except ImportError:  # non-POSIX: single-writer semantics only
    fcntl = None  # type: ignore[assignment]

from repro.errors import ReproError

#: Schema version of snapshot records and the manifest.  Bump on any
#: incompatible payload change; old snapshots are then ignored (fresh
#: start), never misread.
FORMAT_VERSION = 1

MANIFEST_NAME = "MANIFEST.json"


class CheckpointError(ReproError):
    """A checkpoint directory could not be written at all.

    Read-side problems (corruption, staleness) never raise — they fall
    back to a fresh start.  This error covers unusable directories only.
    """


# ----------------------------------------------------------------------
# atomic writes
# ----------------------------------------------------------------------


def _fsync_directory(path: str) -> None:
    """Flush a directory entry so a rename survives a crash (best effort:
    some platforms/filesystems refuse O_RDONLY directory fds)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically: tmp file, fsync, rename.

    A reader never observes a torn or partially written file — it sees
    either the previous contents or the new ones.
    """
    directory = os.path.dirname(os.path.abspath(path))
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except OSError as exc:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise CheckpointError(
            f"cannot atomically write {path!r}: {exc}"
        ) from exc
    _fsync_directory(directory)


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Atomic variant of ``open(path, "w").write(text)``."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: str, obj: Any, indent: Optional[int] = None) -> None:
    """Serialize ``obj`` as JSON and write it atomically."""
    atomic_write_text(path, json.dumps(obj, indent=indent))


def atomic_create_bytes(path: str, data: bytes) -> bool:
    """Atomically create ``path`` with ``data`` — a durable compare-and-set.

    Like :func:`atomic_write_bytes` (tmp file + fsync + publish), but the
    publish step is ``os.link``, which fails with ``EEXIST`` instead of
    overwriting.  Returns ``True`` if this call created the file, ``False``
    if some other writer got there first — the loser must re-read the
    winner's contents and react.  This is the primitive the service job
    store builds its lock-free state transitions on: two processes racing
    to append record ``N`` cannot both win, and the loser's data is never
    partially visible.
    """
    directory = os.path.dirname(os.path.abspath(path))
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        try:
            os.link(tmp_path, path)
        except FileExistsError:
            return False
        finally:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
    except OSError as exc:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise CheckpointError(
            f"cannot atomically create {path!r}: {exc}"
        ) from exc
    _fsync_directory(directory)
    return True


def atomic_create_json(path: str, obj: Any) -> bool:
    """JSON variant of :func:`atomic_create_bytes`."""
    return atomic_create_bytes(path, json.dumps(obj).encode("utf-8"))


def digest(*chunks: bytes) -> str:
    """sha256 hex digest over the concatenation of ``chunks`` (used for
    snapshot guards: content fingerprints of matrices, seed sets, ...)."""
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(chunk)
    return h.hexdigest()


# ----------------------------------------------------------------------
# the checkpointer
# ----------------------------------------------------------------------


@dataclass
class CheckpointEvent:
    """One thing the checkpointer did or refused to do.

    ``kind`` is one of ``saved``, ``complete`` (a final snapshot),
    ``resumed``, ``skipped`` (a complete snapshot short-circuited the
    loop), ``pruned`` (keep_last garbage collection), ``corrupt``,
    ``stale``, ``version-mismatch``, ``manifest-corrupt``,
    ``manifest-stale``, ``stale-lock-reclaimed`` (a dead holder's
    advisory lock was detected and taken over).
    """

    kind: str
    key: str
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "key": self.key, "detail": self.detail}


#: Event kinds that mean "a resume was attempted and fell back to a
#: fresh start" — these are surfaced as ``checkpoint`` fallbacks in the
#: RunReport so degraded resumes are visible to operators.
_FALLBACK_KINDS = frozenset(
    {"corrupt", "stale", "version-mismatch", "manifest-corrupt", "manifest-stale"}
)


def _jsonify(obj: Any) -> Any:
    """Round-trip through JSON so guard comparisons see what was stored
    (tuples become lists, numpy scalars are rejected early, ...)."""
    return json.loads(json.dumps(obj))


class Checkpointer:
    """Durable snapshots for one pipeline run.

    Use as a context manager to activate; the instrumented loops then
    find it through :func:`active` and checkpoint themselves.  A
    checkpointer is single-run state: construct a fresh one per pipeline
    invocation (sequence counters replay deterministically, which is how
    resumed runs line up with the snapshots of the killed run).

    Parameters
    ----------
    directory:
        Where snapshots live; created if missing.
    resume:
        When true, loops may load matching snapshots; when false,
        existing snapshots are ignored and overwritten.
    fingerprint:
        Optional string identifying the overall run configuration (model
        parameters, lumping kind, ...).  A manifest written by a run
        with a different fingerprint is treated as stale in its
        entirety.
    interval_iterations:
        Periodic-save stride: a loop's :meth:`tick` returns true every
        this many calls.  (Final and budget-exhaustion snapshots are
        written unconditionally.)
    min_save_interval_seconds:
        Additional floor between periodic saves of the same key (0
        disables the floor, keeping saves fully deterministic).
    keep_last:
        Per-sequence garbage collection: after each save of a key of the
        form ``scope/stage#N``, snapshots of the same scoped stage with
        sequence numbers ``<= N - keep_last`` are pruned.  ``None``
        (default) keeps everything.  Pruning is crash-safe: the doomed
        entries leave the manifest (atomically, after the new snapshot's
        manifest write fsyncs) *before* their files are unlinked, so a
        crash mid-prune leaves unreferenced orphan files, never a
        manifest pointing at deleted snapshots.
    report:
        Optional :class:`~repro.robust.report.RunReport` (duck-typed):
        resume fallbacks are recorded via ``record_fallback`` under the
        ``checkpoint`` stage and successful resumes via ``note``.
    """

    def __init__(
        self,
        directory: str,
        *,
        resume: bool = False,
        fingerprint: Optional[str] = None,
        interval_iterations: int = 256,
        min_save_interval_seconds: float = 0.0,
        keep_last: Optional[int] = None,
        report: Optional[Any] = None,
    ) -> None:
        if interval_iterations <= 0:
            raise ValueError(
                f"interval_iterations must be positive, not {interval_iterations!r}"
            )
        if keep_last is not None and keep_last < 1:
            raise ValueError(
                f"keep_last must be >= 1 or None, not {keep_last!r}"
            )
        self.directory = directory
        self.resume = resume
        self.fingerprint = fingerprint
        self.interval_iterations = interval_iterations
        self.min_save_interval_seconds = min_save_interval_seconds
        self.keep_last = keep_last
        self.pruned_count = 0
        self.events: List[CheckpointEvent] = []
        self._report = report
        self._scope: List[str] = []
        self._seq: Dict[str, int] = {}
        self._ticks: Dict[str, int] = {}
        self._last_save: Dict[str, float] = {}
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create checkpoint directory {directory!r}: {exc}"
            ) from exc
        self._lock_path = os.path.join(directory, ".lock")
        self._manifest: Dict[str, object] = {
            "format": FORMAT_VERSION,
            "fingerprint": fingerprint,
            "files": {},
        }
        if resume:
            with self._locked():
                self._load_manifest()

    # ------------------------------------------------------------------
    # activation and scoping
    # ------------------------------------------------------------------

    def __enter__(self) -> "Checkpointer":
        _ACTIVE.append(self)
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        _ACTIVE.remove(self)

    @contextmanager
    def scoped(self, label: str) -> Iterator["Checkpointer"]:
        """Prefix snapshot keys with ``label`` inside the block, so the
        same loop checkpoints under distinct keys at distinct call sites
        (per pipeline stage, per lumping level, ...)."""
        self._scope.append(str(label))
        try:
            yield self
        finally:
            self._scope.pop()

    def sequence_key(self, stage: str) -> str:
        """A unique snapshot key for the next call of ``stage`` within
        the current scope.

        Repeated calls at the same scoped stage get ``#0``, ``#1``, ...
        — deterministic, so a resumed run's Nth call finds the killed
        run's Nth snapshot.
        """
        base = "/".join(self._scope + [stage])
        seq = self._seq.get(base, 0)
        self._seq[base] = seq + 1
        return f"{base}#{seq}"

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Advisory exclusive lock on the checkpoint directory.

        Serializes manifest read-merge-write cycles across the processes
        sharing this directory (the pool's forked workers and their
        parent).  Degrades to a no-op where ``fcntl`` is unavailable or
        the lockfile cannot be opened — single-writer behaviour, which
        is what those platforms had before.

        The holder stamps its PID into the lockfile.  A stamp naming a
        dead process is stale — left by a SIGKILLed holder (the kernel
        released its flock but the stamp survived) or by a wedged lock
        on a leaked descriptor — and is reclaimed instead of blocking
        resume forever, with the reclaim recorded in the RunReport.
        """
        if fcntl is None:
            yield
            return
        try:
            fd = self._acquire_lock_fd()
        except OSError:
            yield
            return
        if fd is None:
            yield
            return
        try:
            yield
        finally:
            try:
                os.ftruncate(fd, 0)
            except OSError:
                pass
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:
                pass
            os.close(fd)

    def _acquire_lock_fd(self) -> Optional[int]:
        """Open + flock the lockfile, reclaiming stale dead-PID locks.

        Returns the locked fd (stamped with our PID), or ``None`` when
        the lockfile cannot be opened (degrade to no-op, as before).
        """
        fd = os.open(self._lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            # Contended.  If the stamped holder is dead the flock is
            # wedged (a leaked descriptor in a live relative, a stale
            # remote lock): unlink the inode so fresh lockers converge
            # on a new one, and retry on that.
            stale = self._stale_lock_pid(fd)
            if stale is not None:
                os.close(fd)
                try:
                    os.unlink(self._lock_path)
                except OSError:
                    pass
                self._event(
                    "stale-lock-reclaimed",
                    "",
                    f"advisory lock wedged by dead pid {stale}; "
                    "lockfile replaced",
                )
                fd = os.open(
                    self._lock_path, os.O_CREAT | os.O_RDWR, 0o644
                )
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
            except OSError:
                # The blocking retry itself failed (EINTR, ENOLCK).  The
                # descriptor is open but unlocked: close it before
                # degrading, or it leaks — and a leaked lockfile fd is
                # exactly the wedged-lock failure this method reclaims.
                os.close(fd)
                raise
            self._stamp_lock_fd(fd)
            return fd
        # Uncontended — but a dead-PID stamp means the previous holder
        # crashed while holding the lock.  Resume proceeds (the flock
        # died with the holder); record that we reclaimed its leavings.
        stale = self._stale_lock_pid(fd)
        if stale is not None:
            self._event(
                "stale-lock-reclaimed",
                "",
                f"advisory lock stamp from dead pid {stale}; reclaimed",
            )
        self._stamp_lock_fd(fd)
        return fd

    def _stale_lock_pid(self, fd: int) -> Optional[int]:
        """The dead PID stamped in the lockfile, or ``None`` if the
        stamp is empty, unreadable, ours, or names a live process."""
        try:
            os.lseek(fd, 0, os.SEEK_SET)
            raw = os.read(fd, 64).split(b"\n", 1)[0].strip()
            pid = int(raw)
        except (OSError, ValueError):
            return None
        if pid <= 0 or pid == os.getpid():
            return None
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return pid
        except OSError:
            pass
        return None

    def _stamp_lock_fd(self, fd: int) -> None:
        """Write our PID into the locked fd (best effort — the stamp is
        diagnostic metadata, not the lock itself)."""
        try:
            os.ftruncate(fd, 0)
            os.lseek(fd, 0, os.SEEK_SET)
            os.write(fd, f"{os.getpid()}\n".encode("ascii"))
        except OSError:
            pass

    def _reload_files_locked(self) -> None:
        """Adopt the on-disk manifest's files map (caller holds the lock).

        Every manifest write happens under the lock and is preceded by
        this reload, so the in-memory map a writer is about to extend
        already contains every entry concurrent writers have published —
        a manifest write can only ever *add* information, never lose a
        sibling's.  An unreadable or foreign manifest keeps the
        in-memory view (the write below restores a valid one).
        """
        try:
            with open(self.manifest_path, "rb") as handle:
                loaded = json.loads(handle.read())
        except (OSError, ValueError):
            return
        if (
            not isinstance(loaded, dict)
            or loaded.get("format") != FORMAT_VERSION
        ):
            return
        files = loaded.get("files")
        if isinstance(files, dict):
            self._manifest["files"] = dict(files)

    def _filename(self, key: str) -> str:
        return re.sub(r"[^A-Za-z0-9._#-]", "_", key) + ".json"

    def _load_manifest(self) -> None:
        try:
            with open(self.manifest_path, "rb") as handle:
                loaded = json.loads(handle.read())
        except FileNotFoundError:
            return  # nothing to resume from; not an event
        except (OSError, ValueError) as exc:
            self._event("manifest-corrupt", "", str(exc))
            return
        if not isinstance(loaded, dict) or loaded.get("format") != FORMAT_VERSION:
            self._event(
                "manifest-corrupt",
                "",
                f"unsupported manifest format {loaded.get('format')!r}"
                if isinstance(loaded, dict)
                else "manifest is not a JSON object",
            )
            return
        if (
            self.fingerprint is not None
            and loaded.get("fingerprint") is not None
            and loaded.get("fingerprint") != self.fingerprint
        ):
            self._event(
                "manifest-stale",
                "",
                f"checkpoint fingerprint {loaded.get('fingerprint')!r} does "
                f"not match this run's {self.fingerprint!r}",
            )
            return
        files = loaded.get("files")
        if isinstance(files, dict):
            self._manifest["files"] = dict(files)

    def tick(self, key: str) -> bool:
        """Count one loop pass under ``key``; true when a periodic save
        is due (every ``interval_iterations`` passes, subject to the
        minimum seconds-between-saves floor)."""
        count = self._ticks.get(key, 0) + 1
        self._ticks[key] = count
        if count % self.interval_iterations:
            return False
        if self.min_save_interval_seconds > 0:
            last = self._last_save.get(key)
            if (
                last is not None
                and time.monotonic() - last < self.min_save_interval_seconds
            ):
                return False
        return True

    def save(
        self,
        key: str,
        payload: Any,
        guard: Optional[dict] = None,
        complete: bool = False,
    ) -> None:
        """Atomically persist a snapshot and update the manifest.

        The snapshot file is written (and fsynced) before the manifest,
        so a crash between the two leaves a manifest hash that no longer
        matches — which the loader treats as corruption, i.e. a fresh
        start.  The manifest update (and the prune that follows it) runs
        under the directory lock as a read-merge-write, so concurrent
        workers sharing the directory never lose each other's entries.
        ``payload`` and ``guard`` must be JSON-serializable.
        """
        record = {
            "format": FORMAT_VERSION,
            "key": key,
            "complete": bool(complete),
            "guard": guard or {},
            "payload": payload,
        }
        blob = json.dumps(record, separators=(",", ":")).encode("utf-8")
        filename = self._filename(key)
        atomic_write_bytes(os.path.join(self.directory, filename), blob)
        with self._locked():
            self._reload_files_locked()
            self._manifest["files"][filename] = hashlib.sha256(
                blob
            ).hexdigest()
            atomic_write_json(self.manifest_path, self._manifest)
            self._prune_locked(key)
        self._last_save[key] = time.monotonic()
        self._event("complete" if complete else "saved", key)

    def _prune_locked(self, key: str) -> None:
        """Garbage-collect old snapshots of ``key``'s scoped sequence
        (caller holds the directory lock).

        Runs only *after* the new snapshot's manifest write (which is
        fsynced), so the retained window always includes the snapshot
        just saved.  Manifest first, files second: a crash between the
        two leaves orphan files the manifest never references again —
        harmless — rather than manifest entries whose files are gone.
        Only files of ``key``'s own sequence base are candidates, so a
        concurrent worker's snapshots (distinct per-shard scopes) are
        never collected from here.
        """
        if self.keep_last is None:
            return
        base, sep, seq_token = key.rpartition("#")
        if not sep:
            return  # unsequenced key: nothing to roll over
        try:
            seq = int(seq_token)
        except ValueError:
            return
        prefix = re.sub(r"[^A-Za-z0-9._#-]", "_", base) + "#"
        cutoff = seq - self.keep_last  # prune sequence numbers <= cutoff
        if cutoff < 0:
            return
        doomed = []
        for filename in self._manifest["files"]:
            if not (filename.startswith(prefix) and filename.endswith(".json")):
                continue
            try:
                old_seq = int(filename[len(prefix) : -len(".json")])
            except ValueError:
                continue
            if old_seq <= cutoff:
                doomed.append(filename)
        if not doomed:
            return
        doomed.sort()
        for filename in doomed:
            del self._manifest["files"][filename]
        atomic_write_json(self.manifest_path, self._manifest)
        for filename in doomed:
            try:
                os.unlink(os.path.join(self.directory, filename))
            except OSError:
                pass  # orphan files are harmless; the manifest moved on
        self.pruned_count += len(doomed)
        self._event(
            "pruned",
            key,
            f"{len(doomed)} old snapshot(s) dropped "
            f"(keep_last={self.keep_last})",
        )

    def load(self, key: str, guard: Optional[dict] = None) -> Optional[dict]:
        """The snapshot record for ``key``, or ``None`` for a fresh start.

        ``None`` is returned — with the reason recorded as an event —
        when resume is disabled, no snapshot exists, the file is missing
        or fails its manifest hash, the format version differs, or the
        stored guard does not equal ``guard``.  Never raises.
        """
        if not self.resume:
            return None
        filename = self._filename(key)
        expected_hash = self._manifest["files"].get(filename)
        if expected_hash is None:
            return None  # nothing was ever saved here; silently fresh
        path = os.path.join(self.directory, filename)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError as exc:
            self._event("corrupt", key, f"unreadable snapshot: {exc}")
            return None
        if hashlib.sha256(blob).hexdigest() != expected_hash:
            self._event(
                "corrupt", key, "snapshot bytes do not match the manifest hash"
            )
            return None
        try:
            record = json.loads(blob)
        except ValueError as exc:
            self._event("corrupt", key, f"snapshot is not valid JSON: {exc}")
            return None
        if not isinstance(record, dict) or "payload" not in record:
            self._event("corrupt", key, "snapshot record is malformed")
            return None
        if record.get("format") != FORMAT_VERSION:
            self._event(
                "version-mismatch",
                key,
                f"snapshot format {record.get('format')!r}, "
                f"this library writes {FORMAT_VERSION}",
            )
            return None
        if guard is not None and record.get("guard") != _jsonify(guard):
            self._event(
                "stale",
                key,
                "snapshot belongs to a different computation "
                "(guard mismatch)",
            )
            return None
        self._event(
            "skipped" if record.get("complete") else "resumed", key
        )
        return record

    # ------------------------------------------------------------------
    # event recording
    # ------------------------------------------------------------------

    def _event(self, kind: str, key: str, detail: str = "") -> None:
        self.events.append(CheckpointEvent(kind=kind, key=key, detail=detail))
        if self._report is None:
            return
        if kind in _FALLBACK_KINDS:
            self._report.record_fallback(
                stage="checkpoint",
                requested=f"resume {key}" if key else "resume",
                used="fresh start",
                reason=f"{kind}: {detail}" if detail else kind,
            )
        elif kind == "skipped":
            self._report.note(
                f"checkpoint: reused completed snapshot {key}"
            )
        elif kind == "resumed":
            self._report.note(f"checkpoint: resumed {key} mid-loop")
        elif kind == "pruned":
            self._report.note(f"checkpoint: pruned {key}: {detail}")
        elif kind == "stale-lock-reclaimed":
            self._report.note(f"checkpoint: {detail}")

    def events_of_kind(self, *kinds: str) -> List[CheckpointEvent]:
        """The recorded events whose kind is one of ``kinds``."""
        wanted = set(kinds)
        return [event for event in self.events if event.kind in wanted]

    def __repr__(self) -> str:
        return (
            f"Checkpointer({self.directory!r}, resume={self.resume!r}, "
            f"snapshots={len(self._manifest['files'])})"
        )


# ----------------------------------------------------------------------
# the module-level hook the loops use
# ----------------------------------------------------------------------

#: Stack of active checkpointers (innermost last), mirroring the budget
#: stack so nested pipelines compose the same way.
_ACTIVE: List[Checkpointer] = []


def active() -> Optional[Checkpointer]:
    """The innermost active checkpointer, or ``None``.

    This is the loops' entire inactive-path cost: one global read at
    loop entry.
    """
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def scoped(label: str) -> Iterator[Optional[Checkpointer]]:
    """Scope the active checkpointer's keys under ``label``; a no-op
    context when no checkpointer is active."""
    ck = active()
    if ck is None:
        yield None
        return
    with ck.scoped(label):
        yield ck
