"""Fault-tolerant parallel execution: a supervised pool of fork workers.

The paper's ``CompLumpingLevel`` iterates ``CompLumping`` independently
over every node of a level, and BFS/MDD reachability expands an
order-independent frontier — both embarrassingly parallel.  This module
supplies the *fault-tolerant* fan-out those loops share: a deterministic
work queue executed by forked worker processes, each supervised the same
way :mod:`repro.robust.supervisor` supervises its single child — a
per-worker heartbeat file, crash detection, restart with deterministic
backoff — plus the pool-level policies a fan-out needs:

* **per-task retry** — a task whose worker raised or died is re-queued
  and charged one attempt; after ``max_task_retries`` failed attempts it
  is *quarantined* and later executed serially in the parent (where the
  position-addressed ``task`` fault site is never consulted, so a
  poisoned task completes);
* **crash-loop breaker per worker slot** — a slot whose process keeps
  dying is retired after ``max_worker_crashes`` crashes instead of being
  restarted forever;
* **whole-pool degradation** — when every slot is retired, the remaining
  tasks run serially in the parent (recorded as ``pool-degraded``), so a
  hostile fault schedule degrades throughput, never correctness;
* **straggler re-dispatch** — once the queue is empty, an in-flight task
  older than ``straggler_after_seconds`` is duplicated onto an idle
  worker and the first result wins (duplicates are discarded by task
  id, which is safe because task functions are pure).

Determinism contract
--------------------

*Scheduling* is timing-dependent — which worker runs which task, and in
what order results arrive, varies run to run.  *Results* are not:
:meth:`WorkerPool.run` returns results indexed by task id, task
functions are pure (a retried or duplicated execution returns an equal
value), and callers merge in sorted task-id order.  A parallel run is
therefore bitwise-identical to a serial one, crashes or not — the
property ``tests/test_crash_equivalence.py`` and
``tests/test_kill_storm.py`` assert.  To keep it, the parent's poll loop
calls **no budget hooks** (their call counts would become
timing-dependent, which would make call-counted fault schedules
nondeterministic); it only pulses :func:`repro.robust.heartbeat.beat`,
so an enclosing supervised child stays live while the pool waits.

Fault injection
---------------

Workers consult the position-addressed fault sites on top of whatever
counted sites the task function itself hits: ``worker:<slot>`` fires via
:func:`repro.robust.faults.check_at` with the worker's 1-based slot at
startup (``worker:2@sigkill`` kills the second slot's process), and
``task:<id>`` fires with the 1-based task id just before execution
(``task:3@hang:5`` stalls task 3).  When no fired log is installed the
pool installs a scratch one for its lifetime, so one-shot rules stay
one-shot across worker restarts *within* the pool; positions are
per-pool, so ``worker:2@sigkill`` kills slot 2 once in every parallel
section — a machine that is flaky at every fan-out, which exercises more
of the recovery ladder, not less.

Workers are forked, so they inherit the active budget, checkpointer,
and fault injectors by reference-at-fork; per-task checkpoint scopes
(the ``scopes`` argument to :meth:`WorkerPool.run`) plus the checkpoint
directory's advisory lock keep concurrent worker snapshots from
clobbering each other.
"""

from __future__ import annotations

import os
import pickle
import select
import shutil
import signal
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from types import TracebackType
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Type,
    Union,
)

from repro.errors import ReproError
from repro.robust import checkpoint, faults, heartbeat
from repro.robust.budgets import BudgetExceeded
from repro.robust.report import PoolEvent
from repro.robust.retry import RetryPolicy


class PoolError(ReproError):
    """The pool itself (not a task) failed unrecoverably."""


@dataclass
class ParallelConfig:
    """Knobs for one parallel section (see module docstring).

    ``parallel=N`` surfaces throughout the pipeline normalize to this
    via :func:`parallel_config`; robust entry points attach their
    :class:`~repro.robust.report.RunReport` to :attr:`report` so every
    pool event lands in the run's record.
    """

    workers: int = 2
    #: Failed attempts (raise, crash, timeout, hang) a task may accrue
    #: before it is quarantined to the parent's serial path.
    max_task_retries: int = 3
    #: Crashes a worker slot may accrue before it is retired.
    max_worker_crashes: int = 3
    #: Per-task wall-clock deadline (None: no deadline).
    task_timeout_seconds: Optional[float] = None
    #: A busy worker whose heartbeat is older than this is killed as hung.
    heartbeat_timeout_seconds: float = 30.0
    #: Duplicate an in-flight task onto an idle worker after this long
    #: (None: never re-dispatch stragglers).
    straggler_after_seconds: Optional[float] = None
    poll_interval_seconds: float = 0.02
    heartbeat_min_interval_seconds: float = 0.02
    #: Backoff schedule for restarting a crashed worker slot (only the
    #: backoff fields are used; restart counting is ``max_worker_crashes``).
    policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_restarts=3,
            backoff_initial_seconds=0.05,
            backoff_factor=2.0,
            backoff_max_seconds=0.5,
        )
    )
    #: Optional RunReport (duck-typed) receiving every pool event.
    report: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, not {self.workers!r}")
        if self.max_task_retries < 0:
            raise ValueError(
                f"max_task_retries must be >= 0, not {self.max_task_retries!r}"
            )
        if self.max_worker_crashes < 0:
            raise ValueError(
                "max_worker_crashes must be >= 0, "
                f"not {self.max_worker_crashes!r}"
            )
        if self.heartbeat_timeout_seconds <= 0:
            raise ValueError(
                "heartbeat_timeout_seconds must be > 0, "
                f"not {self.heartbeat_timeout_seconds!r}"
            )
        if self.poll_interval_seconds <= 0:
            raise ValueError(
                "poll_interval_seconds must be > 0, "
                f"not {self.poll_interval_seconds!r}"
            )


def parallel_config(
    parallel: Union[None, bool, int, ParallelConfig],
) -> Optional[ParallelConfig]:
    """Normalize a user-facing ``parallel=`` value.

    ``None``/``False``/``0``/``1`` mean serial (returns ``None``); an
    integer ``N >= 2`` means ``ParallelConfig(workers=N)``; a
    :class:`ParallelConfig` is passed through (even with one worker —
    an explicit config always engages the pool, which tests use to
    exercise the machinery at minimum width).
    """
    if parallel is None or parallel is False:
        return None
    if isinstance(parallel, ParallelConfig):
        return parallel
    if isinstance(parallel, bool):  # True without a width is ambiguous
        raise ValueError("parallel=True needs a worker count or config")
    if isinstance(parallel, int):
        if parallel <= 1:
            return None
        return ParallelConfig(workers=parallel)
    raise ValueError(
        f"parallel must be an int or ParallelConfig, not {parallel!r}"
    )


def autodegrade_parallel(
    parallel: Union[None, bool, int, ParallelConfig],
    report: Optional[Any] = None,
) -> Optional[ParallelConfig]:
    """Resolve ``parallel=`` against the host, degrading hopeless widths.

    Forked workers on a host with one core — or more workers than cores —
    can only lose wall-clock to fork/IPC overhead while changing nothing
    about the answer (the pool's merge is bitwise-deterministic either
    way).  So an *int* width that cannot win here degrades to serial,
    recorded as a ``pool-degraded`` event with reason
    ``insufficient-cores``.  An explicit :class:`ParallelConfig` remains
    the escape hatch: it always engages the pool, which tests and storms
    use to exercise the machinery regardless of host shape.
    """
    cfg = parallel_config(parallel)
    if cfg is None or isinstance(parallel, ParallelConfig):
        return cfg
    cores = os.cpu_count() or 1
    if cores <= 1 or cfg.workers > cores:
        if report is not None:
            report.record_pool_event(
                "pool-degraded",
                detail=(
                    f"insufficient-cores: requested {cfg.workers} "
                    f"worker(s), host has {cores} core(s); running "
                    "serially"
                ),
            )
        return None
    return cfg


# ----------------------------------------------------------------------
# frame protocol (length-prefixed pickles over pipes)
# ----------------------------------------------------------------------

_HEADER_BYTES = 8


def _write_frame(fd: int, obj: Any) -> None:
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    view = memoryview(len(blob).to_bytes(_HEADER_BYTES, "big") + blob)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _read_exact(fd: int, count: int) -> Optional[bytes]:
    """Blocking read of exactly ``count`` bytes; ``None`` on EOF."""
    chunks = []
    while count:
        chunk = os.read(fd, count)
        if not chunk:
            return None
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


class _FrameBuffer:
    """Parent-side incremental decoder for one worker's result pipe."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> List[Any]:
        self._buf.extend(data)
        frames: List[Any] = []
        while True:
            if len(self._buf) < _HEADER_BYTES:
                break
            size = int.from_bytes(self._buf[:_HEADER_BYTES], "big")
            if len(self._buf) < _HEADER_BYTES + size:
                break
            blob = bytes(self._buf[_HEADER_BYTES : _HEADER_BYTES + size])
            del self._buf[: _HEADER_BYTES + size]
            frames.append(pickle.loads(blob))
        return frames


# ----------------------------------------------------------------------
# worker child
# ----------------------------------------------------------------------


def _worker_main(
    slot: int,
    task_fn: Callable[[Any], Any],
    recv_fd: int,
    send_fd: int,
    hb_path: str,
    hb_min_interval: float,
) -> None:
    """Worker loop: read ``(task_id, scope, payload)`` frames, execute,
    answer with ``("ok"|"error"|"budget", task_id, ...)`` frames."""
    hb = heartbeat.install(hb_path, min_interval_seconds=hb_min_interval)
    hb.beat(force=True)
    faults.reload_fired_log()  # pick up firings recorded since the fork
    faults.check_at("worker", slot + 1)
    while True:
        header = _read_exact(recv_fd, _HEADER_BYTES)
        if header is None:
            return
        blob = _read_exact(recv_fd, int.from_bytes(header, "big"))
        if blob is None:
            return
        message = pickle.loads(blob)
        if message is None:  # explicit shutdown
            return
        task_id, scope, payload = message
        hb.beat(force=True)
        try:
            faults.reload_fired_log()
            faults.check_at("task", task_id + 1)
            if scope is None:
                result = task_fn(payload)
            else:
                with checkpoint.scoped(scope):
                    result = task_fn(payload)
        except BudgetExceeded as exc:
            _write_frame(send_fd, ("budget", task_id, str(exc)))
            continue
        except BaseException as exc:  # reprolint: disable=RL005 -- reported to the parent as an error frame, which records task-failed and retries
            _write_frame(
                send_fd,
                ("error", task_id, f"{type(exc).__name__}: {exc}"),
            )
            continue
        hb.beat(force=True)
        _write_frame(send_fd, ("ok", task_id, result))


class _Proc:
    """One live worker process (a slot's current incarnation)."""

    __slots__ = (
        "pid",
        "send_fd",
        "recv_fd",
        "reader",
        "monitor",
        "busy",
        "dispatch_time",
    )

    def __init__(
        self, pid: int, send_fd: int, recv_fd: int, hb_path: str
    ) -> None:
        self.pid = pid
        self.send_fd = send_fd
        self.recv_fd = recv_fd
        self.reader = _FrameBuffer()
        self.monitor = heartbeat.HeartbeatMonitor(hb_path)
        self.busy: Optional[int] = None  # task id in flight
        self.dispatch_time: Optional[float] = None


class _Slot:
    """One worker position: survives restarts, carries the crash count."""

    __slots__ = ("index", "hb_path", "crashes", "retired", "restart_at", "proc")

    def __init__(self, index: int, hb_path: str) -> None:
        self.index = index
        self.hb_path = hb_path
        self.crashes = 0
        self.retired = False
        self.restart_at: Optional[float] = None
        self.proc: Optional[_Proc] = None


class _Batch:
    """Mutable state of one :meth:`WorkerPool.run` call."""

    def __init__(self, tasks: Sequence[Any], scopes: Any) -> None:
        self.tasks = tasks
        self.scopes = scopes
        self.results: Dict[int, Any] = {}
        self.attempts: Dict[int, int] = {}
        self.quarantined: Set[int] = set()
        self.pending: deque = deque(range(len(tasks)))
        self.dispatch_times: Dict[int, float] = {}

    def scope_of(self, task_id: int) -> Optional[str]:
        return None if self.scopes is None else self.scopes[task_id]

    def settled(self) -> int:
        return len(set(self.results) | self.quarantined)

    def done(self) -> bool:
        return self.settled() >= len(self.tasks)


class WorkerPool:
    """A pool of supervised fork workers executing one task function.

    Use as a context manager; :meth:`run` may be called any number of
    times while the pool is open (each call is one deterministic batch).
    ``task_fn`` must be pure — retries and straggler duplicates assume a
    re-execution returns an equal result.
    """

    def __init__(
        self,
        task_fn: Callable[[Any], Any],
        config: ParallelConfig,
        *,
        report: Optional[Any] = None,
        label: str = "pool",
    ) -> None:
        self.task_fn = task_fn
        self.config = config
        self.report = report if report is not None else config.report
        self.label = label
        self.events: List[PoolEvent] = []
        self._slots: List[_Slot] = []
        # Slot index -> in-flight task orphaned by the slot's last death.
        self._orphans: Dict[int, Optional[int]] = {}
        self._scratch: Optional[str] = None
        self._own_fired_log = False
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        self._scratch = tempfile.mkdtemp(prefix="repro-pool-")
        if faults.injectors_active() and faults.fired_log_path() is None:
            # One-shot worker/task rules must not re-fire every time a
            # crashed worker restarts; a scratch fired log scoped to the
            # pool's lifetime gives them cross-process memory.
            faults.set_fired_log(os.path.join(self._scratch, "faults.fired"))
            self._own_fired_log = True
        self._slots = [
            _Slot(i, os.path.join(self._scratch, f"worker-{i}.hb"))
            for i in range(self.config.workers)
        ]
        for slot in self._slots:
            self._spawn(slot)
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        procs = [s.proc for s in self._slots if s.proc is not None]
        for proc in procs:
            try:
                _write_frame(proc.send_fd, None)
            except OSError:
                pass
            try:
                os.close(proc.send_fd)
            except OSError:
                pass
        deadline = time.monotonic() + 2.0
        waiting = list(procs)
        while waiting and time.monotonic() < deadline:
            still = []
            for proc in waiting:
                try:
                    pid, _status = os.waitpid(proc.pid, os.WNOHANG)
                except OSError:
                    continue  # already reaped
                if pid == 0:
                    still.append(proc)
            waiting = still
            if waiting:
                time.sleep(0.01)
        for proc in waiting:
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except OSError:
                pass
            try:
                os.waitpid(proc.pid, 0)
            except OSError:
                pass
        for proc in procs:
            try:
                os.close(proc.recv_fd)
            except OSError:
                pass
        for slot in self._slots:
            slot.proc = None
        if self._own_fired_log:
            faults.set_fired_log(None)
            self._own_fired_log = False
        if self._scratch is not None:
            shutil.rmtree(self._scratch, ignore_errors=True)
            self._scratch = None

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------

    def _record(
        self,
        kind: str,
        worker: Optional[int] = None,
        task: Optional[int] = None,
        detail: str = "",
    ) -> None:
        task_label = None if task is None else f"{self.label}:{task}"
        event = PoolEvent(
            kind=kind, worker=worker, task=task_label, detail=detail
        )
        self.events.append(event)
        if self.report is not None:
            self.report.record_pool_event(
                kind, worker=worker, task=task_label, detail=detail
            )

    def events_of_kind(self, *kinds: str) -> List[PoolEvent]:
        """The recorded events whose kind is one of ``kinds``."""
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    # ------------------------------------------------------------------
    # spawning
    # ------------------------------------------------------------------

    def _inherited_fds(self) -> List[int]:
        fds = []
        for slot in self._slots:
            if slot.proc is not None:
                fds.append(slot.proc.send_fd)
                fds.append(slot.proc.recv_fd)
        return fds

    def _spawn(self, slot: _Slot) -> None:
        try:
            os.unlink(slot.hb_path)  # a stale beat must not read as live
        except OSError:
            pass
        foreign = self._inherited_fds()
        req_read, req_write = os.pipe()
        res_read, res_write = os.pipe()
        try:
            pid = os.fork()
        except OSError as exc:
            for fd in (req_read, req_write, res_read, res_write):
                os.close(fd)
            slot.retired = True
            slot.restart_at = None
            self._record(
                "worker-retired",
                worker=slot.index,
                detail=f"fork failed: {exc}",
            )
            return
        if pid == 0:
            code = 1
            try:
                os.close(req_write)
                os.close(res_read)
                for fd in foreign:
                    try:
                        os.close(fd)
                    except OSError:
                        pass
                _worker_main(
                    slot.index,
                    self.task_fn,
                    req_read,
                    res_write,
                    slot.hb_path,
                    self.config.heartbeat_min_interval_seconds,
                )
                code = 0
            except BaseException:  # reprolint: disable=RL005 -- forked child: the nonzero exit code IS the report; the parent records worker-crashed
                code = 1
            finally:
                os._exit(code)
        os.close(req_read)
        os.close(res_write)
        slot.proc = _Proc(pid, req_write, res_read, slot.hb_path)
        slot.restart_at = None
        self._record(
            "worker-started" if slot.crashes == 0 else "worker-restarted",
            worker=slot.index,
            detail=f"pid {pid}",
        )

    # ------------------------------------------------------------------
    # the batch loop
    # ------------------------------------------------------------------

    def run(
        self,
        tasks: Sequence[Any],
        scopes: Optional[Sequence[Optional[str]]] = None,
    ) -> List[Any]:
        """Execute every task; return results in task order.

        ``scopes`` optionally names a checkpoint scope per task (the
        worker wraps execution in ``checkpoint.scoped(scope)``), keeping
        concurrent worker snapshots under distinct, deterministic keys.
        Raises :class:`BudgetExceeded` if any execution exhausts a
        budget — the batch's terminal condition, exactly as in serial.
        """
        if self._closed or self._scratch is None:
            raise PoolError("pool is not open (use it as a context manager)")
        if scopes is not None and len(scopes) != len(tasks):
            raise PoolError("scopes must match tasks one-to-one")
        batch = _Batch(tasks, scopes)
        if not tasks:
            return []
        while not batch.done():
            if all(slot.retired for slot in self._slots):
                self._degrade(batch)
                break
            now = time.monotonic()
            self._restart_due(now)
            self._dispatch(batch, now)
            self._poll(batch)
            self._check_deadlines(batch)
            heartbeat.beat()
        for task_id in sorted(batch.quarantined):
            if task_id not in batch.results:
                batch.results[task_id] = self._run_serial(
                    tasks[task_id], batch.scope_of(task_id)
                )
        return [batch.results[i] for i in range(len(tasks))]

    # -- scheduling helpers --------------------------------------------

    def _restart_due(self, now: float) -> None:
        for slot in self._slots:
            if (
                slot.proc is None
                and not slot.retired
                and slot.restart_at is not None
                and now >= slot.restart_at
            ):
                self._spawn(slot)

    def _dispatch(self, batch: _Batch, now: float) -> None:
        for slot in self._slots:
            proc = slot.proc
            if proc is None or proc.busy is not None:
                continue
            task_id = None
            while batch.pending:
                candidate = batch.pending.popleft()
                if candidate not in batch.results:
                    task_id = candidate
                    break
            if task_id is None:
                task_id = self._pick_straggler(batch, now)
                if task_id is None:
                    continue
                self._record(
                    "straggler-redispatched",
                    worker=slot.index,
                    task=task_id,
                    detail=(
                        "in flight "
                        f"{now - batch.dispatch_times[task_id]:.2f}s"
                    ),
                )
            try:
                _write_frame(
                    proc.send_fd,
                    (task_id, batch.scope_of(task_id), batch.tasks[task_id]),
                )
            except OSError:
                batch.pending.appendleft(task_id)
                self._reap(slot, "request pipe closed (worker died)")
                self._requeue_orphan(slot, batch)
                continue
            proc.busy = task_id
            proc.dispatch_time = now
            batch.dispatch_times.setdefault(task_id, now)

    def _pick_straggler(self, batch: _Batch, now: float) -> Optional[int]:
        limit = self.config.straggler_after_seconds
        if limit is None:
            return None
        running = {
            s.proc.busy
            for s in self._slots
            if s.proc is not None and s.proc.busy is not None
        }
        oldest = None
        for task_id in sorted(running):
            if task_id in batch.results:
                continue
            started = batch.dispatch_times.get(task_id)
            if started is None or now - started < limit:
                continue
            if oldest is None or started < batch.dispatch_times[oldest]:
                oldest = task_id
        return oldest

    def _poll(self, batch: _Batch) -> None:
        fds = {
            s.proc.recv_fd: s for s in self._slots if s.proc is not None
        }
        if not fds:
            time.sleep(self.config.poll_interval_seconds)
            return
        try:
            readable, _w, _x = select.select(
                list(fds), [], [], self.config.poll_interval_seconds
            )
        except OSError:
            return
        for fd in readable:
            slot = fds[fd]
            if slot.proc is None or slot.proc.recv_fd != fd:
                continue  # slot turned over within this poll round
            try:
                data = os.read(fd, 1 << 16)
            except OSError:
                data = b""
            if not data:
                self._reap(slot, "crashed")
                self._requeue_orphan(slot, batch)
                continue
            for frame in slot.proc.reader.feed(data):
                self._handle_frame(slot, frame, batch)

    def _handle_frame(self, slot: _Slot, frame, batch: _Batch) -> None:
        kind, task_id, payload = frame
        proc = slot.proc
        if proc is not None and proc.busy == task_id:
            proc.busy = None
            proc.dispatch_time = None
        if kind == "budget":
            raise BudgetExceeded(
                f"worker {slot.index} exhausted a budget on task "
                f"{task_id}: {payload}"
            )
        if task_id in batch.results:
            return  # straggler duplicate: first result won
        if kind == "ok":
            batch.results[task_id] = payload
            return
        # kind == "error": the worker survived but the task raised.
        self._record(
            "task-failed", worker=slot.index, task=task_id, detail=payload
        )
        self._retry_or_quarantine(
            slot.index, task_id, batch, reason=payload
        )

    def _check_deadlines(self, batch: _Batch) -> None:
        now = time.monotonic()
        limit = self.config.task_timeout_seconds
        for slot in self._slots:
            proc = slot.proc
            if proc is None or proc.busy is None:
                continue
            reason = None
            if (
                limit is not None
                and proc.dispatch_time is not None
                and now - proc.dispatch_time > limit
            ):
                reason = f"task deadline ({limit:g}s) exceeded"
            else:
                age = proc.monitor.age_seconds()
                if (
                    age is not None
                    and age > self.config.heartbeat_timeout_seconds
                ):
                    reason = f"heartbeat stale for {age:.2f}s (hung)"
            if reason is None:
                continue
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except OSError:
                pass
            self._reap(slot, reason)
            self._requeue_orphan(slot, batch)

    # -- failure handling ----------------------------------------------

    def _reap(self, slot: _Slot, reason: str) -> Optional[int]:
        """Close out a dead worker; schedule its restart or retire it.

        Returns the orphaned in-flight task id (also stashed on the
        slot's entry in :attr:`_orphans` for :meth:`_requeue_orphan`).
        """
        proc = slot.proc
        if proc is None:
            return None
        try:
            os.waitpid(proc.pid, 0)
        except OSError:
            pass
        for fd in (proc.send_fd, proc.recv_fd):
            try:
                os.close(fd)
            except OSError:
                pass
        slot.proc = None
        orphan = proc.busy
        self._orphans[slot.index] = orphan
        slot.crashes += 1
        self._record(
            "worker-crashed", worker=slot.index, task=orphan, detail=reason
        )
        if slot.crashes > self.config.max_worker_crashes:
            slot.retired = True
            slot.restart_at = None
            self._record(
                "worker-retired",
                worker=slot.index,
                detail=f"{slot.crashes} crashes (breaker open)",
            )
        else:
            backoff = self.config.policy.backoff_seconds(slot.crashes - 1)
            slot.restart_at = time.monotonic() + backoff
        return orphan

    def _requeue_orphan(self, slot: _Slot, batch: _Batch) -> None:
        task_id = self._orphans.pop(slot.index, None)
        if task_id is None or task_id in batch.results:
            return
        running_elsewhere = any(
            s.proc is not None and s.proc.busy == task_id
            for s in self._slots
        )
        self._record(
            "task-reassigned",
            worker=slot.index,
            task=task_id,
            detail="worker died with the task in flight",
        )
        self._retry_or_quarantine(
            slot.index,
            task_id,
            batch,
            reason="worker crash",
            skip_requeue=running_elsewhere,
        )

    def _retry_or_quarantine(
        self,
        worker: int,
        task_id: int,
        batch: _Batch,
        *,
        reason: str,
        skip_requeue: bool = False,
    ) -> None:
        count = batch.attempts.get(task_id, 0) + 1
        batch.attempts[task_id] = count
        if count > self.config.max_task_retries:
            batch.quarantined.add(task_id)
            self._record(
                "task-quarantined",
                worker=worker,
                task=task_id,
                detail=f"{count} failed attempts; will run serially",
            )
            return
        if skip_requeue:
            return  # a duplicate is still running; let it finish
        if task_id not in batch.pending:
            batch.pending.append(task_id)
        self._record(
            "task-retried",
            worker=worker,
            task=task_id,
            detail=f"attempt {count + 1} ({reason})",
        )

    # -- serial fallbacks ----------------------------------------------

    def _degrade(self, batch: _Batch) -> None:
        remaining = [
            i
            for i in range(len(batch.tasks))
            if i not in batch.results and i not in batch.quarantined
        ]
        self._record(
            "pool-degraded",
            detail=(
                f"all {len(self._slots)} workers retired; "
                f"{len(remaining)} task(s) fall back to serial"
            ),
        )
        for task_id in remaining:
            batch.results[task_id] = self._run_serial(
                batch.tasks[task_id], batch.scope_of(task_id)
            )

    def _run_serial(self, payload, scope: Optional[str]):
        """Parent-side serial execution (quarantine/degradation path).

        Deliberately skips the ``task`` fault site: the serial path is
        the recovery route for tasks poisoned by injected (or real)
        per-task failures, so it must not re-trigger them.
        """
        heartbeat.beat(force=True)
        if scope is None:
            return self.task_fn(payload)
        with checkpoint.scoped(scope):
            return self.task_fn(payload)
