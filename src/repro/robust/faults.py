"""Deterministic, seedable fault injection for the analysis pipeline.

Every degradation path in the pipeline must be testable without waiting
for a genuinely singular matrix or a genuinely exploding state space.
The library therefore calls :func:`check` with a *site* name at each
failure-prone entry point:

======================  ====================================================
site                    effect when a matching rule fires
======================  ====================================================
``solver.direct``       :class:`InjectedSolverFault` (a ``SolverError``)
``solver.power``        same, at the power-iteration entry
``solver.jacobi``       same, at the Jacobi entry
``solver.gauss-seidel`` same, at the Gauss-Seidel entry
``reachability.mdd``    :class:`InjectedStateSpaceFault` (MDD engine down)
``reachability.bfs``    same, at the BFS engine
``lumping.level``       :class:`InjectedLumpingFault` (per-level lumping)
``budget``              :class:`InjectedBudgetFault` (a ``BudgetExceeded``),
                        fired from the cooperative budget hooks — a budget
                        must be active for these to run
======================  ====================================================

Injected exceptions subclass both :class:`InjectedFault` and the error
type a *real* failure at that site would raise, so the production
fallback/degradation code paths handle them identically — which is the
point: CI exercises the same ``except`` clauses users will hit.

Rules are matched by call count (1-based, per site, deterministic) or by
a seeded Bernoulli draw, so runs are reproducible.  Activation is either
lexical::

    with inject_faults("solver.direct"):
        ...  # every direct solve in this block fails

or ambient via the ``REPRO_FAULTS`` environment variable (read once at
first use; tests that mutate the environment call :func:`reload_env`)::

    REPRO_FAULTS="solver.direct,reachability.mdd:1-2" python -m repro.bench

The spec grammar is ``site[:when]`` comma-separated, where ``when`` is a
call number (``3``), an inclusive range (``1-2``), a comma-free list via
``|`` (``1|3``), an open-ended tail (``3+``: the third call and every
later one), or ``*`` / omitted for every call.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    LumpingError,
    ReproError,
    SolverError,
    StateSpaceError,
)
from repro.robust.budgets import BudgetExceeded


class InjectedFault(ReproError):
    """Marker base class for every injected failure."""


class InjectedSolverFault(InjectedFault, SolverError):
    """An injected solver non-convergence (caught as ``SolverError``)."""


class InjectedStateSpaceFault(InjectedFault, StateSpaceError):
    """An injected reachability-engine failure."""


class InjectedLumpingFault(InjectedFault, LumpingError):
    """An injected per-level lumping failure."""


class InjectedBudgetFault(InjectedFault, BudgetExceeded):
    """An injected budget exhaustion."""


_SITE_EXCEPTIONS = {
    "solver": InjectedSolverFault,
    "reachability": InjectedStateSpaceFault,
    "lumping": InjectedLumpingFault,
    "budget": InjectedBudgetFault,
}


def _exception_for(site: str) -> type:
    return _SITE_EXCEPTIONS.get(site.split(".", 1)[0], InjectedFault)


@dataclass(frozen=True)
class FaultRule:
    """When a given site should fail.

    Exactly one trigger applies: ``fail_on`` (explicit 1-based call
    numbers), ``first`` (the first N calls), ``after`` (the N-th call and
    every later one — a process that "stays dead" until resumed),
    ``probability`` (a seeded Bernoulli draw per call), or none of them —
    meaning *every* call.
    """

    site: str
    fail_on: Optional[frozenset] = None
    first: Optional[int] = None
    after: Optional[int] = None
    probability: Optional[float] = None

    def should_fail(self, call_number: int, rng: random.Random) -> bool:
        """Whether this rule fires for the ``call_number``-th call."""
        if self.fail_on is not None:
            return call_number in self.fail_on
        if self.first is not None:
            return call_number <= self.first
        if self.after is not None:
            return call_number >= self.after
        if self.probability is not None:
            return rng.random() < self.probability
        return True


class FaultInjector:
    """A set of :class:`FaultRule` with per-site call counters.

    Use as a context manager to activate; :func:`check` consults every
    active injector (plus the ``REPRO_FAULTS`` one).  The ``fired`` list
    records ``(site, call_number)`` for every injected failure, so tests
    and reports can assert exactly which paths were exercised.
    """

    def __init__(self, rules, seed: int = 0) -> None:
        self.rules: List[FaultRule] = list(rules)
        self._rng = random.Random(seed)
        self._counts: Dict[str, int] = {}
        self.fired: List[Tuple[str, int]] = []

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultInjector":
        """Build an injector from the ``REPRO_FAULTS`` grammar."""
        rules = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            site, _, when = part.partition(":")
            try:
                rules.append(_parse_rule(site.strip(), when.strip()))
            except ValueError as exc:
                raise ValueError(
                    f"invalid fault rule {part!r} in spec {spec!r}: {exc}"
                    f" (grammar: {GRAMMAR})"
                ) from None
        return cls(rules, seed=seed)

    @classmethod
    def from_env(
        cls, value: Optional[str] = None
    ) -> Optional["FaultInjector"]:
        """Injector from ``REPRO_FAULTS`` (or ``value``); ``None`` if unset."""
        if value is None:
            value = os.environ.get("REPRO_FAULTS", "")
        value = value.strip()
        if not value:
            return None
        try:
            return cls.from_spec(value)
        except ValueError as exc:
            raise ValueError(f"bad REPRO_FAULTS environment value: {exc}") from None

    def check(self, site: str) -> None:
        """Count a call at ``site``; raise if any matching rule fires."""
        matching = [rule for rule in self.rules if rule.site == site]
        if not matching:
            return
        call_number = self._counts.get(site, 0) + 1
        self._counts[site] = call_number
        for rule in matching:
            if rule.should_fail(call_number, self._rng):
                self.fired.append((site, call_number))
                raise _exception_for(site)(
                    f"injected fault at {site!r} (call {call_number})"
                )

    def call_count(self, site: str) -> int:
        """How many calls this injector has seen at ``site``."""
        return self._counts.get(site, 0)

    def __enter__(self) -> "FaultInjector":
        _ACTIVE.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _ACTIVE.remove(self)


#: One-line summary of the ``REPRO_FAULTS`` grammar, quoted by parse
#: errors so a typo in an environment variable is self-explaining.
GRAMMAR = (
    "comma-separated rules of the form site[:when], where when is a "
    "1-based call number 'N', an inclusive range 'N-M', a list 'N|M', "
    "an open-ended tail 'N+', or '*' / omitted for every call"
)


def _parse_call_number(token: str, role: str) -> int:
    try:
        value = int(token)
    except ValueError:
        raise ValueError(f"{role} {token!r} is not an integer") from None
    if value < 1:
        raise ValueError(f"{role} {token!r} must be >= 1 (calls are 1-based)")
    return value


def _parse_rule(site: str, when: str) -> FaultRule:
    if not site:
        raise ValueError("missing fault site before ':'")
    if not when or when == "*":
        return FaultRule(site)
    if when.endswith("+"):
        return FaultRule(
            site, after=_parse_call_number(when[:-1], "call number")
        )
    if "-" in when:
        low_token, _, high_token = when.partition("-")
        low = _parse_call_number(low_token, "range start")
        high = _parse_call_number(high_token, "range end")
        if high < low:
            raise ValueError(f"range {when!r} is empty ({low} > {high})")
        return FaultRule(site, fail_on=frozenset(range(low, high + 1)))
    if "|" in when:
        return FaultRule(
            site,
            fail_on=frozenset(
                _parse_call_number(token, "call number")
                for token in when.split("|")
            ),
        )
    return FaultRule(
        site, fail_on=frozenset({_parse_call_number(when, "call number")})
    )


#: Stack of lexically-activated injectors (innermost last).
_ACTIVE: List[FaultInjector] = []

#: The ambient injector parsed from ``REPRO_FAULTS`` at import (call
#: :func:`reload_env` after mutating the environment).
_ENV_INJECTOR: Optional[FaultInjector] = FaultInjector.from_env()


def reload_env(value: Optional[str] = None) -> Optional[FaultInjector]:
    """Re-read ``REPRO_FAULTS`` (or use ``value``); returns the injector."""
    global _ENV_INJECTOR
    _ENV_INJECTOR = FaultInjector.from_env(value)
    return _ENV_INJECTOR


def env_injector() -> Optional[FaultInjector]:
    """The ambient ``REPRO_FAULTS`` injector, if any."""
    return _ENV_INJECTOR


def check(site: str) -> None:
    """Library hook: raise an injected fault if any active rule matches.

    No-op (one global read) when no injector is active, so instrumented
    entry points cost nothing in production.
    """
    if not _ACTIVE and _ENV_INJECTOR is None:
        return
    for injector in _ACTIVE:
        injector.check(site)
    if _ENV_INJECTOR is not None:
        _ENV_INJECTOR.check(site)


def inject_faults(spec, seed: int = 0) -> FaultInjector:
    """Convenience constructor: ``with inject_faults("solver.direct"): ...``

    ``spec`` is either a spec string (see module docstring) or an
    iterable of :class:`FaultRule`.
    """
    if isinstance(spec, str):
        return FaultInjector.from_spec(spec, seed=seed)
    return FaultInjector(spec, seed=seed)
