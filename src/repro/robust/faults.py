"""Deterministic, seedable fault injection for the analysis pipeline.

Every degradation path in the pipeline must be testable without waiting
for a genuinely singular matrix or a genuinely exploding state space.
The library therefore calls :func:`check` with a *site* name at each
failure-prone entry point:

======================  ====================================================
site                    effect when a matching rule fires
======================  ====================================================
``solver.direct``       :class:`InjectedSolverFault` (a ``SolverError``)
``solver.power``        same, at the power-iteration entry
``solver.jacobi``       same, at the Jacobi entry
``solver.gauss-seidel`` same, at the Gauss-Seidel entry
``reachability.mdd``    :class:`InjectedStateSpaceFault` (MDD engine down)
``reachability.bfs``    same, at the BFS engine
``lumping.level``       :class:`InjectedLumpingFault` (per-level lumping)
``budget``              :class:`InjectedBudgetFault` (a ``BudgetExceeded``),
                        fired from the cooperative budget hooks — a budget
                        must be active for these to run
``worker``              checked via :func:`check_at` with the worker's
                        1-based pool slot at worker startup — ``worker:2``
                        targets the second pool worker
``task``                checked via :func:`check_at` with the 1-based pool
                        task id just before the task executes — e.g.
                        ``task:3@hang:5`` stalls task 3 for five seconds
``certify.corrupt``     :class:`InjectedFault`, caught by
                        :func:`repro.robust.certify.apply_corruption`,
                        which flips one stationary entry instead of
                        raising — simulated result corruption that the
                        certificate layer must catch
``sweep.point``         checked via :func:`check_at` with the 1-based
                        sweep plan index at the start of every solve
                        attempt — ``sweep.point:3`` (no fired log) makes
                        point 3 permanently divergent; with ``@sigkill``
                        it kills the driver mid-point
``sweep.frontier``      :class:`InjectedFault` before every frontier
                        write (manifest and per-point records) — the
                        kill-anywhere persistence boundary of
                        :mod:`repro.sweep.frontier`
======================  ====================================================

Injected exceptions subclass both :class:`InjectedFault` and the error
type a *real* failure at that site would raise, so the production
fallback/degradation code paths handle them identically — which is the
point: CI exercises the same ``except`` clauses users will hit.

Rules are matched by call count (1-based, per site, deterministic) or by
a seeded Bernoulli draw, so runs are reproducible.  Activation is either
lexical::

    with inject_faults("solver.direct"):
        ...  # every direct solve in this block fails

or ambient via the ``REPRO_FAULTS`` environment variable (read once at
first use; tests that mutate the environment call :func:`reload_env`)::

    REPRO_FAULTS="solver.direct,reachability.mdd:1-2" python -m repro.bench

The spec grammar is ``site[:when][@effect]`` comma-separated, where
``when`` is a call number (``3``), an inclusive range (``1-2``), a
comma-free list via ``|`` (``1|3``), an open-ended tail (``3+``: the
third call and every later one), or ``*`` / omitted for every call.

``effect`` selects *how* the rule fails.  The default raises the
injected exception for the site (above); the process-level effects
exist so the supervisor's watchdog/restart machinery can be exercised:

==================  =====================================================
effect              behaviour when the rule fires
==================  =====================================================
(omitted)           raise the site's injected exception
``sigkill``         ``SIGKILL`` the current process — an abrupt crash
``hang:<seconds>``  stall for that long without touching any budget hook
                    (heartbeats stop; the watchdog sees "hung")
``oom``             allocate until the address-space rlimit kills the
                    allocation (raises :class:`MemoryError` directly when
                    no finite ``RLIMIT_AS`` is set — never eats an
                    unlimited host)
==================  =====================================================

Process-killing effects interact with restart-from-checkpoint: a
restarted attempt replays the same call numbers, so an explicit-call
rule like ``budget:40@sigkill`` would re-fire forever.  The *fired log*
(:func:`set_fired_log`, or the ``REPRO_FAULTS_FIRED_LOG`` environment
variable) makes explicit-call rules (``N``, ``N-M``, ``N|M``) one-shot
across processes: each (rule, call-number) firing is appended to the
log — flushed and fsynced *before* the effect happens — and is skipped
on replay.  Open-ended rules (``N+``, ``*``, omitted ``when``) are
intentionally exempt: they model a machine that stays dead, which is
what the crash-loop circuit breaker is for.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass
from types import TracebackType
from typing import Dict, Iterable, List, Optional, Set, Tuple, Type, Union

from repro.errors import (
    LumpingError,
    ReproError,
    SolverError,
    StateSpaceError,
)
from repro.robust.budgets import BudgetExceeded


class InjectedFault(ReproError):
    """Marker base class for every injected failure."""


class InjectedSolverFault(InjectedFault, SolverError):
    """An injected solver non-convergence (caught as ``SolverError``)."""


class InjectedStateSpaceFault(InjectedFault, StateSpaceError):
    """An injected reachability-engine failure."""


class InjectedLumpingFault(InjectedFault, LumpingError):
    """An injected per-level lumping failure."""


class InjectedBudgetFault(InjectedFault, BudgetExceeded):
    """An injected budget exhaustion."""


_SITE_EXCEPTIONS = {
    "solver": InjectedSolverFault,
    "reachability": InjectedStateSpaceFault,
    "lumping": InjectedLumpingFault,
    "budget": InjectedBudgetFault,
}


def _exception_for(site: str) -> type:
    return _SITE_EXCEPTIONS.get(site.split(".", 1)[0], InjectedFault)


@dataclass(frozen=True)
class FaultRule:
    """When — and how — a given site should fail.

    Exactly one trigger applies: ``fail_on`` (explicit 1-based call
    numbers), ``first`` (the first N calls), ``after`` (the N-th call and
    every later one — a process that "stays dead" until resumed),
    ``probability`` (a seeded Bernoulli draw per call), or none of them —
    meaning *every* call.

    ``effect`` is ``"raise"`` (the site's injected exception),
    ``"sigkill"``, ``"hang"`` (stall ``hang_seconds``), or ``"oom"``.
    """

    site: str
    fail_on: Optional[frozenset] = None
    first: Optional[int] = None
    after: Optional[int] = None
    probability: Optional[float] = None
    effect: str = "raise"
    hang_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.effect not in ("raise", "sigkill", "hang", "oom"):
            raise ValueError(
                f"unknown fault effect {self.effect!r} "
                "(expected 'raise', 'sigkill', 'hang', or 'oom')"
            )
        if self.effect == "hang" and (
            self.hang_seconds is None or self.hang_seconds <= 0
        ):
            raise ValueError(
                "hang effect needs a positive duration, "
                f"not {self.hang_seconds!r}"
            )

    @property
    def one_shot(self) -> bool:
        """Whether a fired log should suppress replays of this rule.

        Only explicit-call triggers are one-shot; open-ended triggers
        model a fault that persists across restarts.
        """
        return self.fail_on is not None

    def identity(self) -> str:
        """Deterministic id for fired-log entries (stable across
        processes and restarts)."""
        parts = [self.site]
        if self.fail_on is not None:
            parts.append("on=" + "|".join(str(n) for n in sorted(self.fail_on)))
        if self.first is not None:
            parts.append(f"first={self.first}")
        if self.after is not None:
            parts.append(f"after={self.after}")
        if self.probability is not None:
            parts.append(f"p={self.probability:g}")
        if self.effect != "raise":
            parts.append(f"effect={self.effect}")
        if self.hang_seconds is not None:
            parts.append(f"hang={self.hang_seconds:g}")
        return ";".join(parts)

    def should_fail(self, call_number: int, rng: random.Random) -> bool:
        """Whether this rule fires for the ``call_number``-th call."""
        if self.fail_on is not None:
            return call_number in self.fail_on
        if self.first is not None:
            return call_number <= self.first
        if self.after is not None:
            return call_number >= self.after
        if self.probability is not None:
            return rng.random() < self.probability
        return True


class FaultInjector:
    """A set of :class:`FaultRule` with per-site call counters.

    Use as a context manager to activate; :func:`check` consults every
    active injector (plus the ``REPRO_FAULTS`` one).  The ``fired`` list
    records ``(site, call_number)`` for every injected failure, so tests
    and reports can assert exactly which paths were exercised.
    """

    def __init__(self, rules: Iterable[FaultRule], seed: int = 0) -> None:
        self.rules: List[FaultRule] = list(rules)
        self._rng = random.Random(seed)
        self._counts: Dict[str, int] = {}
        self.fired: List[Tuple[str, int]] = []

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultInjector":
        """Build an injector from the ``REPRO_FAULTS`` grammar."""
        rules = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            # '@' splits off the effect first: the hang effect's own
            # ':' ("hang:3") must not be mistaken for the when separator.
            body, _, effect = part.partition("@")
            site, _, when = body.partition(":")
            try:
                rules.append(
                    _parse_rule(site.strip(), when.strip(), effect.strip())
                )
            except ValueError as exc:
                raise ValueError(
                    f"invalid fault rule {part!r} in spec {spec!r}: {exc}"
                    f" (grammar: {GRAMMAR})"
                ) from None
        return cls(rules, seed=seed)

    @classmethod
    def from_env(
        cls, value: Optional[str] = None
    ) -> Optional["FaultInjector"]:
        """Injector from ``REPRO_FAULTS`` (or ``value``); ``None`` if unset."""
        if value is None:
            value = os.environ.get("REPRO_FAULTS", "")
        value = value.strip()
        if not value:
            return None
        try:
            return cls.from_spec(value)
        except ValueError as exc:
            raise ValueError(f"bad REPRO_FAULTS environment value: {exc}") from None

    def check(self, site: str) -> None:
        """Count a call at ``site``; fail if any matching rule fires.

        Raising rules raise the site's injected exception; process-level
        rules perform their effect (SIGKILL / stall / memory
        exhaustion).  With a fired log installed, one-shot rules that
        already fired in a previous process are skipped.
        """
        matching = [rule for rule in self.rules if rule.site == site]
        if not matching:
            return
        call_number = self._counts.get(site, 0) + 1
        self._counts[site] = call_number
        for rule in matching:
            if not rule.should_fail(call_number, self._rng):
                continue
            if (
                rule.one_shot
                and _FIRED_LOG is not None
                and _FIRED_LOG.already_fired(rule.identity(), call_number)
            ):
                continue
            self.fired.append((site, call_number))
            if _FIRED_LOG is not None:
                # Durable *before* the effect: a SIGKILLed process must
                # not forget that the rule fired, or it re-fires on
                # every restart and the run can never make progress.
                _FIRED_LOG.record(rule.identity(), site, call_number)
            _perform_effect(rule, site, call_number)

    def check_at(self, site: str, index: int) -> None:
        """Like :meth:`check`, but match at an explicit 1-based ``index``
        without touching the site's call counter.

        This is how position-addressed sites work: a worker pool checks
        ``("worker", slot)`` at each worker's startup and
        ``("task", task_id)`` before each task, so a rule like
        ``worker:2@sigkill`` targets *the second worker* regardless of
        how many workers started before it, or in what order.  One-shot
        rules honour the fired log exactly as counted checks do, which
        is what keeps a restarted worker (same slot) from dying forever.
        """
        matching = [rule for rule in self.rules if rule.site == site]
        for rule in matching:
            if not rule.should_fail(index, self._rng):
                continue
            if (
                rule.one_shot
                and _FIRED_LOG is not None
                and _FIRED_LOG.already_fired(rule.identity(), index)
            ):
                continue
            self.fired.append((site, index))
            if _FIRED_LOG is not None:
                _FIRED_LOG.record(rule.identity(), site, index)
            _perform_effect(rule, site, index)

    def call_count(self, site: str) -> int:
        """How many calls this injector has seen at ``site``."""
        return self._counts.get(site, 0)

    def __enter__(self) -> "FaultInjector":
        _ACTIVE.append(self)
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        _ACTIVE.remove(self)


#: One-line summary of the ``REPRO_FAULTS`` grammar, quoted by parse
#: errors so a typo in an environment variable is self-explaining.
GRAMMAR = (
    "comma-separated rules of the form site[:when][@effect], where when "
    "is a 1-based call number 'N', an inclusive range 'N-M', a list "
    "'N|M', an open-ended tail 'N+', or '*' / omitted for every call, "
    "and effect is 'sigkill', 'hang:<seconds>', 'oom', or omitted to "
    "raise the site's injected exception"
)


def _parse_call_number(token: str, role: str) -> int:
    try:
        value = int(token)
    except ValueError:
        raise ValueError(f"{role} {token!r} is not an integer") from None
    if value < 1:
        raise ValueError(f"{role} {token!r} must be >= 1 (calls are 1-based)")
    return value


def _parse_effect(token: str) -> Tuple[str, Optional[float]]:
    """Parse the ``@effect`` suffix into (effect, hang_seconds)."""
    if not token:
        return "raise", None
    if token in ("sigkill", "oom"):
        return token, None
    name, sep, duration = token.partition(":")
    if name == "hang":
        if not sep:
            raise ValueError(
                "hang effect needs a duration: 'hang:<seconds>'"
            )
        try:
            seconds = float(duration)
        except ValueError:
            raise ValueError(
                f"hang duration {duration!r} is not a number"
            ) from None
        if seconds <= 0:
            raise ValueError(f"hang duration {duration!r} must be > 0")
        return "hang", seconds
    raise ValueError(
        f"unknown fault effect {token!r} "
        "(expected 'sigkill', 'hang:<seconds>', or 'oom')"
    )


def _parse_rule(site: str, when: str, effect_token: str = "") -> FaultRule:
    if not site:
        raise ValueError("missing fault site before ':'")
    effect, hang_seconds = _parse_effect(effect_token)
    if not when or when == "*":
        return FaultRule(site, effect=effect, hang_seconds=hang_seconds)
    if when.endswith("+"):
        return FaultRule(
            site,
            after=_parse_call_number(when[:-1], "call number"),
            effect=effect,
            hang_seconds=hang_seconds,
        )
    if "-" in when:
        low_token, _, high_token = when.partition("-")
        low = _parse_call_number(low_token, "range start")
        high = _parse_call_number(high_token, "range end")
        if high < low:
            raise ValueError(f"range {when!r} is empty ({low} > {high})")
        return FaultRule(
            site,
            fail_on=frozenset(range(low, high + 1)),
            effect=effect,
            hang_seconds=hang_seconds,
        )
    if "|" in when:
        return FaultRule(
            site,
            fail_on=frozenset(
                _parse_call_number(token, "call number")
                for token in when.split("|")
            ),
            effect=effect,
            hang_seconds=hang_seconds,
        )
    return FaultRule(
        site,
        fail_on=frozenset({_parse_call_number(when, "call number")}),
        effect=effect,
        hang_seconds=hang_seconds,
    )


def _exhaust_memory() -> None:
    """The ``oom`` effect: allocate until the address-space rlimit bites.

    Refuses to allocate unboundedly on a host without a finite
    ``RLIMIT_AS`` — there it raises :class:`MemoryError` directly, which
    exercises the same recovery path without endangering the machine.
    """
    try:
        import resource
    except ImportError:  # non-POSIX: no rlimits to exhaust
        raise MemoryError(
            "injected oom fault (no resource module; raising directly)"
        ) from None
    soft, _hard = resource.getrlimit(resource.RLIMIT_AS)
    if soft == resource.RLIM_INFINITY:
        raise MemoryError(
            "injected oom fault (no RLIMIT_AS set; raising directly)"
        )
    hog = []
    try:
        while True:
            hog.append(bytearray(16 * 1024 * 1024))
    except MemoryError:
        hog.clear()
        raise MemoryError(
            "injected oom fault (address-space rlimit reached)"
        ) from None


def _perform_effect(rule: FaultRule, site: str, call_number: int) -> None:
    """Carry out a fired rule's effect (raises unless the effect kills
    or stalls the process first)."""
    if rule.effect == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)
        return  # only reachable if the signal is somehow blocked
    if rule.effect == "hang":
        assert rule.hang_seconds is not None  # enforced by __post_init__
        time.sleep(rule.hang_seconds)
        return  # a transient stall: the call proceeds afterwards
    if rule.effect == "oom":
        _exhaust_memory()
        return  # unreachable: _exhaust_memory always raises
    raise _exception_for(site)(
        f"injected fault at {site!r} (call {call_number})"
    )


class _FiredLog:
    """Append-only, fsynced record of one-shot rule firings.

    Line format: ``identity \\t site \\t call_number``.  Unparseable
    lines (torn writes from a kill mid-append) are ignored — losing a
    record only means a rule may fire once more, never that the run
    wedges.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.seen: Set[Tuple[str, int]] = set()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    fields = line.rstrip("\n").split("\t")
                    if len(fields) != 3:
                        continue
                    try:
                        self.seen.add((fields[0], int(fields[2])))
                    except ValueError:
                        continue
        except OSError:
            pass  # no log yet: nothing has fired

    def already_fired(self, identity: str, call_number: int) -> bool:
        return (identity, call_number) in self.seen

    def record(self, identity: str, site: str, call_number: int) -> None:
        self.seen.add((identity, call_number))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(f"{identity}\t{site}\t{call_number}\n")
            handle.flush()
            os.fsync(handle.fileno())


#: Stack of lexically-activated injectors (innermost last).
_ACTIVE: List[FaultInjector] = []

#: Cross-process fired log (see :class:`_FiredLog`); installed by the
#: supervisor in each child, or via ``REPRO_FAULTS_FIRED_LOG``.
_FIRED_LOG: Optional[_FiredLog] = None


def set_fired_log(path: Optional[str]) -> None:
    """Install (or with ``None`` remove) the one-shot fired log.

    Existing entries at ``path`` are loaded, so a restarted process
    skips one-shot rules that already fired before it crashed.
    """
    global _FIRED_LOG
    _FIRED_LOG = None if path is None else _FiredLog(path)


def fired_log_path() -> Optional[str]:
    """Path of the installed fired log, if any."""
    return None if _FIRED_LOG is None else _FIRED_LOG.path


#: The ambient injector parsed from ``REPRO_FAULTS`` at import (call
#: :func:`reload_env` after mutating the environment).
_ENV_INJECTOR: Optional[FaultInjector] = FaultInjector.from_env()

_env_fired_log = os.environ.get("REPRO_FAULTS_FIRED_LOG", "").strip()
if _env_fired_log:
    set_fired_log(_env_fired_log)
del _env_fired_log


def reload_env(value: Optional[str] = None) -> Optional[FaultInjector]:
    """Re-read ``REPRO_FAULTS`` (or use ``value``); returns the injector."""
    global _ENV_INJECTOR
    _ENV_INJECTOR = FaultInjector.from_env(value)
    return _ENV_INJECTOR


def env_injector() -> Optional[FaultInjector]:
    """The ambient ``REPRO_FAULTS`` injector, if any."""
    return _ENV_INJECTOR


def injectors_active() -> bool:
    """Whether any injector (lexical or ambient) is currently active.

    The worker pool uses this to decide whether fault bookkeeping (a
    scratch fired log, per-task fired-log refreshes) is worth paying
    for; with no injectors the check sites are free and stay that way.
    """
    return bool(_ACTIVE) or _ENV_INJECTOR is not None


def reload_fired_log() -> None:
    """Re-read the installed fired log from disk (no-op without one).

    A forked worker inherits the parent's *in-memory* view of the log;
    firings recorded by sibling processes after the fork are only in
    the file.  Re-reading before a position-addressed check keeps
    one-shot rules one-shot across concurrent workers, not just across
    sequential restarts.
    """
    global _FIRED_LOG
    if _FIRED_LOG is not None:
        _FIRED_LOG = _FiredLog(_FIRED_LOG.path)


def check(site: str) -> None:
    """Library hook: raise an injected fault if any active rule matches.

    No-op (one global read) when no injector is active, so instrumented
    entry points cost nothing in production.
    """
    if not _ACTIVE and _ENV_INJECTOR is None:
        return
    for injector in _ACTIVE:
        injector.check(site)
    if _ENV_INJECTOR is not None:
        _ENV_INJECTOR.check(site)


def check_at(site: str, index: int) -> None:
    """Library hook for position-addressed sites (pool workers/tasks):
    fire any rule matching the explicit 1-based ``index`` at ``site``.

    Unlike :func:`check`, no per-site counter is consumed — the caller
    names the position, so the same rule means the same worker/task in
    every process and on every restart.
    """
    if not _ACTIVE and _ENV_INJECTOR is None:
        return
    for injector in _ACTIVE:
        injector.check_at(site, index)
    if _ENV_INJECTOR is not None:
        _ENV_INJECTOR.check_at(site, index)


def inject_faults(
    spec: Union[str, Iterable[FaultRule]], seed: int = 0
) -> FaultInjector:
    """Convenience constructor: ``with inject_faults("solver.direct"): ...``

    ``spec`` is either a spec string (see module docstring) or an
    iterable of :class:`FaultRule`.
    """
    if isinstance(spec, str):
        return FaultInjector.from_spec(spec, seed=seed)
    return FaultInjector(spec, seed=seed)
