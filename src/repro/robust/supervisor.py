"""Supervised execution: process isolation + watchdog + restart.

PR 2 made crashes *survivable* (checkpoint/resume is bitwise-
equivalent); this module makes them *recovered*: the pipeline runs in a
forked child process under hard OS limits, a parent watchdog watches the
child's heartbeat, and a crash/hang/OOM triggers an automatic restart
from the latest valid checkpoint — no human in the loop.

The moving parts:

* **Isolation** — :func:`run_supervised` forks; the child applies
  ``resource.setrlimit`` (address space, CPU) from the
  :class:`SupervisorConfig` and runs the caller's ``target`` callable.
  A memory blowup kills the child, never the driver.
* **Liveness** — the child installs a heartbeat
  (:mod:`repro.robust.heartbeat`) that is touched at every cooperative
  budget-check site; the parent polls it and SIGKILLs a child whose
  beat goes stale ("hung"), while a slow-but-beating child is left
  alone.
* **Recovery** — every attempt after the first resumes from the
  checkpoint directory, so completed work is never repeated; restarts
  back off exponentially with deterministic jitter
  (:class:`repro.robust.retry.RetryPolicy`).
* **Degradation** — consecutive failures climb the
  :data:`~repro.robust.retry.DEFAULT_LADDER`: tighter checkpoint
  cadence, then ``degrade=True`` lumping, then the iterative-only
  solver chain, then reduced budgets.
* **The breaker** — after ``max_restarts`` failed restarts a
  :class:`CrashLoopError` carries a structured diagnosis (exit-reason
  histogram, last error, final degradation rung) instead of spinning.

Every attempt lands in the merged
:class:`~repro.robust.report.RunReport` as a
:class:`~repro.robust.report.ProcessAttemptReport` (exit reason,
signal, rusage, degradation level, checkpoint resumed from), and the
child's own stage/fallback records are merged in chronological order —
the report reads as the full history of the run, not just its last
attempt.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import ReproError
from repro.robust import faults, heartbeat
from repro.robust.budgets import Budget, BudgetExceeded
from repro.robust.checkpoint import (
    MANIFEST_NAME,
    CheckpointError,
    atomic_write_bytes,
)
from repro.robust.report import ProcessAttemptReport, RunReport
from repro.robust.retry import (
    DEFAULT_LADDER,
    DegradationLevel,
    RetryPolicy,
    scale_budget,
)

#: Child exit codes.  0/1 keep their universal meanings; the reserved
#: codes are chosen to avoid 2 (the bench CLI's budget-exhausted exit).
_EXIT_OK = 0
_EXIT_ERROR = 1
_EXIT_BUDGET = 17
_EXIT_OOM = 19


class SupervisorError(ReproError):
    """The supervisor itself could not run (bad config, fork failure)."""


class CrashLoopError(SupervisorError):
    """The circuit breaker: every allowed attempt failed.

    Carries ``diagnosis`` (a JSON-serializable dict: attempt count,
    exit-reason histogram, final degradation rung, last error,
    checkpoint directory, a tuning suggestion) and the merged
    ``report`` with the full per-attempt history.
    """

    def __init__(
        self, message: str, diagnosis: dict, report: RunReport
    ) -> None:
        super().__init__(message)
        self.diagnosis = diagnosis
        self.report = report


@dataclass(frozen=True)
class SupervisorConfig:
    """Everything the parent needs to supervise a run."""

    policy: RetryPolicy = field(default_factory=RetryPolicy)
    ladder: Tuple[DegradationLevel, ...] = DEFAULT_LADDER
    #: Hard address-space cap applied in the child (None = no cap).
    mem_limit_bytes: Optional[int] = None
    #: Hard CPU-seconds cap applied in the child (None = no cap).
    cpu_limit_seconds: Optional[int] = None
    #: Beat staleness beyond which the watchdog declares "hung".
    heartbeat_timeout_seconds: float = 30.0
    #: Floor between the child's heartbeat file writes.
    heartbeat_interval_seconds: float = 0.05
    #: Parent poll cadence while the child runs.
    poll_interval_seconds: float = 0.02
    #: Checkpoint GC window passed to the child's checkpointer.
    checkpoint_keep_last: Optional[int] = 8

    def __post_init__(self) -> None:
        if not self.ladder:
            raise ValueError("the degradation ladder must not be empty")
        if self.heartbeat_timeout_seconds <= 0:
            raise ValueError(
                "heartbeat_timeout_seconds must be > 0, "
                f"not {self.heartbeat_timeout_seconds!r}"
            )
        if self.poll_interval_seconds <= 0:
            raise ValueError(
                "poll_interval_seconds must be > 0, "
                f"not {self.poll_interval_seconds!r}"
            )
        if self.mem_limit_bytes is not None and self.mem_limit_bytes <= 0:
            raise ValueError(
                f"mem_limit_bytes must be > 0, not {self.mem_limit_bytes!r}"
            )
        if (
            self.cpu_limit_seconds is not None
            and self.cpu_limit_seconds <= 0
        ):
            raise ValueError(
                "cpu_limit_seconds must be > 0, "
                f"not {self.cpu_limit_seconds!r}"
            )


@dataclass
class AttemptContext:
    """What one supervised attempt gets to work with.

    The ``target`` callable receives this: it should run the pipeline
    under ``budget`` (the robust entry points enter the budget
    themselves), checkpoint into ``checkpoint_dir`` honouring
    ``checkpoint_interval``/``checkpoint_keep_last``, resume when
    ``resume`` is set, record into ``report``, and apply the
    ``degradation`` rung's knobs (lumping degrade, solver chain).
    """

    attempt_index: int
    degradation_index: int
    degradation: DegradationLevel
    checkpoint_dir: str
    resume: bool
    budget: Budget
    report: RunReport
    checkpoint_interval: Optional[int] = None
    checkpoint_keep_last: Optional[int] = None


@dataclass
class SupervisedResult:
    """What :func:`run_supervised` hands back on success."""

    result: Any
    report: RunReport
    attempts: List[ProcessAttemptReport]


@dataclass(frozen=True)
class _Paths:
    """The supervisor's scratch files inside the checkpoint directory."""

    workdir: str
    heartbeat: str
    result: str
    child_report: str
    error: str
    fired_log: str

    @classmethod
    def under(cls, checkpoint_dir: str) -> "_Paths":
        workdir = os.path.join(checkpoint_dir, "_supervisor")
        os.makedirs(workdir, exist_ok=True)
        return cls(
            workdir=workdir,
            heartbeat=os.path.join(workdir, "heartbeat"),
            result=os.path.join(workdir, "result.pkl"),
            child_report=os.path.join(workdir, "report.json"),
            error=os.path.join(workdir, "error.json"),
            fired_log=os.path.join(workdir, "faults-fired.log"),
        )


# ----------------------------------------------------------------------
# child side
# ----------------------------------------------------------------------


def _apply_rlimits(config: SupervisorConfig, report: RunReport) -> None:
    """Apply the configured hard OS limits to the current process."""
    if config.mem_limit_bytes is None and config.cpu_limit_seconds is None:
        return
    try:
        import resource
    except ImportError:
        report.note("supervisor: resource module unavailable; no rlimits")
        return
    if config.mem_limit_bytes is not None:
        try:
            resource.setrlimit(
                resource.RLIMIT_AS,
                (config.mem_limit_bytes, config.mem_limit_bytes),
            )
        except (ValueError, OSError) as exc:
            report.note(f"supervisor: cannot set RLIMIT_AS: {exc}")
    if config.cpu_limit_seconds is not None:
        # Soft limit delivers SIGXCPU (default: terminate); the hard
        # limit a little above it is the SIGKILL backstop.
        soft = int(config.cpu_limit_seconds)
        try:
            resource.setrlimit(resource.RLIMIT_CPU, (soft, soft + 5))
        except (ValueError, OSError) as exc:
            report.note(f"supervisor: cannot set RLIMIT_CPU: {exc}")


def _write_error(path: str, reason: str, exc: BaseException) -> None:
    """Best-effort structured error record for the parent to read."""
    try:
        atomic_write_bytes(
            path,
            json.dumps(
                {
                    "reason": reason,
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "traceback": traceback.format_exc(),
                }
            ).encode("utf-8"),
        )
    except (CheckpointError, TypeError, ValueError):
        # Recording the failure failed (disk full, unserializable
        # detail); the parent still classifies the attempt from the
        # exit code, so there is nothing more useful to do before
        # the child _exits.
        pass


def _child_main(
    target: Callable[[AttemptContext], Any],
    ctx: AttemptContext,
    config: SupervisorConfig,
    paths: _Paths,
) -> None:
    """Run one attempt in the forked child.  Never returns."""
    code = _EXIT_ERROR
    try:
        _apply_rlimits(config, ctx.report)
        faults.set_fired_log(paths.fired_log)
        hb = heartbeat.install(
            paths.heartbeat,
            min_interval_seconds=config.heartbeat_interval_seconds,
        )
        hb.beat(force=True)
        result = target(ctx)
        hb.beat(force=True)
        ctx.report.attach_budget(ctx.budget)
        atomic_write_bytes(
            paths.child_report,
            json.dumps(ctx.report.to_dict()).encode("utf-8"),
        )
        # The report lands before the result: a kill between the two
        # writes loses the result (attempt retried) but never yields a
        # result whose history is missing.
        atomic_write_bytes(paths.result, pickle.dumps(result))
        code = _EXIT_OK
    except BudgetExceeded as exc:
        ctx.report.note(f"supervised attempt: budget exhausted: {exc}")
        _flush_child_report(ctx, paths)
        _write_error(paths.error, "budget", exc)
        code = _EXIT_BUDGET
    except MemoryError as exc:
        ctx.report.note(f"supervised attempt: out of memory: {exc}")
        _flush_child_report(ctx, paths)
        _write_error(paths.error, "oom", exc)
        code = _EXIT_OOM
    except BaseException as exc:
        ctx.report.note(
            f"supervised attempt failed: {type(exc).__name__}: {exc}"
        )
        _flush_child_report(ctx, paths)
        _write_error(paths.error, "error", exc)
        code = _EXIT_ERROR
    finally:
        # Skip interpreter teardown entirely: the child shares the
        # parent's file descriptors, atexit hooks, and (under pytest)
        # capture machinery, none of which may run twice.
        os._exit(code)


def _flush_child_report(ctx: AttemptContext, paths: _Paths) -> None:
    """Best-effort persistence of a failing attempt's report."""
    try:
        ctx.report.attach_budget(ctx.budget)
        atomic_write_bytes(
            paths.child_report,
            json.dumps(ctx.report.to_dict()).encode("utf-8"),
        )
    except (CheckpointError, TypeError, ValueError):
        # The exit code still records *that* the attempt failed; a
        # missing per-attempt report only loses detail, never the
        # outcome.
        pass


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------


def _classify_exit(status: int) -> Tuple[str, Optional[int], Optional[int]]:
    """Map a ``wait4`` status to (exit_reason, exit_code, signal)."""
    if os.WIFSIGNALED(status):
        return "signal", None, os.WTERMSIG(status)
    if os.WIFEXITED(status):
        code = os.WEXITSTATUS(status)
        if code == _EXIT_OK:
            return "ok", code, None
        if code == _EXIT_BUDGET:
            return "budget", code, None
        if code == _EXIT_OOM:
            return "oom", code, None
        return "error", code, None
    return "error", None, None


def _watch(
    pid: int,
    monitor: heartbeat.HeartbeatMonitor,
    config: SupervisorConfig,
    started: float,
) -> Tuple[str, Optional[int], Optional[int], Any]:
    """Wait for the child, killing it if its heartbeat goes stale.

    Returns (exit_reason, exit_code, signal, rusage).
    """
    while True:
        wpid, status, rusage = os.wait4(pid, os.WNOHANG)
        if wpid == pid:
            reason, code, sig = _classify_exit(status)
            return reason, code, sig, rusage
        age = monitor.age_seconds()
        if age is None:
            # No beat yet: measure from attempt start so a child that
            # wedges before its first beat is still bounded.
            age = time.monotonic() - started
        if age > config.heartbeat_timeout_seconds:
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass  # exited in the race window; reap below
            _, status, rusage = os.wait4(pid, 0)
            return "hung", None, signal.SIGKILL, rusage
        time.sleep(config.poll_interval_seconds)


def _read_json(path: str) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
    except (OSError, ValueError):
        return None
    return loaded if isinstance(loaded, dict) else None


def _unlink_quietly(*paths: str) -> None:
    for path in paths:
        try:
            os.unlink(path)
        except OSError:
            pass


def _diagnosis(
    attempts: List[ProcessAttemptReport],
    config: SupervisorConfig,
    checkpoint_dir: str,
) -> dict:
    """The circuit breaker's structured post-mortem."""
    reason_counts: dict = {}
    for attempt in attempts:
        reason_counts[attempt.exit_reason] = (
            reason_counts.get(attempt.exit_reason, 0) + 1
        )
    reason_counts = {
        reason: reason_counts[reason] for reason in sorted(reason_counts)
    }
    last = attempts[-1] if attempts else None
    dominant = (
        max(sorted(reason_counts), key=lambda r: reason_counts[r])
        if reason_counts
        else "unknown"
    )
    suggestions = {
        "oom": "raise mem_limit_bytes or shrink the model",
        "hung": (
            "raise heartbeat_timeout_seconds, or check for a stall "
            "outside the instrumented loops"
        ),
        "signal": (
            "the child is being killed externally (OOM killer, fault "
            "injection, CPU rlimit); check dmesg and REPRO_FAULTS"
        ),
        "error": "inspect last_error; the failure reproduces every attempt",
    }
    return {
        "attempts": len(attempts),
        "max_restarts": config.policy.max_restarts,
        "exit_reasons": reason_counts,
        "final_degradation": last.degradation if last else None,
        "last_error": last.error if last else None,
        "checkpoint_dir": checkpoint_dir,
        "suggestion": suggestions.get(
            dominant, "inspect the per-attempt history in the report"
        ),
    }


def run_supervised(
    target: Callable[[AttemptContext], Any],
    *,
    checkpoint_dir: Optional[str] = None,
    config: Optional[SupervisorConfig] = None,
    budget: Optional[Budget] = None,
    report: Optional[RunReport] = None,
    resume: bool = False,
) -> SupervisedResult:
    """Run ``target`` in supervised child processes until it succeeds.

    ``target`` receives an :class:`AttemptContext` and returns a
    picklable result.  On a crash, hang, or OOM the child is restarted
    (after backoff) with ``resume=True`` so it continues from the
    checkpoints the dead attempt left behind; consecutive failures climb
    the degradation ladder.  ``BudgetExceeded`` in the child is
    *terminal* — the caller asked for a bounded run, so the bound is
    honoured, re-raised here exactly as the unsupervised robust path
    would.

    Raises :class:`CrashLoopError` once ``policy.max_restarts`` restarts
    have all failed.
    """
    config = config if config is not None else SupervisorConfig()
    report = report if report is not None else RunReport()
    if checkpoint_dir is None:
        checkpoint_dir = tempfile.mkdtemp(prefix="repro-supervised-")
        report.note(
            "supervisor: no checkpoint_dir given; snapshots in "
            f"temporary {checkpoint_dir}"
        )
    paths = _Paths.under(checkpoint_dir)
    monitor = heartbeat.HeartbeatMonitor(paths.heartbeat)
    manifest_path = os.path.join(checkpoint_dir, MANIFEST_NAME)

    attempts: List[ProcessAttemptReport] = []
    failures = 0
    last_error: Optional[str] = None
    max_attempts = config.policy.max_restarts + 1
    for attempt_index in range(max_attempts):
        level_index = min(failures, len(config.ladder) - 1)
        level = config.ladder[level_index]
        backoff = 0.0
        if attempt_index > 0:
            backoff = config.policy.backoff_seconds(attempt_index - 1)
            if backoff > 0:
                time.sleep(backoff)
        resume_this = resume or attempt_index > 0
        resumed_from = (
            manifest_path
            if resume_this and os.path.exists(manifest_path)
            else None
        )
        _unlink_quietly(
            paths.heartbeat, paths.result, paths.child_report, paths.error
        )
        ctx = AttemptContext(
            attempt_index=attempt_index,
            degradation_index=level_index,
            degradation=level,
            checkpoint_dir=checkpoint_dir,
            resume=resume_this,
            budget=scale_budget(budget, level.budget_scale)
            if budget is not None
            else Budget(),
            report=RunReport(),
            checkpoint_interval=level.checkpoint_interval,
            checkpoint_keep_last=config.checkpoint_keep_last,
        )
        started = time.monotonic()
        try:
            pid = os.fork()
        except OSError as exc:
            raise SupervisorError(
                f"cannot fork a supervised child: {exc}"
            ) from exc
        if pid == 0:
            _child_main(target, ctx, config, paths)
            os._exit(_EXIT_ERROR)  # unreachable: _child_main never returns
        reason, exit_code, sig, rusage = _watch(
            pid, monitor, config, started
        )
        seconds = time.monotonic() - started

        child_report_data = _read_json(paths.child_report)
        if child_report_data is not None:
            report.merge(RunReport.from_dict(child_report_data))
        error_detail: Optional[str] = None
        error_data = _read_json(paths.error)
        if error_data is not None:
            error_detail = (
                f"{error_data.get('type')}: {error_data.get('message')}"
            )
        attempt_record = ProcessAttemptReport(
            index=attempt_index,
            exit_reason=reason,
            seconds=seconds,
            degradation_index=level_index,
            degradation=level.name,
            resumed_from=resumed_from,
            exit_code=exit_code,
            signal=sig,
            max_rss_bytes=(
                rusage.ru_maxrss * 1024 if rusage is not None else None
            ),
            cpu_seconds=(
                rusage.ru_utime + rusage.ru_stime
                if rusage is not None
                else None
            ),
            error=error_detail,
            backoff_seconds=backoff,
        )

        if reason == "ok":
            try:
                with open(paths.result, "rb") as handle:
                    result = pickle.load(handle)
            except (OSError, pickle.PickleError, EOFError) as exc:
                # Exit 0 without a readable result: treat as a failed
                # attempt (the checkpoints are still good).
                attempt_record.exit_reason = "error"
                attempt_record.error = f"result unreadable: {exc}"
                report.record_process_attempt(attempt_record)
                attempts.append(attempt_record)
                failures += 1
                last_error = attempt_record.error
                continue
            report.record_process_attempt(attempt_record)
            attempts.append(attempt_record)
            return SupervisedResult(
                result=result, report=report, attempts=attempts
            )

        report.record_process_attempt(attempt_record)
        attempts.append(attempt_record)
        if reason == "budget":
            # Terminal by design: retrying cannot succeed within the
            # caller's bound, and silently removing the bound would
            # betray it.
            raise BudgetExceeded(
                "supervised run stopped by its budget"
                + (f": {error_detail}" if error_detail else "")
            )
        failures += 1
        last_error = error_detail or f"exit reason {reason!r}"

    diagnosis = _diagnosis(attempts, config, checkpoint_dir)
    raise CrashLoopError(
        f"supervised run failed {len(attempts)} attempt(s) "
        f"(max_restarts={config.policy.max_restarts}); last error: "
        f"{last_error}",
        diagnosis=diagnosis,
        report=report,
    )
