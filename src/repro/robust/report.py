"""Structured run reports: what ran, what degraded, and why.

A :class:`RunReport` is threaded through the robust pipeline entry points
(:func:`repro.analysis.lump_and_solve` with ``robust=True`` and
:func:`repro.bench.table1.run_table1_row_robust`).  Every stage records
its wall-clock time and status; every fallback taken (solver rung, engine
switch, skipped lumping level) records what was requested, what actually
ran, and the triggering error — so a production operator can tell a clean
run from a degraded-but-successful one without re-running anything.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.robust.budgets import Budget, BudgetConsumption


def _native(value: Any) -> Any:
    """Coerce numpy scalars/arrays (and nested containers) to native
    Python types so reports serialize with the stdlib ``json``."""
    if isinstance(value, dict):
        return {_native(k): _native(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_native(v) for v in value]
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "shape", None) == ():
        return item()  # numpy scalar (0-d)
    tolist = getattr(value, "tolist", None)
    if tolist is not None:
        return tolist()  # numpy array
    return value


@dataclass
class StageReport:
    """Outcome of one pipeline stage."""

    name: str
    seconds: float
    status: str = "ok"  # "ok" | "degraded" | "failed"
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "status": self.status,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StageReport":
        return cls(
            name=str(data["name"]),
            seconds=float(data.get("seconds", 0.0)),
            status=str(data.get("status", "ok")),
            detail=str(data.get("detail", "")),
        )


@dataclass
class FallbackEvent:
    """One degradation decision: what was asked for vs. what ran."""

    stage: str
    requested: str
    used: str
    reason: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "stage": self.stage,
            "requested": self.requested,
            "used": self.used,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FallbackEvent":
        return cls(
            stage=str(data["stage"]),
            requested=str(data.get("requested", "")),
            used=str(data.get("used", "")),
            reason=str(data.get("reason", "")),
        )


@dataclass
class AttemptReport:
    """One attempt inside a fallback chain (solver rung, engine try)."""

    stage: str
    name: str
    succeeded: bool
    seconds: float
    error: Optional[str] = None
    iterations: Optional[int] = None
    residual: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "stage": self.stage,
            "name": self.name,
            "succeeded": self.succeeded,
            "seconds": self.seconds,
            "error": self.error,
            "iterations": self.iterations,
            "residual": self.residual,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AttemptReport":
        iterations = data.get("iterations")
        residual = data.get("residual")
        error = data.get("error")
        return cls(
            stage=str(data["stage"]),
            name=str(data["name"]),
            succeeded=bool(data.get("succeeded", False)),
            seconds=float(data.get("seconds", 0.0)),
            error=None if error is None else str(error),
            iterations=None if iterations is None else int(iterations),
            residual=None if residual is None else float(residual),
        )


@dataclass
class ProcessAttemptReport:
    """One supervised child-process attempt (see
    :mod:`repro.robust.supervisor`).

    ``exit_reason`` taxonomy: ``"ok"`` (clean exit with a result),
    ``"error"`` (unhandled exception in the child), ``"budget"``
    (child exhausted its budget — terminal, not retried), ``"oom"``
    (address-space rlimit hit), ``"signal"`` (killed by a signal other
    than the watchdog's), ``"hung"`` (watchdog killed a stale
    heartbeat).
    """

    index: int
    exit_reason: str
    seconds: float
    degradation_index: int = 0
    degradation: str = "baseline"
    resumed_from: Optional[str] = None
    exit_code: Optional[int] = None
    signal: Optional[int] = None
    max_rss_bytes: Optional[int] = None
    cpu_seconds: Optional[float] = None
    error: Optional[str] = None
    backoff_seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "exit_reason": self.exit_reason,
            "seconds": self.seconds,
            "degradation_index": self.degradation_index,
            "degradation": self.degradation,
            "resumed_from": self.resumed_from,
            "exit_code": self.exit_code,
            "signal": self.signal,
            "max_rss_bytes": self.max_rss_bytes,
            "cpu_seconds": self.cpu_seconds,
            "error": self.error,
            "backoff_seconds": self.backoff_seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ProcessAttemptReport":
        def _opt_int(key: str) -> Optional[int]:
            value = data.get(key)
            return None if value is None else int(value)

        def _opt_str(key: str) -> Optional[str]:
            value = data.get(key)
            return None if value is None else str(value)

        cpu = data.get("cpu_seconds")
        return cls(
            index=int(data.get("index", 0)),
            exit_reason=str(data.get("exit_reason", "error")),
            seconds=float(data.get("seconds", 0.0)),
            degradation_index=int(data.get("degradation_index", 0)),
            degradation=str(data.get("degradation", "baseline")),
            resumed_from=_opt_str("resumed_from"),
            exit_code=_opt_int("exit_code"),
            signal=_opt_int("signal"),
            max_rss_bytes=_opt_int("max_rss_bytes"),
            cpu_seconds=None if cpu is None else float(cpu),
            error=_opt_str("error"),
            backoff_seconds=float(data.get("backoff_seconds", 0.0)),
        )


@dataclass
class PoolEvent:
    """One worker-pool lifecycle event (see :mod:`repro.robust.pool`).

    ``kind`` taxonomy: ``"worker-started"``, ``"worker-crashed"`` (the
    process died or was killed by the pool: ``detail`` carries the
    reason — crash/hung/timeout), ``"worker-restarted"``,
    ``"worker-retired"`` (per-worker crash-loop breaker),
    ``"task-failed"`` (an attempt raised in the worker),
    ``"task-retried"``, ``"task-reassigned"`` (its worker died mid-task),
    ``"task-quarantined"`` (retry budget exhausted; ran serially),
    ``"straggler-redispatched"`` (duplicate dispatch of a slow task),
    ``"pool-degraded"`` (no workers left; remaining tasks ran serially).
    """

    kind: str
    worker: Optional[int] = None
    task: Optional[str] = None
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "worker": self.worker,
            "task": self.task,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PoolEvent":
        worker = data.get("worker")
        task = data.get("task")
        return cls(
            kind=str(data.get("kind", "")),
            worker=None if worker is None else int(worker),
            task=None if task is None else str(task),
            detail=str(data.get("detail", "")),
        )


@dataclass
class RunReport:
    """Structured record of one pipeline run.

    Collects per-stage timings, per-attempt diagnostics, fallbacks taken,
    free-form notes, per-process-attempt history (when supervised), and
    (when a budget was supplied) the final budget consumption.
    ``degraded`` is true iff any fallback fired or any stage finished in
    a non-``ok`` status.
    """

    stages: List[StageReport] = field(default_factory=list)
    attempts: List[AttemptReport] = field(default_factory=list)
    fallbacks: List[FallbackEvent] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    process_attempts: List[ProcessAttemptReport] = field(default_factory=list)
    pool_events: List[PoolEvent] = field(default_factory=list)
    budget: Optional[BudgetConsumption] = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    @contextmanager
    def stage(self, name: str) -> Iterator[StageReport]:
        """Time a stage; marks it ``failed`` (and re-raises) on error.

        The yielded :class:`StageReport` can be mutated inside the block
        (e.g. to set ``status="degraded"`` with a detail).
        """
        record = StageReport(name=name, seconds=0.0)
        start = time.perf_counter()
        try:
            yield record
        except BaseException as exc:
            record.status = "failed"
            record.detail = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            record.seconds = time.perf_counter() - start
            self.stages.append(record)

    def record_fallback(
        self, stage: str, requested: str, used: str, reason: str
    ) -> FallbackEvent:
        """Record a degradation decision and return it."""
        event = FallbackEvent(
            stage=stage, requested=requested, used=used, reason=reason
        )
        self.fallbacks.append(event)
        return event

    def record_attempt(
        self,
        stage: str,
        name: str,
        succeeded: bool,
        seconds: float,
        error: Optional[str] = None,
        iterations: Optional[int] = None,
        residual: Optional[float] = None,
    ) -> AttemptReport:
        """Record one attempt inside a fallback chain."""
        attempt = AttemptReport(
            stage=stage,
            name=name,
            succeeded=succeeded,
            seconds=seconds,
            error=error,
            iterations=iterations,
            residual=residual,
        )
        self.attempts.append(attempt)
        return attempt

    def note(self, message: str) -> None:
        """Append a free-form note."""
        self.notes.append(message)

    def record_process_attempt(
        self, attempt: ProcessAttemptReport
    ) -> ProcessAttemptReport:
        """Record one supervised child-process attempt."""
        self.process_attempts.append(attempt)
        return attempt

    def record_pool_event(
        self,
        kind: str,
        worker: Optional[int] = None,
        task: Optional[str] = None,
        detail: str = "",
    ) -> PoolEvent:
        """Record one worker-pool lifecycle event."""
        event = PoolEvent(kind=kind, worker=worker, task=task, detail=detail)
        self.pool_events.append(event)
        return event

    def pool_events_of_kind(self, *kinds: str) -> List[PoolEvent]:
        """The recorded pool events whose kind is one of ``kinds``."""
        wanted = set(kinds)
        return [event for event in self.pool_events if event.kind in wanted]

    def attach_budget(self, budget: Optional[Budget]) -> None:
        """Snapshot a budget's consumption into the report."""
        if budget is not None:
            self.budget = budget.consumption()

    def merge(self, other: "RunReport") -> "RunReport":
        """Fold another attempt's report into this one; returns ``self``.

        Restart aggregation is *additive*: stage timings, solver
        attempts, fallbacks, notes, and process attempts from the later
        attempt extend (never overwrite) the history already recorded,
        so the merged report reads as a chronology of everything that
        ran.  Budget consumption merges by summing the spend counters
        (elapsed seconds, iterations), taking the max of ``peak_states``
        (a high-water mark), and keeping the later attempt's limits
        (the degradation ladder may have rescaled them).
        """
        self.stages.extend(other.stages)
        self.attempts.extend(other.attempts)
        self.fallbacks.extend(other.fallbacks)
        self.notes.extend(other.notes)
        self.process_attempts.extend(other.process_attempts)
        self.pool_events.extend(other.pool_events)
        if self.budget is None:
            self.budget = other.budget
        elif other.budget is not None:
            mine, theirs = self.budget, other.budget
            self.budget = BudgetConsumption(
                elapsed_seconds=mine.elapsed_seconds + theirs.elapsed_seconds,
                iterations_used=mine.iterations_used + theirs.iterations_used,
                peak_states=max(mine.peak_states, theirs.peak_states),
                wall_clock_seconds=theirs.wall_clock_seconds,
                max_iterations=theirs.max_iterations,
                max_states=theirs.max_states,
            )
        return self

    # ------------------------------------------------------------------
    # queries / rendering
    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """Whether anything fell back or finished non-``ok``."""
        return bool(self.fallbacks) or any(
            stage.status != "ok" for stage in self.stages
        )

    def stage_seconds(self, name: str) -> float:
        """Total seconds across all stages with this name (0.0 if none)."""
        return sum(s.seconds for s in self.stages if s.name == name)

    def fallbacks_for(self, stage: str) -> List[FallbackEvent]:
        """The fallbacks recorded under one stage name."""
        return [event for event in self.fallbacks if event.stage == stage]

    def attempts_for(self, stage: str) -> List[AttemptReport]:
        """The attempts recorded under one stage name."""
        return [attempt for attempt in self.attempts if attempt.stage == stage]

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-serializable; numpy scalars coerced)."""
        return _native(
            {
                "degraded": self.degraded,
                "stages": [stage.to_dict() for stage in self.stages],
                "attempts": [attempt.to_dict() for attempt in self.attempts],
                "fallbacks": [event.to_dict() for event in self.fallbacks],
                "notes": [str(note) for note in self.notes],
                "process_attempts": [
                    attempt.to_dict() for attempt in self.process_attempts
                ],
                "pool_events": [
                    event.to_dict() for event in self.pool_events
                ],
                "budget": self.budget.to_dict() if self.budget else None,
            }
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON form of :meth:`to_dict` (numpy scalars in attempt
        diagnostics are coerced to native types first)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` / parsed :meth:`to_json`
        output.  ``degraded`` is recomputed, not trusted."""
        budget = data.get("budget")
        return cls(
            stages=[
                StageReport.from_dict(s) for s in data.get("stages", ())
            ],
            attempts=[
                AttemptReport.from_dict(a) for a in data.get("attempts", ())
            ],
            fallbacks=[
                FallbackEvent.from_dict(f) for f in data.get("fallbacks", ())
            ],
            notes=[str(note) for note in data.get("notes", ())],
            process_attempts=[
                ProcessAttemptReport.from_dict(p)
                for p in data.get("process_attempts", ())
            ],
            pool_events=[
                PoolEvent.from_dict(e) for e in data.get("pool_events", ())
            ],
            budget=(
                None if budget is None else BudgetConsumption.from_dict(budget)
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        """Rebuild a report from a :meth:`to_json` string."""
        return cls.from_dict(json.loads(text))

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            "run report: "
            + ("DEGRADED" if self.degraded else "clean")
        ]
        for stage in self.stages:
            line = f"  stage {stage.name:<14s} {stage.seconds:8.3f}s  {stage.status}"
            if stage.detail:
                line += f"  ({stage.detail})"
            lines.append(line)
        for attempt in self.attempts:
            outcome = "ok" if attempt.succeeded else "FAILED"
            line = (
                f"  attempt [{attempt.stage}] {attempt.name:<14s} "
                f"{attempt.seconds:8.3f}s  {outcome}"
            )
            if attempt.error:
                line += f"  ({attempt.error})"
            lines.append(line)
        for event in self.fallbacks:
            lines.append(
                f"  fallback [{event.stage}] {event.requested} -> "
                f"{event.used}: {event.reason}"
            )
        for proc in self.process_attempts:
            line = (
                f"  process attempt #{proc.index} "
                f"{proc.exit_reason:<7s} {proc.seconds:8.3f}s  "
                f"degradation={proc.degradation}"
            )
            if proc.signal is not None:
                line += f"  signal={proc.signal}"
            if proc.resumed_from:
                line += f"  resumed-from={proc.resumed_from}"
            if proc.error:
                line += f"  ({proc.error})"
            lines.append(line)
        for event in self.pool_events:
            line = f"  pool {event.kind}"
            if event.worker is not None:
                line += f" worker={event.worker}"
            if event.task is not None:
                line += f" task={event.task}"
            if event.detail:
                line += f"  ({event.detail})"
            lines.append(line)
        for note in self.notes:
            lines.append(f"  note: {note}")
        if self.budget is not None:
            b = self.budget
            lines.append(
                "  budget: "
                f"{b.elapsed_seconds:.3f}s"
                + (f"/{b.wall_clock_seconds:g}s" if b.wall_clock_seconds else "")
                + f", {b.iterations_used} iterations"
                + (f"/{b.max_iterations}" if b.max_iterations else "")
                + f", peak {b.peak_states} states"
                + (f"/{b.max_states}" if b.max_states else "")
            )
        return "\n".join(lines)
