"""Composable resource budgets with cooperative checking.

A :class:`Budget` caps wall-clock time, iteration counts, and state-space
size for everything executed inside its ``with`` block.  The library's
long-running loops (reachability frontiers, refinement worklists, solver
sweeps) call the module-level hooks :func:`check_time`,
:func:`charge_iterations` and :func:`check_states`, which are no-ops when
no budget is active and raise a :class:`BudgetExceeded` subclass *during*
the loop otherwise — exploration stops promptly instead of after the fact.

Budgets compose by nesting: every active budget on the stack is charged,
so an outer pipeline budget and an inner per-stage budget can coexist and
whichever is tighter fires first.

>>> from repro.robust.budgets import Budget, IterationBudgetExceeded
>>> with Budget(max_iterations=2) as budget:
...     budget.charge_iterations(2)
...     try:
...         budget.charge_iterations(1)
...     except IterationBudgetExceeded:
...         print("stopped")
stopped
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from types import TracebackType
from typing import Callable, Dict, List, Mapping, Optional, Type

from repro.errors import ReproError


class BudgetExceeded(ReproError):
    """A resource budget was exhausted.

    Attributes
    ----------
    stage:
        The pipeline stage that was executing when the budget fired
        (``None`` when the charging site did not name one).
    budget:
        The :class:`Budget` that fired.
    """

    def __init__(
        self,
        message: str,
        *,
        stage: Optional[str] = None,
        budget: Optional["Budget"] = None,
    ) -> None:
        super().__init__(message)
        self.stage = stage
        self.budget = budget


class TimeBudgetExceeded(BudgetExceeded):
    """The wall-clock allowance ran out."""


class IterationBudgetExceeded(BudgetExceeded):
    """The iteration allowance ran out."""


class StateBudgetExceeded(BudgetExceeded):
    """The state-count allowance was exceeded."""


def _as_float(value: object, default: float) -> float:
    """Narrow a deserialized JSON value to ``float`` (``None`` -> default)."""
    if value is None:
        return default
    if isinstance(value, (int, float, str)):
        return float(value)
    raise TypeError(f"expected a number, got {type(value).__name__}")


def _as_int(value: object, default: int) -> int:
    """Narrow a deserialized JSON value to ``int`` (``None`` -> default)."""
    if value is None:
        return default
    if isinstance(value, (int, float, str)):
        return int(value)
    raise TypeError(f"expected a number, got {type(value).__name__}")


@dataclass
class BudgetConsumption:
    """Snapshot of how much of a budget has been used."""

    elapsed_seconds: float
    iterations_used: int
    peak_states: int
    wall_clock_seconds: Optional[float]
    max_iterations: Optional[int]
    max_states: Optional[int]

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for reports and serialization."""
        return {
            "elapsed_seconds": self.elapsed_seconds,
            "iterations_used": self.iterations_used,
            "peak_states": self.peak_states,
            "wall_clock_seconds": self.wall_clock_seconds,
            "max_iterations": self.max_iterations,
            "max_states": self.max_states,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "BudgetConsumption":
        """Inverse of :meth:`to_dict` (tolerates missing keys)."""
        limit = data.get("wall_clock_seconds")
        iter_limit = data.get("max_iterations")
        state_limit = data.get("max_states")
        return cls(
            elapsed_seconds=_as_float(data.get("elapsed_seconds"), 0.0),
            iterations_used=_as_int(data.get("iterations_used"), 0),
            peak_states=_as_int(data.get("peak_states"), 0),
            wall_clock_seconds=None if limit is None else _as_float(limit, 0.0),
            max_iterations=None if iter_limit is None else _as_int(iter_limit, 0),
            max_states=None if state_limit is None else _as_int(state_limit, 0),
        )


class Budget:
    """A composable cap on wall-clock seconds, iterations, and states.

    Any limit may be ``None`` (unlimited).  Use as a context manager to
    activate it for the enclosed block; the library's cooperative hooks
    then charge it automatically.  A budget may also be charged explicitly
    through its methods, active or not.
    """

    def __init__(
        self,
        wall_clock_seconds: Optional[float] = None,
        max_iterations: Optional[int] = None,
        max_states: Optional[int] = None,
    ) -> None:
        for name, value in (
            ("wall_clock_seconds", wall_clock_seconds),
            ("max_iterations", max_iterations),
            ("max_states", max_states),
        ):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, not {value!r}")
        self.wall_clock_seconds = wall_clock_seconds
        self.max_iterations = max_iterations
        self.max_states = max_states
        self.iterations_used = 0
        self.peak_states = 0
        self._start: Optional[float] = None
        self._time_countdown = 0

    # ------------------------------------------------------------------
    # activation
    # ------------------------------------------------------------------

    def start(self) -> "Budget":
        """Start (or restart) the wall clock; returns ``self``."""
        self._start = time.perf_counter()
        return self

    def __enter__(self) -> "Budget":
        if self._start is None:
            self.start()
        _ACTIVE.append(self)
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        _ACTIVE.remove(self)

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock seconds since :meth:`start` (0.0 before it)."""
        if self._start is None:
            return 0.0
        return time.perf_counter() - self._start

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------

    def check_time(self, stage: Optional[str] = None) -> None:
        """Raise :class:`TimeBudgetExceeded` if the wall clock ran out."""
        if self.wall_clock_seconds is None:
            return
        elapsed = self.elapsed_seconds
        if elapsed > self.wall_clock_seconds:
            raise TimeBudgetExceeded(
                f"wall-clock budget of {self.wall_clock_seconds:g}s exceeded "
                f"({elapsed:.3f}s elapsed"
                + (f" during {stage}" if stage else "")
                + ")",
                stage=stage,
                budget=self,
            )

    #: Wall-clock checks inside :meth:`charge_iterations` run once per
    #: this many charges — reading the clock on every worklist pop or
    #: solver sweep would dominate the hook's cost.
    TIME_CHECK_STRIDE = 64

    def charge_iterations(
        self, count: int = 1, stage: Optional[str] = None
    ) -> None:
        """Consume ``count`` iterations; raise once the allowance is gone.

        Also checks the wall clock (amortized: once every
        :attr:`TIME_CHECK_STRIDE` charges), so iteration-driven loops
        need only this one hook.
        """
        self.iterations_used += count
        if (
            self.max_iterations is not None
            and self.iterations_used > self.max_iterations
        ):
            raise IterationBudgetExceeded(
                f"iteration budget of {self.max_iterations} exceeded"
                + (f" during {stage}" if stage else ""),
                stage=stage,
                budget=self,
            )
        if self.wall_clock_seconds is not None:
            self._time_countdown -= 1
            if self._time_countdown <= 0:
                self._time_countdown = self.TIME_CHECK_STRIDE
                self.check_time(stage)

    def check_states(self, count: int, stage: Optional[str] = None) -> None:
        """Record a state count; raise if it exceeds the allowance."""
        if count > self.peak_states:
            self.peak_states = count
        if self.max_states is not None and count > self.max_states:
            raise StateBudgetExceeded(
                f"state budget of {self.max_states} exceeded "
                f"({count} states"
                + (f" during {stage}" if stage else "")
                + ")",
                stage=stage,
                budget=self,
            )

    def consumption(self) -> BudgetConsumption:
        """Snapshot of usage against the configured limits."""
        return BudgetConsumption(
            elapsed_seconds=self.elapsed_seconds,
            iterations_used=self.iterations_used,
            peak_states=self.peak_states,
            wall_clock_seconds=self.wall_clock_seconds,
            max_iterations=self.max_iterations,
            max_states=self.max_states,
        )

    def __repr__(self) -> str:
        limits = ", ".join(
            f"{name}={value!r}"
            for name, value in (
                ("wall_clock_seconds", self.wall_clock_seconds),
                ("max_iterations", self.max_iterations),
                ("max_states", self.max_states),
            )
            if value is not None
        )
        return f"Budget({limits or 'unlimited'})"


#: Stack of active budgets (innermost last).  Module-level hooks charge
#: every entry so nested budgets compose.
_ACTIVE: List[Budget] = []

#: Optional liveness callback fired on *every* hook call, budget active
#: or not — the supervisor's heartbeat hangs off this so a supervised
#: child proves liveness at each cooperative check site even when the
#: attempt runs without limits.  Must be cheap and must never raise.
_PULSE: Optional[Callable[[], None]] = None


def set_pulse(pulse: Optional[Callable[[], None]]) -> None:
    """Install (or with ``None`` remove) the liveness pulse callback."""
    global _PULSE
    _PULSE = pulse


def get_pulse() -> Optional[Callable[[], None]]:
    """The installed liveness pulse callback (so a caller can compose
    with it and restore it afterwards)."""
    return _PULSE


def active_budget() -> Optional[Budget]:
    """The innermost active budget, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


def check_time(stage: Optional[str] = None) -> None:
    """Cooperative hook: check the wall clock of every active budget."""
    if _PULSE is not None:
        _PULSE()
    if not _ACTIVE:
        return
    _fault_check()
    for budget in _ACTIVE:
        budget.check_time(stage)


def charge_iterations(count: int = 1, stage: Optional[str] = None) -> None:
    """Cooperative hook: charge iterations to every active budget."""
    if _PULSE is not None:
        _PULSE()
    if not _ACTIVE:
        return
    _fault_check()
    for budget in _ACTIVE:
        budget.charge_iterations(count, stage)


def check_states(count: int, stage: Optional[str] = None) -> None:
    """Cooperative hook: check a state count against every active budget."""
    if _PULSE is not None:
        _PULSE()
    if not _ACTIVE:
        return
    _fault_check()
    for budget in _ACTIVE:
        budget.check_states(count, stage)


#: Cached reference to :func:`repro.robust.faults.check`, resolved on
#: first use (``faults`` imports this module for
#: :class:`InjectedBudgetFault`, so a top-level import would cycle).
_faults_check: Optional[Callable[[str], None]] = None


def _fault_check() -> None:
    """Let the fault injector force budget exhaustion at charge sites."""
    global _faults_check
    if _faults_check is None:
        from repro.robust import faults

        _faults_check = faults.check
    _faults_check("budget")
