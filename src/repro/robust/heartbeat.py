"""Liveness heartbeats: how a watchdog tells *slow* from *hung*.

A supervised child (see :mod:`repro.robust.supervisor`) periodically
touches a heartbeat file; the parent watchdog reads it and kills the
child only when the beat goes stale — a child that is merely slow keeps
beating, a child stuck in an uninstrumented stall (a wedged syscall, a
livelocked loop that forgot its budget hook) stops.

Beats piggyback on the cooperative budget-check sites: installing a
heartbeat registers a *pulse* callback with
:mod:`repro.robust.budgets`, so every ``check_time`` /
``charge_iterations`` / ``check_states`` call in the pipeline's hot
loops beats for free.  The write itself is rate-limited
(``min_interval_seconds``), so a loop charging thousands of iterations
per second costs one clock read per charge and a few file writes per
second.

Timestamps are ``time.monotonic()`` values.  On Linux (the supervised
deployment target) ``CLOCK_MONOTONIC`` is system-wide, so the parent
can subtract the child's written value from its own clock; a platform
where the clocks differ degrades to "the file changed recently", which
the monitor also tracks via its own read clock.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from repro.robust import budgets

#: Default floor between consecutive beat *writes*.
DEFAULT_MIN_INTERVAL_SECONDS = 0.05


class Heartbeat:
    """Child side: touch ``path`` at a bounded rate.

    ``beat()`` is cheap when called more often than
    ``min_interval_seconds`` (one monotonic read, no I/O); ``force=True``
    bypasses the rate limit for milestone beats (process start, stage
    boundaries, final result written).
    """

    def __init__(
        self,
        path: str,
        min_interval_seconds: float = DEFAULT_MIN_INTERVAL_SECONDS,
    ) -> None:
        if min_interval_seconds < 0:
            raise ValueError(
                "min_interval_seconds must be >= 0, "
                f"not {min_interval_seconds!r}"
            )
        self.path = path
        self.min_interval_seconds = min_interval_seconds
        self.beats_written = 0
        self._last_write: Optional[float] = None

    def beat(self, force: bool = False) -> bool:
        """Touch the heartbeat file; returns whether a write happened."""
        now = time.monotonic()
        if (
            not force
            and self._last_write is not None
            and now - self._last_write < self.min_interval_seconds
        ):
            return False
        # Atomic via rename so the monitor never reads a torn value; no
        # fsync — a heartbeat is a liveness signal, not durable state.
        tmp_path = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                handle.write(f"{now:.6f}\n")
            os.replace(tmp_path, self.path)
        except OSError:
            # A beat that cannot be written must never kill the work
            # it is reporting on; the watchdog will see staleness and
            # treat the child as hung, which is the honest outcome.
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            return False
        self._last_write = now
        self.beats_written += 1
        return True


class HeartbeatMonitor:
    """Parent side: how stale is the child's last beat?"""

    def __init__(self, path: str) -> None:
        self.path = path

    def last_beat(self) -> Optional[float]:
        """The child's last written monotonic timestamp, or ``None``
        when no (readable) beat exists yet."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                text = handle.read().strip()
            return float(text)
        except (OSError, ValueError):
            return None

    def age_seconds(self) -> Optional[float]:
        """Seconds since the last beat (clamped at 0), or ``None`` when
        the child has not beaten yet."""
        last = self.last_beat()
        if last is None:
            return None
        return max(0.0, time.monotonic() - last)


#: The process-wide installed heartbeat (a supervised child has exactly
#: one; everything else has none).
_INSTALLED: Optional[Heartbeat] = None


def install(
    path: str,
    min_interval_seconds: float = DEFAULT_MIN_INTERVAL_SECONDS,
) -> Heartbeat:
    """Install a process-wide heartbeat and hook it into the budget
    check sites.  Returns the :class:`Heartbeat` (also reachable via
    :func:`installed`)."""
    global _INSTALLED
    hb = Heartbeat(path, min_interval_seconds=min_interval_seconds)
    _INSTALLED = hb
    budgets.set_pulse(lambda: hb.beat())
    return hb


def uninstall() -> None:
    """Remove the installed heartbeat and its budget-site pulse."""
    global _INSTALLED
    _INSTALLED = None
    budgets.set_pulse(None)


def installed() -> Optional[Heartbeat]:
    """The process-wide heartbeat, if one is installed."""
    return _INSTALLED


def beat(force: bool = False) -> bool:
    """Beat the installed heartbeat (no-op without one)."""
    if _INSTALLED is None:
        return False
    return _INSTALLED.beat(force=force)
