"""Numerical result certificates and the escalation-on-failure ladder.

The robustness substrate keeps the pipeline *alive* through crashes and
degradations; this module makes its answers *checked*.  Following the
imprecise-CTMC line (Erreygers & De Bock, arXiv:1804.01020) every result
carries machine-checkable numerical evidence, and the dual-eigenvector
strong-lumpability test (Nilsson Jacobi & Görnerup, arXiv:0710.1986)
serves as an independent detector of a lumping that silently distorts
aggregated measures.

A :class:`Certificate` bundles named :class:`CertificateCheck` entries:

``finite``
    NaN/Inf guard over the stationary vector.
``mass-defect``
    ``|sum(pi) - 1|`` against the certificate tolerance.
``nonnegativity``
    The most negative entry against ``-tol``.
``residual-recheck``
    ``||pi Q||_inf`` recomputed through an *independent engine* —
    extended-precision (``numpy.longdouble``) accumulation over COO
    triplets (:func:`repro.util.numeric.extended_residual_inf`) instead
    of scipy's compiled float64 CSR matvec — so the recheck does not
    share failure modes with the solver it checks.
``measure-consistency``
    For lumped solutions of small models: solve the *unlumped* chain
    directly, project its stationary distribution onto the lumped space
    (:meth:`~repro.lumping.compositional.CompositionalLumpingResult.project_distribution`)
    and compare.  Skipped (recorded in the check detail) above
    :data:`DEFAULT_SPOT_CHECK_LIMIT` original states.
``spectral-lumpability``
    The invariant-subspace test: ordinary lumpability of ``M`` w.r.t.
    the block-indicator matrix ``V`` holds iff ``M V = V Mhat`` with
    ``Mhat = (V^T V)^{-1} V^T M V`` (``M = Q`` for ordinary lumping,
    ``M = Q^T`` for exact).  The max-norm defect is checked against the
    rate-scaled tolerance; gated by the same spot-check limit.

On failure, :func:`certify_with_escalation` climbs a ladder — the next
method of the existing fallback chain, then a tightened-tolerance
iterative re-solve, then an extended-precision ("float128") Jacobi
refinement via :func:`repro.util.numeric.extended_jacobi_refine` — and
records every step in the :class:`~repro.robust.report.RunReport` as
``certificate`` attempts and ``certificate-escalation`` fallbacks.  An
exhausted ladder raises :class:`~repro.errors.CertificationError` with
the last certificate attached as the diagnosis.

The deterministic fault site ``certify.corrupt`` (see
:mod:`repro.robust.faults`) flips one stationary entry before
certification, so CI can prove end to end that a corrupt result never
leaves the pipeline as ``done``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CertificationError, ReproError, SolverError
from repro.markov.ctmc import CTMC
from repro.markov.solvers import steady_state
from repro.robust import faults
from repro.robust.faults import InjectedFault
from repro.util.numeric import extended_jacobi_refine, extended_residual_inf

if TYPE_CHECKING:  # import cycle guards: these modules import robust.*
    from repro.analysis import LumpedSolution
    from repro.lumping.compositional import CompositionalLumpingResult
    from repro.lumping.md_model import MDModel
    from repro.robust.report import RunReport

#: Version stamp of the certificate dict layout (stored in the service
#: cache beside results; bump on incompatible changes).
CERTIFICATE_FORMAT = 1

#: Default base tolerance for certificate checks.  Vector-scale checks
#: (mass defect, nonnegativity, measure consistency) use it directly;
#: rate-scale checks (residual, spectral defect) multiply by the chain's
#: maximum exit rate so the bound is invariant under time rescaling.
DEFAULT_CERTIFICATE_TOL = 1e-6

#: Original-chain size above which the measure-consistency and spectral
#: spot-checks are skipped (they solve / densify the *unlumped* chain,
#: which would defeat the point of lumping on large models).
DEFAULT_SPOT_CHECK_LIMIT = 128

#: Name of the independent residual-recheck engine (provenance).
RESIDUAL_ENGINE = "longdouble-coo"


@dataclass
class CertificateCheck:
    """One named check inside a :class:`Certificate`.

    ``value``/``bound`` are the measured quantity and its acceptance
    bound when numeric; structural checks (and skipped spot-checks,
    whose ``detail`` starts with ``"skipped:"``) leave them ``None``.
    """

    name: str
    passed: bool
    value: Optional[float] = None
    bound: Optional[float] = None
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "passed": self.passed,
            "value": self.value,
            "bound": self.bound,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CertificateCheck":
        value = data.get("value")
        bound = data.get("bound")
        return cls(
            name=str(data["name"]),
            passed=bool(data.get("passed", False)),
            value=None if value is None else float(value),  # type: ignore[arg-type]
            bound=None if bound is None else float(bound),  # type: ignore[arg-type]
            detail=str(data.get("detail", "")),
        )


@dataclass
class Certificate:
    """Machine-checkable evidence that a stationary solution is right.

    Carries the individual :class:`CertificateCheck` outcomes plus
    provenance: the solver ``method`` that produced the vector, the
    lumping ``kind``, the recheck ``engine``, and the ``tolerance`` /
    ``rate_scale`` pair the bounds were derived from.  Serialization is
    deterministic (no wall-clock fields), so certificates can live in
    the content-addressed result cache without perturbing digests.
    """

    passed: bool
    checks: List[CertificateCheck] = field(default_factory=list)
    method: str = "unknown"
    kind: str = "ordinary"
    tolerance: float = DEFAULT_CERTIFICATE_TOL
    rate_scale: float = 1.0
    num_states: int = 0
    engine: str = RESIDUAL_ENGINE
    format: int = CERTIFICATE_FORMAT

    @property
    def failures(self) -> List[CertificateCheck]:
        """The checks that did not pass."""
        return [check for check in self.checks if not check.passed]

    @property
    def reasons(self) -> List[str]:
        """Structured failure reasons, one per failing check."""
        out = []
        for check in self.failures:
            reason = check.name
            if check.value is not None and check.bound is not None:
                reason += f" ({check.value:.3e} vs bound {check.bound:.3e})"
            if check.detail:
                reason += f": {check.detail}"
            out.append(reason)
        return out

    def check(self, name: str) -> Optional[CertificateCheck]:
        """The first check with this name, or ``None``."""
        for entry in self.checks:
            if entry.name == name:
                return entry
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": self.format,
            "passed": self.passed,
            "method": self.method,
            "kind": self.kind,
            "tolerance": self.tolerance,
            "rate_scale": self.rate_scale,
            "num_states": self.num_states,
            "engine": self.engine,
            "checks": [check.to_dict() for check in self.checks],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Certificate":
        return cls(
            passed=bool(data.get("passed", False)),
            checks=[
                CertificateCheck.from_dict(c)  # type: ignore[arg-type]
                for c in data.get("checks", ())  # type: ignore[union-attr]
            ],
            method=str(data.get("method", "unknown")),
            kind=str(data.get("kind", "ordinary")),
            tolerance=float(data.get("tolerance", DEFAULT_CERTIFICATE_TOL)),  # type: ignore[arg-type]
            rate_scale=float(data.get("rate_scale", 1.0)),  # type: ignore[arg-type]
            num_states=int(data.get("num_states", 0)),  # type: ignore[arg-type]
            engine=str(data.get("engine", RESIDUAL_ENGINE)),
            format=int(data.get("format", CERTIFICATE_FORMAT)),  # type: ignore[arg-type]
        )

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            "certificate: "
            + ("PASSED" if self.passed else "FAILED")
            + f"  (method={self.method}, kind={self.kind}, "
            f"n={self.num_states}, tol={self.tolerance:g}, "
            f"engine={self.engine})"
        ]
        for check in self.checks:
            line = f"  {'ok  ' if check.passed else 'FAIL'} {check.name}"
            if check.value is not None:
                line += f"  value={check.value:.3e}"
            if check.bound is not None:
                line += f"  bound={check.bound:.3e}"
            if check.detail:
                line += f"  ({check.detail})"
            lines.append(line)
        return "\n".join(lines)


def certificate_tolerance(
    ctmc: CTMC, tol: Optional[float] = None
) -> Tuple[float, float]:
    """The ``(base_tol, rate_scale)`` pair for certifying against ``ctmc``.

    Vector-scale bounds use ``base_tol`` as-is (a probability vector is
    unit-scale regardless of the model's rates); residual and spectral
    bounds multiply by ``rate_scale = max(1, max exit rate)``, since
    ``pi Q`` carries the rates' units.
    """
    base = DEFAULT_CERTIFICATE_TOL if tol is None else float(tol)
    if base <= 0:
        raise SolverError(f"certificate tolerance must be positive, got {base:g}")
    exit_rates = ctmc.exit_rates()
    top = float(exit_rates.max()) if exit_rates.size else 0.0
    return base, max(1.0, top)


def apply_corruption(pi: np.ndarray) -> np.ndarray:
    """Fault hook for the ``certify.corrupt`` site: flip one entry.

    When a matching fault rule fires (see :mod:`repro.robust.faults`),
    the largest entry is replaced by ``2 * entry + 0.5`` *without*
    renormalizing — a mass defect of at least 0.5, far outside any
    certificate tolerance, so an armed corruption is always caught.
    Without an active rule the vector passes through untouched (one
    global read, as for every fault site).
    """
    arr = np.asarray(pi, dtype=float)
    try:
        faults.check("certify.corrupt")
    except InjectedFault:
        corrupted = arr.copy()
        if corrupted.size:
            worst = int(np.argmax(corrupted))
            corrupted[worst] = corrupted[worst] * 2.0 + 0.5
        return corrupted
    return arr


# ----------------------------------------------------------------------
# individual checks
# ----------------------------------------------------------------------


def _vector_checks(pi: np.ndarray, tol: float) -> List[CertificateCheck]:
    """The NaN/Inf, mass-defect, and nonnegativity checks."""
    nan_count = int(np.isnan(pi).sum())
    inf_count = int(np.isinf(pi).sum())
    checks = [
        CertificateCheck(
            name="finite",
            passed=nan_count == 0 and inf_count == 0,
            value=float(nan_count + inf_count),
            bound=0.0,
            detail=(
                f"{nan_count} NaN, {inf_count} infinite of {pi.size} entries"
                if nan_count or inf_count
                else ""
            ),
        )
    ]
    total = float(pi.sum()) if pi.size else 0.0
    defect = abs(total - 1.0)
    checks.append(
        CertificateCheck(
            name="mass-defect",
            passed=bool(defect <= tol),
            value=defect,
            bound=tol,
            detail=f"sum(pi) = {total:.12g}",
        )
    )
    minimum = float(pi.min()) if pi.size else 0.0
    checks.append(
        CertificateCheck(
            name="nonnegativity",
            passed=bool(minimum >= -tol),
            value=minimum,
            bound=-tol,
            detail="most negative entry vs -tol",
        )
    )
    return checks


def _generator_coo(
    ctmc: CTMC,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``(rows, cols, off_diagonal_data, diagonal)`` of the generator."""
    q = ctmc.generator_matrix().tocoo()
    rows = np.asarray(q.row)
    cols = np.asarray(q.col)
    data = np.asarray(q.data, dtype=float)
    off = rows != cols
    diag = np.zeros(ctmc.num_states, dtype=float)
    on = ~off
    diag[rows[on]] = data[on]
    return rows[off], cols[off], data[off], diag


def _residual_check(pi: np.ndarray, ctmc: CTMC, bound: float) -> CertificateCheck:
    """Independent ``||pi Q||_inf`` recheck in extended precision."""
    q = ctmc.generator_matrix().tocoo()
    residual = extended_residual_inf(
        pi, np.asarray(q.row), np.asarray(q.col), np.asarray(q.data),
        ctmc.num_states,
    )
    return CertificateCheck(
        name="residual-recheck",
        passed=bool(residual <= bound),
        value=residual,
        bound=bound,
        detail=f"||pi Q||_inf via {RESIDUAL_ENGINE}",
    )


def _measure_check(
    pi: np.ndarray,
    flat: CTMC,
    lumping: "CompositionalLumpingResult",
    bound: float,
) -> CertificateCheck:
    """Lumped-vs-unlumped measure consistency on projected vectors."""
    name = "measure-consistency"
    try:
        full = steady_state(flat, method="direct").distribution
        projected = lumping.project_distribution(full)
    except ReproError as exc:
        return CertificateCheck(
            name=name, passed=True,
            detail=f"skipped: {type(exc).__name__}: {exc}",
        )
    if projected.shape != pi.shape:
        return CertificateCheck(
            name=name, passed=False,
            detail=(
                f"projected shape {projected.shape} does not match "
                f"lumped vector shape {pi.shape}"
            ),
        )
    gap = float(np.abs(projected - pi).max()) if pi.size else 0.0
    return CertificateCheck(
        name=name,
        passed=bool(gap <= bound),
        value=gap,
        bound=bound,
        detail="max |project(pi_unlumped) - pi_lumped|",
    )


def _spectral_check(
    flat: CTMC,
    lumping: "CompositionalLumpingResult",
    kind: str,
    bound: float,
) -> CertificateCheck:
    """Invariant-subspace lumpability spot-check (0710.1986).

    With ``V`` the block-indicator matrix of the flat partition, the
    partition is an ordinary lumping of ``M`` iff the column space of
    ``V`` is ``M``-invariant: ``M V = V Mhat`` for
    ``Mhat = (V^T V)^{-1} V^T M V``.  Ordinary lumping tests ``M = Q``;
    exact lumping is the same condition on ``M = Q^T``.
    """
    name = "spectral-lumpability"
    try:
        q = flat.generator_matrix().toarray()  # reprolint: disable=RL003 -- spot-check only runs when n <= spot_check_limit (128)
        projection = lumping.projection_vector()
    except ReproError as exc:
        return CertificateCheck(
            name=name, passed=True,
            detail=f"skipped: {type(exc).__name__}: {exc}",
        )
    n = int(projection.size)
    if n != q.shape[0]:
        return CertificateCheck(
            name=name, passed=False,
            detail=(
                f"projection maps {n} states but the flat chain has "
                f"{q.shape[0]}"
            ),
        )
    m = int(lumping.lumped.num_states())
    indicator = np.zeros((n, m), dtype=float)
    indicator[np.arange(n), projection] = 1.0
    matrix = q if kind == "ordinary" else q.T
    counts = indicator.sum(axis=0)
    counts[counts == 0] = 1.0  # empty class: contributes a zero row
    lumped_matrix = (indicator.T @ matrix @ indicator) / counts[:, None]
    defect = float(
        np.abs(matrix @ indicator - indicator @ lumped_matrix).max()
    )
    return CertificateCheck(
        name=name,
        passed=bool(defect <= bound),
        value=defect,
        bound=bound,
        detail=f"||M V - V Mhat||_max, M = {'Q' if kind == 'ordinary' else 'Q^T'}",
    )


# ----------------------------------------------------------------------
# certification entry points
# ----------------------------------------------------------------------


def certify_stationary(
    pi: np.ndarray,
    ctmc: CTMC,
    *,
    method: str = "unknown",
    kind: str = "ordinary",
    tol: Optional[float] = None,
) -> Certificate:
    """Certify a stationary vector against the chain it claims to solve.

    Runs the flat-chain checks (finite, mass defect, nonnegativity,
    independent residual recheck); the lumping-aware spot-checks need
    the lumping structure and live in :func:`certify`.
    """
    base, scale = certificate_tolerance(ctmc, tol)
    arr = np.asarray(pi, dtype=float).ravel()
    if arr.size != ctmc.num_states:
        return Certificate(
            passed=False,
            checks=[
                CertificateCheck(
                    name="shape",
                    passed=False,
                    detail=(
                        f"vector has {arr.size} entries for a "
                        f"{ctmc.num_states}-state chain"
                    ),
                )
            ],
            method=method,
            kind=kind,
            tolerance=base,
            rate_scale=scale,
            num_states=ctmc.num_states,
        )
    checks = _vector_checks(arr, base)
    checks.append(_residual_check(arr, ctmc, base * scale))
    return Certificate(
        passed=all(check.passed for check in checks),
        checks=checks,
        method=method,
        kind=kind,
        tolerance=base,
        rate_scale=scale,
        num_states=ctmc.num_states,
    )


def _certify_lumped(
    pi: np.ndarray,
    lumped_ctmc: CTMC,
    lumping: Optional["CompositionalLumpingResult"],
    original: Optional["MDModel"],
    *,
    method: str,
    kind: str,
    tol: Optional[float],
    spot_check_limit: int,
) -> Certificate:
    """Flat-chain checks plus the lumping-aware spot-checks."""
    cert = certify_stationary(
        pi, lumped_ctmc, method=method, kind=kind, tol=tol
    )
    if lumping is None or cert.check("shape") is not None:
        return cert
    model = original if original is not None else lumping.original
    arr = np.asarray(pi, dtype=float).ravel()
    scaled = cert.tolerance * cert.rate_scale
    n = int(model.num_states())
    if n > spot_check_limit:
        detail = (
            f"skipped: {n} original states exceed spot-check limit "
            f"{spot_check_limit}"
        )
        cert.checks.append(
            CertificateCheck("measure-consistency", True, detail=detail)
        )
        cert.checks.append(
            CertificateCheck("spectral-lumpability", True, detail=detail)
        )
    else:
        try:
            flat = model.flat_ctmc()
        except ReproError as exc:
            detail = f"skipped: {type(exc).__name__}: {exc}"
            cert.checks.append(
                CertificateCheck("measure-consistency", True, detail=detail)
            )
            cert.checks.append(
                CertificateCheck("spectral-lumpability", True, detail=detail)
            )
        else:
            cert.checks.append(
                _measure_check(arr, flat, lumping, cert.tolerance)
            )
            cert.checks.append(_spectral_check(flat, lumping, kind, scaled))
    cert.passed = all(check.passed for check in cert.checks)
    return cert


def certify(
    solution: "LumpedSolution",
    model: Optional["MDModel"] = None,
    *,
    tol: Optional[float] = None,
    spot_check_limit: int = DEFAULT_SPOT_CHECK_LIMIT,
    lumped_ctmc: Optional[CTMC] = None,
) -> Certificate:
    """Certify a :class:`~repro.analysis.LumpedSolution` end to end.

    ``model`` is the original (unlumped) model for the spot-checks; when
    omitted, the lumping's recorded original is used.  Returns the
    :class:`Certificate` — pass/fail with structured reasons — without
    raising; callers that must not proceed on failure check ``passed``
    (or use ``lump_and_solve(certify=True)``, which escalates and raises
    :class:`~repro.errors.CertificationError` when the ladder runs dry).
    ``lumped_ctmc`` lets callers that already hold the flattened lumped
    chain (the solve pipeline does) skip re-flattening the MD, which
    otherwise dominates the certificate's cost.
    """
    if lumped_ctmc is None:
        lumped_ctmc = solution.lumping.lumped.flat_ctmc()
    return _certify_lumped(
        np.asarray(solution.stationary, dtype=float),
        lumped_ctmc,
        solution.lumping,
        model,
        method=solution.solve_method,
        kind=solution.lumping.kind,
        tol=tol,
        spot_check_limit=spot_check_limit,
    )


# ----------------------------------------------------------------------
# escalation ladder
# ----------------------------------------------------------------------


@dataclass
class CertifiedSolve:
    """A certified stationary vector plus the path that produced it."""

    stationary: np.ndarray
    method: str
    certificate: Certificate
    escalations: List[str] = field(default_factory=list)

    @property
    def escalated(self) -> bool:
        """Whether any ladder rung beyond the original solve was needed."""
        return bool(self.escalations)


def _resolve_candidate(
    ctmc: CTMC, method: str, tol: float
) -> Tuple[Optional[np.ndarray], Optional[str]]:
    """One re-solve attempt for the ladder: ``(vector, error)``."""
    from repro.robust.fallback import ITERATIVE_METHODS

    kwargs: Dict[str, Any] = {}
    if method in ITERATIVE_METHODS:
        kwargs["tol"] = tol
    try:
        result = steady_state(ctmc, method=method, **kwargs)
    except SolverError as exc:
        return None, str(exc)
    return np.asarray(result.distribution, dtype=float), None


def certify_with_escalation(
    pi: np.ndarray,
    lumped_ctmc: CTMC,
    *,
    method: str,
    kind: str = "ordinary",
    lumping: Optional["CompositionalLumpingResult"] = None,
    original: Optional["MDModel"] = None,
    chain: Sequence[str] = (),
    report: Optional["RunReport"] = None,
    tol: Optional[float] = None,
    solver_tol: float = 1e-12,
    spot_check_limit: int = DEFAULT_SPOT_CHECK_LIMIT,
) -> CertifiedSolve:
    """Certify ``pi``; on failure climb the escalation ladder.

    The ladder, in order (each rung re-certified before acceptance):

    1. every untried method of ``chain`` (the existing fallback chain),
    2. a tightened-tolerance re-solve (``solver_tol / 1e3``) with the
       first iterative method of the chain,
    3. an extended-precision ("float128") Jacobi refinement of the best
       iterate via :func:`repro.util.numeric.extended_jacobi_refine`.

    Every certification attempt lands in ``report`` as a
    ``certificate``-stage attempt and every rung taken as a
    ``certificate-escalation`` fallback.  Raises
    :class:`~repro.errors.CertificationError` (last certificate
    attached) when the ladder is exhausted.
    """
    from repro.robust.fallback import ITERATIVE_METHODS

    escalations: List[str] = []

    def _evaluate(vector: np.ndarray, label: str) -> Certificate:
        candidate = apply_corruption(vector)
        start = time.perf_counter()
        cert = _certify_lumped(
            candidate,
            lumped_ctmc,
            lumping,
            original,
            method=label,
            kind=kind,
            tol=tol,
            spot_check_limit=spot_check_limit,
        )
        if report is not None:
            report.record_attempt(
                stage="certificate",
                name=f"certify:{label}",
                succeeded=cert.passed,
                seconds=time.perf_counter() - start,
                error=None if cert.passed else "; ".join(cert.reasons),
                residual=(
                    cert.check("residual-recheck").value  # type: ignore[union-attr]
                    if cert.check("residual-recheck") is not None
                    else None
                ),
            )
        return cert

    first = np.asarray(pi, dtype=float)
    cert = _evaluate(first, method)
    if cert.passed:
        return CertifiedSolve(
            stationary=first, method=method, certificate=cert, escalations=[]
        )
    last_cert = cert
    last_reason = "; ".join(cert.reasons) or "certificate failed"

    def _escalate(label: str) -> None:
        escalations.append(label)
        if report is not None:
            report.record_fallback(
                stage="certificate-escalation",
                requested=method,
                used=label,
                reason=last_reason,
            )

    # Rung 1: the untried methods of the existing fallback chain.
    tried = {method}
    for alternative in chain:
        if alternative in tried:
            continue
        tried.add(alternative)
        _escalate(alternative)
        vector, error = _resolve_candidate(
            lumped_ctmc, alternative, solver_tol
        )
        if vector is None:
            last_reason = f"{alternative} re-solve failed: {error}"
            continue
        cert = _evaluate(vector, alternative)
        if cert.passed:
            return CertifiedSolve(
                stationary=vector,
                method=alternative,
                certificate=cert,
                escalations=escalations,
            )
        last_cert = cert
        last_reason = "; ".join(cert.reasons) or "certificate failed"

    # Rung 2: tightened tolerance on the first iterative method.
    iterative = next(
        (m for m in chain if m in ITERATIVE_METHODS), "gauss-seidel"
    )
    tight_tol = max(solver_tol / 1e3, 1e-15)
    tight_label = f"{iterative}@tol={tight_tol:g}"
    _escalate(tight_label)
    vector, error = _resolve_candidate(lumped_ctmc, iterative, tight_tol)
    if vector is not None:
        cert = _evaluate(vector, tight_label)
        if cert.passed:
            return CertifiedSolve(
                stationary=vector,
                method=iterative,
                certificate=cert,
                escalations=escalations,
            )
        last_cert = cert
        last_reason = "; ".join(cert.reasons) or "certificate failed"
    else:
        last_reason = f"tightened re-solve failed: {error}"

    # Rung 3: extended-precision refinement of the best iterate.
    _escalate("float128-refine")
    rows, cols, data, diag = _generator_coo(lumped_ctmc)
    try:
        refined = extended_jacobi_refine(
            first, rows, cols, data, diag, sweeps=2000, tol=solver_tol
        )
    except SolverError as exc:
        last_reason = f"float128 refinement failed: {exc}"
    else:
        cert = _evaluate(refined, "float128-refine")
        if cert.passed:
            return CertifiedSolve(
                stationary=refined,
                method="float128-refine",
                certificate=cert,
                escalations=escalations,
            )
        last_cert = cert
        last_reason = "; ".join(cert.reasons) or "certificate failed"

    raise CertificationError(
        f"certification of the {method!r} solution failed and the "
        f"escalation ladder ({', '.join(escalations)}) is exhausted; "
        f"last failures: {last_reason}",
        certificate=last_cert,
        method=method,
    )


# ----------------------------------------------------------------------
# cache revalidation
# ----------------------------------------------------------------------


def revalidate_cached(
    result: Dict[str, Any], certificate: Optional[Dict[str, Any]]
) -> Optional[str]:
    """Re-validate a cached result against its stored certificate.

    Returns ``None`` when the entry may be served, or a reason string
    when it must be evicted and re-solved.  Entries without a
    certificate (written before certification existed, or with
    ``certify=False``) are served as-is — absence of evidence is legacy,
    not corruption.  The cheap vector checks are *recomputed* from the
    stored stationary vector, so bytes that went stale between ``put``
    and ``get`` (despite an intact digest) are still caught.
    """
    if certificate is None:
        return None
    if not isinstance(certificate, dict):
        return "stored certificate is not a mapping"
    if not certificate.get("passed", False):
        return "stored certificate did not pass"
    stationary = result.get("stationary")
    if stationary is None:
        return "cached result carries no stationary vector"
    arr = np.asarray(stationary, dtype=float).ravel()
    tol = float(certificate.get("tolerance", DEFAULT_CERTIFICATE_TOL))
    expected = certificate.get("num_states")
    if expected is not None and int(expected) != arr.size:
        return (
            f"stationary vector has {arr.size} entries but the "
            f"certificate covers {int(expected)}"
        )
    for check in _vector_checks(arr, tol):
        if not check.passed:
            value = "" if check.value is None else f" ({check.value:.3e})"
            return f"recomputed check {check.name!r} failed{value}"
    return None
