"""Sharded drivers for the pipeline's two parallel sections.

:mod:`repro.robust.pool` supplies the fault-tolerant worker machinery;
this module supplies the *algorithms* that fan out over it, in a way
that keeps parallel results bitwise-identical to serial ones:

* :func:`sharded_reachable_states` — level-synchronous BFS.  Each round
  shards the sorted frontier contiguously across workers; every worker
  returns the sorted successor set of its shard; the parent merges in
  task order against the ``seen`` set.  The reachable set of a model is
  scheduling-independent (BFS computes a closure), and the returned
  value is ``sorted(seen)``, so any set-equal exploration yields the
  identical state list.
* :func:`parallel_refinement_rounds` — the parallel form of the paper's
  ``CompLumpingLevel`` (Figure 3a).  Each round runs ``CompLumping``
  for *every* node of the level against the same input partition and
  meets the results in sorted node order.  Both the serial sequential
  pass and this parallel meet-iteration converge to the unique coarsest
  partition refining the initial one that is stable for all node
  splitters (each step refines, never past the fixpoint, and
  termination means stability for every node), and downstream consumers
  read partitions only through canonical queries (blocks ordered by
  smallest member), so the lumped model is bitwise-identical either way.

Budget accounting mirrors the serial loops where it is deterministic:
the *parent* charges one iteration per round and checks the state
budget per discovered state (the same counts as the serial BFS), while
workers check only the wall clock (their forked budget counters are
scheduling-dependent and must not drive call-counted fault schedules).
Checkpoints reuse the serial engines' payload formats under the same
keys, so a run killed in parallel mode can resume serially and vice
versa.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Set, Tuple

from repro.errors import LumpingError, StateSpaceError
from repro.robust import budgets
from repro.robust.budgets import BudgetExceeded
from repro.robust.pool import ParallelConfig, WorkerPool


def shard_items(items: Sequence, shard_count: int) -> List[list]:
    """Split ``items`` into at most ``shard_count`` contiguous, non-empty
    shards of near-equal size (fewer when there are fewer items)."""
    total = len(items)
    count = min(shard_count, total)
    if count <= 0:
        return []
    base, extra = divmod(total, count)
    shards = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        shards.append(list(items[start : start + size]))
        start += size
    return shards


def sharded_reachable_states(
    model: Any,
    seen: Set[Tuple[int, ...]],
    frontier: Sequence[Tuple[int, ...]],
    config: ParallelConfig,
    *,
    ck: Optional[Any] = None,
    key: Optional[str] = None,
    guard: Optional[dict] = None,
    max_states: Optional[int] = None,
    stage: str = "reachability",
) -> List[Tuple[int, ...]]:
    """Parallel BFS closure of ``seen``/``frontier``; returns the sorted
    reachable states.

    ``seen`` and ``frontier`` are the caller's (possibly
    checkpoint-resumed) exploration state.  When ``ck``/``key``/``guard``
    are given, partial progress is snapshotted with the same
    ``{"seen", "frontier"}`` payload the serial engine writes — on a
    periodic tick and, as in serial, before a :class:`BudgetExceeded`
    propagates.
    """

    def expand(shard: List[Tuple[int, ...]]) -> List[Tuple[int, ...]]:
        successors: Set[Tuple[int, ...]] = set()
        for state in shard:
            # Worker side: wall-clock check only (pulses the worker's
            # heartbeat); counted budget charges stay in the parent so
            # their call numbering matches the serial engine.
            budgets.check_time(stage=stage)
            for target, _rate in model.successors(state):
                successors.add(target)
        return sorted(successors)

    seen = set(seen)
    frontier = sorted(frontier)
    # Kept consistent at every budget hook: when the budget fires
    # mid-merge, states already added to ``seen`` this round would be
    # skipped by the resume's ``target not in seen`` test without ever
    # being expanded, losing anything reachable only through them — so
    # the snapshot frontier must include the round's partial
    # discoveries alongside the (idempotently re-expandable) input
    # frontier, mirroring the serial engine's ``frontier[position:] +
    # next_frontier`` save.
    discovered: Set[Tuple[int, ...]] = set()
    with WorkerPool(
        expand, config, report=config.report, label="reach"
    ) as pool:
        try:
            budgets.check_states(len(seen), stage=stage)
            while frontier:
                budgets.charge_iterations(1, stage=stage)
                merged = pool.run(shard_items(frontier, config.workers))
                discovered = set()
                for successors in merged:  # task order == frontier order
                    for target in successors:
                        if target not in seen:
                            seen.add(target)
                            discovered.add(target)
                            budgets.check_states(len(seen), stage=stage)
                            if (
                                max_states is not None
                                and len(seen) > max_states
                            ):
                                raise StateSpaceError(
                                    "state space exceeds "
                                    f"max_states={max_states}"
                                )
                frontier = sorted(discovered)
                if ck is not None and ck.tick(key):
                    ck.save(
                        key,
                        {"seen": sorted(seen), "frontier": frontier},
                        guard=guard,
                    )
        except BudgetExceeded:
            if ck is not None:
                remaining = set(frontier) | discovered
                ck.save(
                    key,
                    {"seen": sorted(seen), "frontier": sorted(remaining)},
                    guard=guard,
                )
            raise
    return sorted(seen)


def parallel_refinement_rounds(
    size: int,
    nodes: Sequence[Tuple[int, object]],
    splitter_for: Callable[[object], object],
    initial: Any,
    strategy: str,
    max_rounds: Optional[int],
    config: ParallelConfig,
    *,
    level_label: str = "",
) -> Any:
    """Parallel fixed-point of per-node ``CompLumping`` over one level.

    ``nodes`` is the level's sorted ``(index, node)`` list and
    ``splitter_for`` the per-node splitter factory, both captured by the
    forked workers by closure (nothing model-sized crosses a pipe; each
    task ships only the current partition's class vector).  Returns the
    coarsest partition refining ``initial`` stable for every node —
    canonically equal to the serial ``comp_lumping_level`` result.

    Per-task checkpoint scopes (``shard-<level>r<round>n<pos>``) keep
    the workers' inner ``comp_lumping`` snapshots under distinct keys,
    exercising the checkpoint directory's concurrent-writer protocol.
    """
    # Imported lazily: refinement sits above the robust layer, and this
    # driver is reached only from lumping code that already imports it.
    from repro.lumping.refinement import comp_lumping
    from repro.partitions import Partition

    def refine_node(payload: Any) -> Any:
        position, class_vector = payload
        partition = Partition.from_labels(class_vector)
        _index, node = nodes[position]
        refined = comp_lumping(
            size, splitter_for(node), partition, strategy=strategy
        )
        return refined.state_class_vector()

    partition = initial.copy()
    if not nodes:
        return partition
    rounds = 0
    label = f"lump{level_label}" if level_label else "lump"
    with WorkerPool(
        refine_node, config, report=config.report, label=label
    ) as pool:
        while True:
            blocks_before = len(partition)
            budgets.charge_iterations(1, stage="lumping")
            class_vector = partition.state_class_vector()
            tasks = [(pos, class_vector) for pos in range(len(nodes))]
            scopes = [
                f"shard-{level_label}r{rounds}n{pos}"
                for pos in range(len(nodes))
            ]
            merged = pool.run(tasks, scopes=scopes)
            for refined_vector in merged:  # sorted node order
                partition = partition.meet(
                    Partition.from_labels(refined_vector)
                )
            rounds += 1
            if len(partition) == blocks_before:
                return partition
            if max_rounds is not None and rounds >= max_rounds:
                raise LumpingError(
                    f"comp_lumping_level exceeded {max_rounds} rounds"
                )
