"""Solver and reachability-engine fallback chains.

:func:`solve_with_fallback` walks a chain of steady-state methods
(``direct -> gauss-seidel -> jacobi -> power`` by default), warm-starting
each iterative rung from the previous rung's last iterate when available,
and — if the whole chain fails at the requested tolerance — retries the
iterative rungs once with a relaxed tolerance (the single adaptive
degradation step motivated by approximate-lumping work such as Erreygers
& De Bock).  The returned :class:`FallbackSolution` records which method
won plus per-attempt diagnostics.

:func:`reachable_with_fallback` does the same for state-space generation
(``mdd -> bfs`` by default): if the symbolic engine fails, the explicit
engine produces the identical state space, just with different cost.

Both propagate :class:`~repro.robust.budgets.BudgetExceeded` immediately:
a budget is the caller's intent to *stop*, not something to route around.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError, SolverError, StateSpaceError
from repro.markov.ctmc import CTMC
from repro.markov.solvers import _METHODS, SteadyStateResult
from repro.robust.budgets import BudgetExceeded
from repro.statespace.reachability import (
    ReachabilityResult,
    reachable_bfs,
    reachable_mdd,
    reachable_saturation,
)

#: The default solver chain: exact first, then decreasingly demanding
#: iterative methods.
DEFAULT_SOLVER_CHAIN: Tuple[str, ...] = (
    "direct",
    "gauss-seidel",
    "jacobi",
    "power",
)

#: Methods that iterate (accept ``tol``/``max_iterations``/``x0``).
#: Shared with the certificate escalation ladder
#: (:mod:`repro.robust.certify`), which needs to know which rungs take a
#: tolerance.
ITERATIVE_METHODS = frozenset({"gauss-seidel", "jacobi", "power"})

_ITERATIVE = ITERATIVE_METHODS


@dataclass
class SolveAttempt:
    """Diagnostics of one rung of the solver chain."""

    method: str
    succeeded: bool
    seconds: float
    tolerance: Optional[float]
    iterations: Optional[int] = None
    residual: Optional[float] = None
    error: Optional[str] = None
    warm_started: bool = False


@dataclass
class FallbackSolution:
    """A steady-state solution plus the path that produced it."""

    result: SteadyStateResult
    attempts: List[SolveAttempt] = field(default_factory=list)
    requested_method: str = ""
    relaxed_tolerance: Optional[float] = None

    @property
    def method(self) -> str:
        """The method that finally converged."""
        return self.result.method

    @property
    def distribution(self) -> np.ndarray:
        """The stationary distribution."""
        return self.result.distribution

    @property
    def degraded(self) -> bool:
        """Whether anything other than the first rung at the requested
        tolerance produced the answer."""
        return (
            self.method != self.requested_method
            or self.relaxed_tolerance is not None
        )


def solve_with_fallback(
    ctmc: CTMC,
    chain: Sequence[str] = DEFAULT_SOLVER_CHAIN,
    tol: float = 1e-12,
    relaxation_factor: float = 1e3,
    per_method: Optional[Dict[str, dict]] = None,
    reuse_partial: bool = True,
) -> FallbackSolution:
    """Try each solver in ``chain`` until one converges.

    Parameters
    ----------
    ctmc:
        The chain to solve (must be irreducible, as for the raw solvers).
    chain:
        Method names in preference order (see
        :data:`DEFAULT_SOLVER_CHAIN`).
    tol:
        Convergence tolerance for the iterative rungs.
    relaxation_factor:
        If every rung fails at ``tol``, the iterative rungs are retried
        once at ``tol * relaxation_factor`` — the single adaptive
        tolerance-relaxation step.  Set to ``None`` (or ``<= 1``) to
        disable the relaxed round.
    per_method:
        Optional per-method keyword overrides, e.g.
        ``{"power": {"max_iterations": 500}}``.
    reuse_partial:
        Warm-start each iterative rung from the previous failure's
        ``last_iterate`` (carried on :class:`~repro.errors.SolverError`)
        instead of restarting from the uniform vector.

    Returns
    -------
    A :class:`FallbackSolution`; raises :class:`~repro.errors.SolverError`
    (with the attempt list attached as ``attempts``) if every rung of
    both rounds fails.  :class:`~repro.robust.budgets.BudgetExceeded`
    propagates immediately without trying further rungs.
    """
    if not chain:
        raise SolverError("solver fallback chain is empty")
    for method in chain:
        if method not in _METHODS:
            raise SolverError(
                f"unknown method {method!r} in fallback chain; "
                f"choose from {sorted(_METHODS)}"
            )
    per_method = per_method or {}
    attempts: List[SolveAttempt] = []
    warm_start: Optional[np.ndarray] = None

    rounds: List[Tuple[Optional[float], Sequence[str]]] = [(tol, chain)]
    if relaxation_factor is not None and relaxation_factor > 1:
        relaxed = [m for m in chain if m in _ITERATIVE]
        if relaxed:
            rounds.append((tol * relaxation_factor, relaxed))

    for round_index, (round_tol, round_chain) in enumerate(rounds):
        for method in round_chain:
            kwargs = dict(per_method.get(method, {}))
            warm = None
            if method in _ITERATIVE:
                kwargs.setdefault("tol", round_tol)
                if reuse_partial and warm_start is not None:
                    warm = warm_start
                    kwargs.setdefault("x0", warm)
            start = time.perf_counter()
            try:
                result = _METHODS[method](ctmc, **kwargs)
            except BudgetExceeded:
                raise
            except SolverError as exc:
                attempts.append(
                    SolveAttempt(
                        method=method,
                        succeeded=False,
                        seconds=time.perf_counter() - start,
                        tolerance=round_tol if method in _ITERATIVE else None,
                        iterations=exc.iterations,
                        residual=exc.residual,
                        error=str(exc),
                        warm_started=warm is not None,
                    )
                )
                if reuse_partial and exc.last_iterate is not None:
                    warm_start = exc.last_iterate
                continue
            attempts.append(
                SolveAttempt(
                    method=method,
                    succeeded=True,
                    seconds=time.perf_counter() - start,
                    tolerance=round_tol if method in _ITERATIVE else None,
                    iterations=result.iterations,
                    residual=result.residual,
                    warm_started=warm is not None,
                )
            )
            return FallbackSolution(
                result=result,
                attempts=attempts,
                requested_method=chain[0],
                relaxed_tolerance=round_tol if round_index > 0 else None,
            )

    summary = "; ".join(
        f"{a.method}: {a.error}" for a in attempts if not a.succeeded
    )
    error = SolverError(
        f"all {len(attempts)} fallback attempts failed ({summary})"
    )
    error.attempts = attempts
    raise error


_ENGINES = {
    "mdd": reachable_mdd,
    "bfs": reachable_bfs,
    "saturation": reachable_saturation,
}

#: The default engine chain: symbolic first, explicit as the safety net.
DEFAULT_ENGINE_CHAIN: Tuple[str, ...] = ("mdd", "bfs")


@dataclass
class EngineAttempt:
    """Diagnostics of one reachability-engine attempt."""

    engine: str
    succeeded: bool
    seconds: float
    error: Optional[str] = None


@dataclass
class EngineFallbackResult:
    """A reachable state space plus the engine attempts that led to it."""

    result: ReachabilityResult
    attempts: List[EngineAttempt] = field(default_factory=list)
    requested_engine: str = ""

    @property
    def engine(self) -> str:
        """The engine that produced the state space."""
        return self.result.engine

    @property
    def degraded(self) -> bool:
        """Whether a non-preferred engine had to be used."""
        return self.engine != self.requested_engine


def reachable_with_fallback(
    model: Any,
    engines: Sequence[str] = DEFAULT_ENGINE_CHAIN,
    **engine_kwargs: Any,
) -> EngineFallbackResult:
    """Generate the reachable state space, falling back across engines.

    Both engines compute the same set, so falling from ``mdd`` to ``bfs``
    loses no precision — only the symbolic representation.  Engine
    failures (any :class:`~repro.errors.ReproError` except
    :class:`~repro.robust.budgets.BudgetExceeded`, plus ``MemoryError``)
    trigger the next engine; budget exhaustion propagates.
    """
    if not engines:
        raise StateSpaceError("reachability engine chain is empty")
    for engine in engines:
        if engine not in _ENGINES:
            raise StateSpaceError(
                f"unknown engine {engine!r} in fallback chain; "
                f"choose from {sorted(_ENGINES)}"
            )
    attempts: List[EngineAttempt] = []
    for engine in engines:
        start = time.perf_counter()
        try:
            result = _ENGINES[engine](model, **engine_kwargs)
        except BudgetExceeded:
            raise
        except (ReproError, MemoryError) as exc:
            attempts.append(
                EngineAttempt(
                    engine=engine,
                    succeeded=False,
                    seconds=time.perf_counter() - start,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        attempts.append(
            EngineAttempt(
                engine=engine,
                succeeded=True,
                seconds=time.perf_counter() - start,
            )
        )
        return EngineFallbackResult(
            result=result, attempts=attempts, requested_engine=engines[0]
        )

    summary = "; ".join(
        f"{a.engine}: {a.error}" for a in attempts if not a.succeeded
    )
    error = StateSpaceError(
        f"all {len(attempts)} reachability engines failed ({summary})"
    )
    error.attempts = attempts
    raise error
