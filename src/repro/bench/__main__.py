"""Command-line Table-1 regeneration.

Usage::

    python -m repro.bench --jobs 1,2 [--cube-dim 3] [--kind ordinary]
                          [--engine bfs|mdd] [--output table1.txt]
                          [--parallel N] [--emit-json [PATH]]

Prints the paper's three-part Table 1 for the requested J values.

``--parallel N`` fans reachability and per-level refinement out to a
fault-tolerant pool of N forked workers (:mod:`repro.robust.pool`); the
table is bitwise-identical to the serial one.  ``--emit-json`` runs each
J both serially and with ``--parallel`` and writes the rows plus the
wall-clock comparison (and the host's CPU count, for honest reading of
the speedup) to ``BENCH_parallel.json``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import sys
import time

from repro.bench.table1 import render_table1, run_table1_row
from repro.models import TandemParams


def _comparable(row) -> dict:
    """A Table1Row as a dict without its wall-clock fields, for checking
    that serial and parallel runs produced the same table."""
    data = dataclasses.asdict(row)
    data.pop("generation_seconds")
    data.pop("lump_seconds")
    return data


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's Table 1 for the tandem system.",
    )
    parser.add_argument(
        "--jobs",
        default="1",
        help="comma-separated J values (default: 1; the paper uses 1,2,3)",
    )
    parser.add_argument(
        "--cube-dim",
        type=int,
        default=3,
        help="hypercube dimension (default 3 = 8 servers, as in the paper)",
    )
    parser.add_argument(
        "--msmq-servers", type=int, default=3, help="MSMQ servers (default 3)"
    )
    parser.add_argument(
        "--msmq-queues", type=int, default=4, help="MSMQ queues (default 4)"
    )
    parser.add_argument(
        "--kind",
        choices=["ordinary", "exact"],
        default="ordinary",
        help="lumpability kind (default ordinary, as in the paper)",
    )
    parser.add_argument(
        "--engine",
        choices=["bfs", "mdd"],
        default="bfs",
        help="reachability engine (default bfs)",
    )
    parser.add_argument(
        "--symbolic",
        action="store_true",
        help="use the fully symbolic pipeline (MDD saturation + level "
        "mapping; never enumerates states — required for J >= 3 at the "
        "paper's configuration)",
    )
    parser.add_argument(
        "--robust",
        action="store_true",
        help="use the resilient pipeline (engine + solver fallback chains, "
        "graceful lumping degradation) and print a run report per J; "
        "combine with REPRO_FAULTS / --time-budget to exercise degraded "
        "paths",
    )
    parser.add_argument(
        "--supervised",
        action="store_true",
        help="run each robust J in a watchdog-supervised child process "
        "with automatic restart from checkpoint on crash/hang/OOM and "
        "progressive degradation (implies --robust)",
    )
    parser.add_argument(
        "--max-restarts",
        type=int,
        help="supervised: restarts before the crash-loop breaker trips "
        "(default 4)",
    )
    parser.add_argument(
        "--mem-limit",
        type=int,
        metavar="BYTES",
        help="supervised: hard RLIMIT_AS for each child process",
    )
    parser.add_argument(
        "--heartbeat-timeout",
        type=float,
        metavar="SECONDS",
        help="supervised: heartbeat staleness before the watchdog "
        "declares the child hung and kills it (default 30)",
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        help="wall-clock budget in seconds for each robust J run",
    )
    parser.add_argument(
        "--iteration-budget",
        type=int,
        help="iteration budget for each robust J run (deterministic, so "
        "useful for exercising checkpoint/resume in CI)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        help="directory for crash-safe checkpoints of each robust J run "
        "(requires --robust); a budget-stopped or killed run can then be "
        "continued with --resume",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the snapshots in --checkpoint-dir instead of "
        "starting fresh (corrupt or stale snapshots fall back to a fresh "
        "start, recorded in the run report)",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        metavar="N",
        help="fan reachability and refinement out to N fault-tolerant "
        "worker processes (N >= 2); results are bitwise-identical to "
        "the serial run; widths the host cannot support (one core, or "
        "N > cores) auto-degrade to serial",
    )
    parser.add_argument(
        "--parallel-force",
        action="store_true",
        help="engage the worker pool even when the host has too few "
        "cores for --parallel N to win (disables the insufficient-cores "
        "auto-degrade; used by fault-injection smoke jobs)",
    )
    parser.add_argument(
        "--emit-json",
        nargs="?",
        const="BENCH_parallel.json",
        metavar="PATH",
        help="run each J serially AND with --parallel, then write the "
        "table rows plus the serial-vs-parallel wall-clock comparison "
        "to PATH (default BENCH_parallel.json); requires --parallel",
    )
    parser.add_argument(
        "--output", help="also write the rendered table to this file"
    )
    args = parser.parse_args(argv)
    if args.supervised:
        args.robust = True
    elif (
        args.max_restarts is not None
        or args.mem_limit is not None
        or args.heartbeat_timeout is not None
    ):
        parser.error(
            "--max-restarts/--mem-limit/--heartbeat-timeout require "
            "--supervised"
        )
    if args.max_restarts is not None and args.max_restarts < 0:
        parser.error("--max-restarts must be >= 0")
    if args.mem_limit is not None and args.mem_limit <= 0:
        parser.error("--mem-limit must be positive")
    if args.heartbeat_timeout is not None and args.heartbeat_timeout <= 0:
        parser.error("--heartbeat-timeout must be positive")
    if args.checkpoint_dir and not args.robust:
        parser.error("--checkpoint-dir requires --robust")
    if args.resume and not args.checkpoint_dir:
        parser.error("--resume requires --checkpoint-dir")
    if (
        args.iteration_budget is not None or args.time_budget is not None
    ) and not args.robust:
        parser.error("--time-budget/--iteration-budget require --robust")
    if args.parallel is not None and args.parallel < 2:
        parser.error("--parallel must be >= 2")
    if args.parallel is not None and args.symbolic:
        parser.error("--parallel is not supported with --symbolic")
    if args.parallel_force and args.parallel is None:
        parser.error("--parallel-force requires --parallel")
    parallel_arg = args.parallel
    if args.parallel_force:
        from repro.robust.pool import ParallelConfig

        # An explicit config bypasses the insufficient-cores degrade.
        parallel_arg = ParallelConfig(workers=args.parallel)
    if args.emit_json is not None:
        if args.parallel is None:
            parser.error("--emit-json requires --parallel")
        if args.robust or args.symbolic:
            parser.error(
                "--emit-json compares the plain pipeline; drop "
                "--robust/--symbolic"
            )

    rows = []
    reports = []
    json_rows = []
    for jobs in (int(x) for x in args.jobs.split(",")):
        params = TandemParams(
            jobs=jobs,
            cube_dim=args.cube_dim,
            msmq_servers=args.msmq_servers,
            msmq_queues=args.msmq_queues,
        )
        print(f"running J={jobs} ...", file=sys.stderr, flush=True)
        if args.robust:
            from repro.bench.table1 import run_table1_row_robust
            from repro.robust.budgets import Budget, BudgetExceeded
            from repro.robust.supervisor import CrashLoopError

            if args.time_budget is not None and args.time_budget <= 0:
                parser.error("--time-budget must be positive")
            if args.iteration_budget is not None and args.iteration_budget <= 0:
                parser.error("--iteration-budget must be positive")
            budget = None
            if args.time_budget is not None or args.iteration_budget is not None:
                budget = Budget(
                    wall_clock_seconds=args.time_budget,
                    max_iterations=args.iteration_budget,
                )
            engines = (
                ("mdd", "bfs") if args.engine == "mdd" else ("bfs", "mdd")
            )
            supervisor_config = None
            if args.supervised:
                from repro.robust.retry import RetryPolicy
                from repro.robust.supervisor import SupervisorConfig

                policy_kwargs = {}
                if args.max_restarts is not None:
                    policy_kwargs["max_restarts"] = args.max_restarts
                config_kwargs = {}
                if args.mem_limit is not None:
                    config_kwargs["mem_limit_bytes"] = args.mem_limit
                if args.heartbeat_timeout is not None:
                    config_kwargs["heartbeat_timeout_seconds"] = (
                        args.heartbeat_timeout
                    )
                supervisor_config = SupervisorConfig(
                    policy=RetryPolicy(**policy_kwargs), **config_kwargs
                )
            try:
                run = run_table1_row_robust(
                    jobs, params, engines=engines, kind=args.kind,
                    budget=budget,
                    checkpoint_dir=args.checkpoint_dir,
                    resume=args.resume,
                    supervised=args.supervised,
                    supervisor=supervisor_config,
                    parallel=parallel_arg,
                )
            except CrashLoopError as exc:
                # The circuit breaker tripped: emit the structured
                # diagnosis (machine-readable, one JSON object) plus the
                # merged per-attempt history, then fail loudly.
                print(f"J={jobs}: crash loop: {exc}", file=sys.stderr)
                print(
                    json.dumps(exc.diagnosis, indent=2), file=sys.stderr
                )
                print(f"J={jobs} {exc.report.render()}", file=sys.stderr)
                return 3
            except BudgetExceeded as exc:
                print(f"J={jobs}: budget exhausted: {exc}", file=sys.stderr)
                if args.checkpoint_dir:
                    print(
                        f"J={jobs}: progress checkpointed in "
                        f"{args.checkpoint_dir!r}; re-run with --resume "
                        "(and a larger budget) to continue",
                        file=sys.stderr,
                    )
                return 2
            rows.append(run.row)
            reports.append((jobs, run.report))
        elif args.symbolic:
            from repro.bench.table1 import run_table1_row_symbolic

            rows.append(
                run_table1_row_symbolic(jobs, params, kind=args.kind)
            )
        elif args.emit_json is not None:
            start = time.perf_counter()
            serial_row = run_table1_row(
                jobs, params, reach_engine=args.engine, kind=args.kind
            )
            serial_seconds = time.perf_counter() - start
            start = time.perf_counter()
            parallel_row = run_table1_row(
                jobs, params, reach_engine=args.engine, kind=args.kind,
                parallel=parallel_arg,
            )
            parallel_seconds = time.perf_counter() - start
            identical = _comparable(serial_row) == _comparable(parallel_row)
            if not identical:
                print(
                    f"J={jobs}: parallel table differs from serial",
                    file=sys.stderr,
                )
            json_rows.append(
                {
                    "jobs": jobs,
                    "serial_seconds": serial_seconds,
                    "parallel_seconds": parallel_seconds,
                    "speedup": serial_seconds / parallel_seconds,
                    "identical": identical,
                    "table1": dataclasses.asdict(parallel_row),
                }
            )
            rows.append(parallel_row)
        else:
            rows.append(
                run_table1_row(
                    jobs, params, reach_engine=args.engine, kind=args.kind,
                    parallel=parallel_arg,
                )
            )
    rendered = render_table1(rows)
    for jobs, run_report in reports:
        rendered += f"\n\nJ={jobs} {run_report.render()}"
    print(rendered)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
    if args.emit_json is not None:
        from repro.robust.pool import autodegrade_parallel
        from repro.robust.report import RunReport

        probe = RunReport()
        engaged = autodegrade_parallel(parallel_arg, probe) is not None
        degrade_events = probe.pool_events_of_kind("pool-degraded")
        payload = {
            "benchmark": "table1 serial vs parallel",
            "parallel_workers": args.parallel,
            "pool_engaged": engaged,
            "degraded": (
                degrade_events[0].detail if degrade_events else None
            ),
            "host": {
                "cpu_count": os.cpu_count(),
                "platform": platform.platform(),
                "python": platform.python_version(),
            },
            "pipeline": {
                "engine": args.engine,
                "kind": args.kind,
                "cube_dim": args.cube_dim,
                "msmq_servers": args.msmq_servers,
                "msmq_queues": args.msmq_queues,
            },
            "rows": json_rows,
        }
        with open(args.emit_json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.emit_json}", file=sys.stderr)
        if not all(entry["identical"] for entry in json_rows):
            return 4
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
