"""Command-line Table-1 regeneration.

Usage::

    python -m repro.bench --jobs 1,2 [--cube-dim 3] [--kind ordinary]
                          [--engine bfs|mdd] [--output table1.txt]

Prints the paper's three-part Table 1 for the requested J values.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.table1 import render_table1, run_table1_row
from repro.models import TandemParams


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's Table 1 for the tandem system.",
    )
    parser.add_argument(
        "--jobs",
        default="1",
        help="comma-separated J values (default: 1; the paper uses 1,2,3)",
    )
    parser.add_argument(
        "--cube-dim",
        type=int,
        default=3,
        help="hypercube dimension (default 3 = 8 servers, as in the paper)",
    )
    parser.add_argument(
        "--msmq-servers", type=int, default=3, help="MSMQ servers (default 3)"
    )
    parser.add_argument(
        "--msmq-queues", type=int, default=4, help="MSMQ queues (default 4)"
    )
    parser.add_argument(
        "--kind",
        choices=["ordinary", "exact"],
        default="ordinary",
        help="lumpability kind (default ordinary, as in the paper)",
    )
    parser.add_argument(
        "--engine",
        choices=["bfs", "mdd"],
        default="bfs",
        help="reachability engine (default bfs)",
    )
    parser.add_argument(
        "--symbolic",
        action="store_true",
        help="use the fully symbolic pipeline (MDD saturation + level "
        "mapping; never enumerates states — required for J >= 3 at the "
        "paper's configuration)",
    )
    parser.add_argument(
        "--output", help="also write the rendered table to this file"
    )
    args = parser.parse_args(argv)

    rows = []
    for jobs in (int(x) for x in args.jobs.split(",")):
        params = TandemParams(
            jobs=jobs,
            cube_dim=args.cube_dim,
            msmq_servers=args.msmq_servers,
            msmq_queues=args.msmq_queues,
        )
        print(f"running J={jobs} ...", file=sys.stderr, flush=True)
        if args.symbolic:
            from repro.bench.table1 import run_table1_row_symbolic

            rows.append(
                run_table1_row_symbolic(jobs, params, kind=args.kind)
            )
        else:
            rows.append(
                run_table1_row(
                    jobs, params, reach_engine=args.engine, kind=args.kind
                )
            )
    rendered = render_table1(rows)
    print(rendered)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
