"""Regeneration of the paper's Table 1.

For each job count ``J`` the harness runs the same pipeline the paper
describes — build the tandem model, generate the state space, construct the
MD, run compositional (ordinary) lumping — and collects exactly the
columns Table 1 reports:

* upper part: unlumped state-space sizes (overall and per level) and the
  number of MD nodes per level,
* middle part: lumped sizes and the reduction factors (overall, level 2,
  level 3),
* lower part: state-space generation time, unlumped MD memory, lumping
  time, lumped MD memory.

Absolute values differ from the paper (different host, pure Python, and
rates/encodings the paper does not specify); the *shape* — large
multiplicative reductions, lump time well under generation time, roughly
an order of magnitude less MD memory — is the reproduction target and is
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.lumping import compositional_lump
from repro.matrixdiagram import md_stats
from repro.models import TandemParams, build_tandem, tandem_md_model
from repro.models.tandem import projected_event_model
from repro.robust.budgets import Budget
from repro.robust.checkpoint import scoped as checkpoint_scoped
from repro.robust.pool import autodegrade_parallel
from repro.robust.report import RunReport
from repro.statespace import reachable_bfs, reachable_mdd
from repro.util import Stopwatch, Table, format_bytes, format_seconds


@dataclass
class Table1Row:
    """One ``J`` row of (our) Table 1."""

    jobs: int
    unlumped_overall: int
    unlumped_level_sizes: List[int]
    md_nodes_per_level: List[int]
    lumped_overall: int
    lumped_level_sizes: List[int]
    generation_seconds: float
    md_memory_bytes: int
    lump_seconds: float
    lumped_md_memory_bytes: int

    @property
    def overall_reduction(self) -> float:
        """Unlumped states per lumped state."""
        return self.unlumped_overall / max(1, self.lumped_overall)

    def level_reduction(self, level: int) -> float:
        """Reduction factor of one level (1-based)."""
        return self.unlumped_level_sizes[level - 1] / max(
            1, self.lumped_level_sizes[level - 1]
        )


def run_table1_row(
    jobs: int,
    params: Optional[TandemParams] = None,
    reach_engine: str = "bfs",
    kind: str = "ordinary",
    parallel=None,
) -> Table1Row:
    """Run the full pipeline for one ``J`` and collect the row.

    ``parallel`` (an int >= 2 or a
    :class:`~repro.robust.pool.ParallelConfig`) fans reachability and
    per-level refinement out to a fault-tolerant worker pool; the row is
    bitwise-identical to the serial one.  An int width the host cannot
    support (one core, or N > cores) silently degrades to serial; pass
    a config to force the pool.
    """
    parallel = autodegrade_parallel(parallel)
    if params is None:
        params = TandemParams(jobs=jobs)
    elif params.jobs != jobs:
        raise ValueError("params.jobs disagrees with the jobs argument")
    watch = Stopwatch()
    with watch.phase("generation"):
        compiled = build_tandem(params)
        if reach_engine == "bfs":
            reach = reachable_bfs(compiled.event_model, parallel=parallel)
        elif reach_engine == "mdd":
            reach = reachable_mdd(compiled.event_model, parallel=parallel)
        else:
            raise ValueError(f"unknown reach engine {reach_engine!r}")
        event_model = projected_event_model(compiled, reach)
        if event_model.level_sizes() != compiled.event_model.level_sizes():
            # The projection shrank some level; recompute the reachable set
            # in the projected coordinates (labels are preserved, so the
            # result is the same set).
            reach = reachable_bfs(event_model, parallel=parallel)
        else:
            reach.model = event_model
        model = tandem_md_model(event_model, params, reachable=reach)
    unlumped_stats = md_stats(model.md)

    with watch.phase("lumping"):
        result = compositional_lump(model, kind, parallel=parallel)
    lumped_stats = md_stats(result.lumped.md)

    return Table1Row(
        jobs=jobs,
        unlumped_overall=reach.num_states,
        unlumped_level_sizes=list(reach.level_sizes()),
        md_nodes_per_level=list(unlumped_stats.nodes_per_level),
        lumped_overall=len(result.lumped.reachable),
        lumped_level_sizes=list(result.lumped.md.level_sizes),
        generation_seconds=watch.elapsed("generation"),
        md_memory_bytes=unlumped_stats.memory_bytes,
        lump_seconds=watch.elapsed("lumping"),
        lumped_md_memory_bytes=lumped_stats.memory_bytes,
    )


def run_table1_row_symbolic(
    jobs: int,
    params: Optional[TandemParams] = None,
    strategy: str = "saturation",
    kind: str = "ordinary",
) -> Table1Row:
    """Fully symbolic Table-1 row: the reachable set is never enumerated.

    Uses MDD reachability (saturation by default) for the counts and
    supports, and MDD level-mapping for the lumped state count, so the
    pipeline scales to state spaces far beyond what explicit enumeration
    can hold — the regime the paper's MD representation targets.
    """
    from repro.statespace.events import project_event_model
    from repro.statespace.reachability import symbolic_reachability

    if params is None:
        params = TandemParams(jobs=jobs)
    elif params.jobs != jobs:
        raise ValueError("params.jobs disagrees with the jobs argument")
    watch = Stopwatch()
    with watch.phase("generation"):
        compiled = build_tandem(params)
        symbolic = symbolic_reachability(
            compiled.event_model, strategy=strategy
        )
        supports = symbolic.level_supports()
        event_model = project_event_model(compiled.event_model, supports)
        model = tandem_md_model(event_model, params)
    unlumped_stats = md_stats(model.md)

    with watch.phase("lumping"):
        result = compositional_lump(model, kind)
    lumped_stats = md_stats(result.lumped.md)

    # Lumped reachable count: map each original substate to its class
    # (composing the support projection with the per-level partition).
    class_vectors = [
        partition.state_class_vector() for partition in result.partitions
    ]
    mappings = []
    for level, support in enumerate(supports):
        position = {substate: i for i, substate in enumerate(support)}
        mappings.append(
            {
                substate: class_vectors[level][position[substate]]
                for substate in support
            }
        )
    lumped_overall = symbolic.mapped_count(
        mappings, result.lumped.md.level_sizes
    )

    return Table1Row(
        jobs=jobs,
        unlumped_overall=symbolic.num_states,
        unlumped_level_sizes=[len(s) for s in supports],
        md_nodes_per_level=list(unlumped_stats.nodes_per_level),
        lumped_overall=lumped_overall,
        lumped_level_sizes=list(result.lumped.md.level_sizes),
        generation_seconds=watch.elapsed("generation"),
        md_memory_bytes=unlumped_stats.memory_bytes,
        lump_seconds=watch.elapsed("lumping"),
        lumped_md_memory_bytes=lumped_stats.memory_bytes,
    )


@dataclass
class RobustTable1Run:
    """A Table-1 row produced by the resilient pipeline.

    Besides the row itself, carries the steady-state solution of the
    lumped chain and the :class:`~repro.robust.report.RunReport` saying
    which engines/solvers/levels degraded along the way.
    """

    row: Table1Row
    report: RunReport
    stationary: np.ndarray
    solve_method: str
    reach_engine: str


def run_table1_row_robust(
    jobs: int,
    params: Optional[TandemParams] = None,
    engines: Sequence[str] = ("mdd", "bfs"),
    kind: str = "ordinary",
    solver_chain: Optional[Sequence[str]] = None,
    budget: Optional[Budget] = None,
    report: Optional[RunReport] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    checkpoint_interval: Optional[int] = None,
    checkpoint_keep_last: Optional[int] = None,
    lumping_degrade: bool = True,
    supervised: bool = False,
    supervisor=None,
    parallel=None,
) -> RobustTable1Run:
    """The Table-1 pipeline with fallbacks, degradation, and a report.

    Runs generation -> lumping -> steady-state solve end to end:
    reachability falls back across ``engines`` (default MDD -> BFS),
    lumping skips levels that fail (identity partition; disable with
    ``lumping_degrade=False``), and the solve walks the solver fallback
    chain.  Every degradation is recorded in the returned report, so the
    driver can print what degraded and why.

    With ``checkpoint_dir`` set, the reachability/refinement/solver loops
    write crash-safe snapshots (see :mod:`repro.robust.checkpoint`);
    ``resume=True`` continues a killed or budget-stopped run from them,
    ``checkpoint_interval`` overrides the snapshot cadence, and
    ``checkpoint_keep_last`` garbage-collects old snapshots.

    With ``supervised=True`` the whole pipeline runs in a
    watchdog-supervised child process, restarted from the latest
    checkpoint on crash/hang/OOM with progressive degradation — see
    :mod:`repro.robust.supervisor`.  ``supervisor`` is an optional
    :class:`~repro.robust.supervisor.SupervisorConfig`.

    With ``parallel=N`` reachability and per-level refinement fan out to
    a fault-tolerant worker pool whose crash/retry/reassignment events
    land in the report; the row stays bitwise-identical to serial.
    """
    if supervised:
        return _run_table1_row_supervised(
            jobs,
            params=params,
            engines=engines,
            kind=kind,
            solver_chain=solver_chain,
            budget=budget,
            report=report,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            config=supervisor,
            parallel=parallel,
        )
    from repro.robust.fallback import (
        DEFAULT_SOLVER_CHAIN,
        reachable_with_fallback,
        solve_with_fallback,
    )

    if params is None:
        params = TandemParams(jobs=jobs)
    elif params.jobs != jobs:
        raise ValueError("params.jobs disagrees with the jobs argument")
    if report is None:
        report = RunReport()
    cfg = autodegrade_parallel(parallel, report)
    if cfg is not None and cfg.report is None:
        cfg.report = report
    if solver_chain is None:
        solver_chain = DEFAULT_SOLVER_CHAIN
    ck = None
    if checkpoint_dir is not None:
        from repro.robust.checkpoint import Checkpointer

        ck_kwargs = {}
        if checkpoint_interval is not None:
            ck_kwargs["interval_iterations"] = checkpoint_interval
        ck = Checkpointer(
            checkpoint_dir,
            resume=resume,
            fingerprint=(
                f"table1 jobs={jobs} kind={kind} params={params}"
            ),
            report=report,
            keep_last=checkpoint_keep_last,
            **ck_kwargs,
        )
    scope = budget if budget is not None else nullcontext()
    with scope, (ck if ck is not None else nullcontext()):
        with report.stage("generation") as stage, checkpoint_scoped(
            "generation"
        ):
            compiled = build_tandem(params)
            engine_run = reachable_with_fallback(
                compiled.event_model, engines=engines, parallel=cfg
            )
            for attempt in engine_run.attempts:
                report.record_attempt(
                    stage="generation",
                    name=attempt.engine,
                    succeeded=attempt.succeeded,
                    seconds=attempt.seconds,
                    error=attempt.error,
                )
            if engine_run.degraded:
                stage.status = "degraded"
                stage.detail = f"reachability via {engine_run.engine!r}"
                report.record_fallback(
                    stage="generation",
                    requested=engine_run.requested_engine,
                    used=engine_run.engine,
                    reason="; ".join(
                        a.error for a in engine_run.attempts if a.error
                    )
                    or "earlier engines failed",
                )
            reach = engine_run.result
            event_model = projected_event_model(compiled, reach)
            if (
                event_model.level_sizes()
                != compiled.event_model.level_sizes()
            ):
                # Same recomputation as run_table1_row: the projection
                # shrank a level, so re-derive the set in the projected
                # coordinates (BFS is always available here).  Its own
                # checkpoint scope keeps it from ever aliasing the first
                # BFS's snapshots.
                with checkpoint_scoped("projected"):
                    reach = reachable_bfs(event_model, parallel=cfg)
            else:
                reach.model = event_model
            model = tandem_md_model(event_model, params, reachable=reach)
        unlumped_stats = md_stats(model.md)

        with report.stage("lumping") as stage, checkpoint_scoped("lumping"):
            result = compositional_lump(
                model, kind, degrade=lumping_degrade, report=report,
                parallel=cfg,
            )
            if result.skipped_levels:
                stage.status = "degraded"
                stage.detail = (
                    f"{len(result.skipped_levels)} level(s) kept the "
                    "identity partition"
                )
        lumped_stats = md_stats(result.lumped.md)

        with report.stage("solve") as stage, checkpoint_scoped("solve"):
            lumped_ctmc = result.lumped.flat_ctmc()
            solution = solve_with_fallback(lumped_ctmc, chain=solver_chain)
            for attempt in solution.attempts:
                report.record_attempt(
                    stage="solve",
                    name=attempt.method,
                    succeeded=attempt.succeeded,
                    seconds=attempt.seconds,
                    error=attempt.error,
                    iterations=attempt.iterations,
                    residual=attempt.residual,
                )
            if solution.degraded:
                stage.status = "degraded"
                stage.detail = f"solved by {solution.method!r}"
                report.record_fallback(
                    stage="solve",
                    requested=solution.requested_method,
                    used=solution.method,
                    reason="; ".join(
                        a.error for a in solution.attempts if a.error
                    )
                    or "earlier attempts failed",
                )
    report.attach_budget(budget)

    row = Table1Row(
        jobs=jobs,
        unlumped_overall=reach.num_states,
        unlumped_level_sizes=list(reach.level_sizes()),
        md_nodes_per_level=list(unlumped_stats.nodes_per_level),
        lumped_overall=len(result.lumped.reachable),
        lumped_level_sizes=list(result.lumped.md.level_sizes),
        generation_seconds=report.stage_seconds("generation"),
        md_memory_bytes=unlumped_stats.memory_bytes,
        lump_seconds=report.stage_seconds("lumping"),
        lumped_md_memory_bytes=lumped_stats.memory_bytes,
    )
    return RobustTable1Run(
        row=row,
        report=report,
        stationary=solution.distribution,
        solve_method=solution.method,
        reach_engine=engine_run.engine,
    )


def _run_table1_row_supervised(
    jobs: int,
    params: Optional[TandemParams],
    engines: Sequence[str],
    kind: str,
    solver_chain: Optional[Sequence[str]],
    budget: Optional[Budget],
    report: Optional[RunReport],
    checkpoint_dir: Optional[str],
    resume: bool,
    config=None,
    parallel=None,
) -> RobustTable1Run:
    """The supervised variant: the robust Table-1 pipeline in a watched
    child process (see :mod:`repro.robust.supervisor`)."""
    from repro.robust.supervisor import run_supervised

    def _attempt(ctx) -> RobustTable1Run:
        level = ctx.degradation
        chain = (
            level.solver_chain if level.solver_chain is not None
            else solver_chain
        )
        return run_table1_row_robust(
            jobs,
            params=params,
            engines=engines,
            kind=kind,
            solver_chain=chain,
            budget=ctx.budget,
            report=ctx.report,
            checkpoint_dir=ctx.checkpoint_dir,
            resume=ctx.resume,
            checkpoint_interval=ctx.checkpoint_interval,
            checkpoint_keep_last=ctx.checkpoint_keep_last,
            lumping_degrade=level.lumping_degrade,
            parallel=parallel,
        )

    supervised = run_supervised(
        _attempt,
        checkpoint_dir=checkpoint_dir,
        config=config,
        budget=budget,
        report=report,
        resume=resume,
    )
    run: RobustTable1Run = supervised.result
    run.report = supervised.report
    return run


def render_table1(rows: List[Table1Row]) -> str:
    """Render rows in the paper's three-part Table 1 layout."""
    upper = Table(
        ["J", "overall", "S1", "S2", "S3", "N1", "N2", "N3"],
        title="Unlumped state-space sizes and MD nodes per level",
    )
    for row in rows:
        upper.add_row(
            [row.jobs, row.unlumped_overall]
            + row.unlumped_level_sizes
            + row.md_nodes_per_level
        )
    middle = Table(
        ["J", "overall", "S1", "S2", "S3", "red overall", "red l2", "red l3"],
        title="Lumped state-space sizes and reduction factors",
    )
    for row in rows:
        middle.add_row(
            [row.jobs, row.lumped_overall]
            + row.lumped_level_sizes
            + [
                f"{row.overall_reduction:.1f}",
                f"{row.level_reduction(2):.1f}",
                f"{row.level_reduction(3):.1f}",
            ]
        )
    lower = Table(
        ["J", "gen time", "MD space", "lump time", "lumped MD space"],
        title="Generation/lumping times and MD memory",
    )
    for row in rows:
        lower.add_row(
            [
                row.jobs,
                format_seconds(row.generation_seconds),
                format_bytes(row.md_memory_bytes),
                format_seconds(row.lump_seconds),
                format_bytes(row.lumped_md_memory_bytes),
            ]
        )
    return "\n\n".join([upper.render(), middle.render(), lower.render()])
