"""Benchmark harness reproducing the paper's evaluation artifacts."""

from repro.bench.table1 import Table1Row, render_table1, run_table1_row

__all__ = ["Table1Row", "render_table1", "run_table1_row"]
