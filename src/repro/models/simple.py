"""Small example models used by tests, examples and documentation.

* :func:`birth_death_ctmc` — an M/M/1/n queue as a flat CTMC (exact
  analytic stationary distribution available for solver tests).
* :func:`closed_tandem_join` — two stations passing jobs through shared
  pools: the smallest model that exercises the full SAN -> events -> MD
  pipeline.
* :func:`redundant_units_join` — ``n`` identical units failing and being
  repaired from a shared spare pool: a classic dependability model whose
  per-unit encoding is massively lumpable (the unit-permutation symmetry),
  making it the canonical demonstration of the compositional algorithm.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.markov.ctmc import CTMC
from repro.san.composition import Join
from repro.san.model import Activity, Case, Marking, Place, SANModel


def birth_death_ctmc(
    num_states: int, birth_rate: float = 1.0, death_rate: float = 2.0
) -> CTMC:
    """An M/M/1 queue truncated at ``num_states - 1`` jobs."""
    triples = []
    for i in range(num_states - 1):
        triples.append((i, i + 1, birth_rate))
        triples.append((i + 1, i, death_rate))
    return CTMC.from_transitions(
        num_states, triples, state_labels=list(range(num_states))
    )


def birth_death_stationary(
    num_states: int, birth_rate: float = 1.0, death_rate: float = 2.0
) -> np.ndarray:
    """The analytic stationary distribution of :func:`birth_death_ctmc`."""
    rho = birth_rate / death_rate
    weights = np.array([rho ** i for i in range(num_states)])
    return weights / weights.sum()


def _station(
    name: str,
    jobs: int,
    service_rate: float,
    pool_in: str,
    pool_out: str,
    pool_in_initial: int,
    pool_out_initial: int,
    intake_rate: float = 5.0,
) -> SANModel:
    queue = f"{name}_q"
    places = [
        Place(pool_in, jobs, pool_in_initial),
        Place(pool_out, jobs, pool_out_initial),
        Place(queue, jobs, 0),
    ]

    def intake_enabled(marking: Marking) -> float:
        if marking[pool_in] > 0 and marking[queue] < jobs:
            return intake_rate
        return 0.0

    def intake(marking: Marking) -> Marking:
        marking = dict(marking)
        marking[pool_in] -= 1
        marking[queue] += 1
        return marking

    def service_enabled(marking: Marking) -> float:
        return service_rate if marking[queue] > 0 else 0.0

    def serve(marking: Marking) -> Marking:
        marking = dict(marking)
        marking[queue] -= 1
        marking[pool_out] += 1
        return marking

    return SANModel(
        name,
        places,
        [
            Activity("intake", intake_enabled, [Case(1.0, intake)]),
            Activity("service", service_enabled, [Case(1.0, serve)]),
        ],
        local_invariant=lambda m: m[queue] <= jobs,
    )


def closed_tandem_join(
    jobs: int = 2,
    service_rate_a: float = 1.0,
    service_rate_b: float = 2.0,
) -> Join:
    """Two stations in a ring, ``jobs`` circulating jobs, shared pools."""
    a = _station("stationA", jobs, service_rate_a, "pool_a", "pool_b", jobs, 0)
    b = _station("stationB", jobs, service_rate_b, "pool_b", "pool_a", 0, jobs)
    return Join(
        [a, b],
        shared_invariant=lambda m: m["pool_a"] + m["pool_b"] <= jobs,
    )


def redundant_units_join(
    num_units: int = 4,
    spares: int = 2,
    failure_rate: float = 0.1,
    swap_rate: float = 5.0,
    repair_rate: float = 1.0,
) -> Join:
    """``num_units`` identical units sharing a pool of spares.

    A unit fails (rate ``failure_rate``); a failed unit grabs a spare from
    the shared pool (rate ``swap_rate``) and comes back up; the repair shop
    returns broken units to the spare pool (rate ``repair_rate`` each).
    The units are interchangeable, so the per-unit encoding (one state bit
    per unit) lumps down to the count of failed units.
    """
    spare_pool = "spares"
    shop = "shop"

    def unit_farm() -> SANModel:
        places = [
            Place(spare_pool, spares, spares),
            Place(shop, spares + num_units, 0),
        ]
        places += [Place(f"up{u}", 1, 1) for u in range(num_units)]
        activities: List[Activity] = []
        for u in range(num_units):

            def make_fail_rate(unit: int):
                def rate(marking: Marking) -> float:
                    return failure_rate if marking[f"up{unit}"] == 1 else 0.0

                return rate

            def make_fail(unit: int):
                def update(marking: Marking) -> Marking:
                    marking = dict(marking)
                    marking[f"up{unit}"] = 0
                    marking[shop] += 1
                    return marking

                return update

            def make_swap_rate(unit: int):
                def rate(marking: Marking) -> float:
                    if marking[f"up{unit}"] == 0 and marking[spare_pool] > 0:
                        return swap_rate
                    return 0.0

                return rate

            def make_swap(unit: int):
                def update(marking: Marking) -> Marking:
                    marking = dict(marking)
                    marking[f"up{unit}"] = 1
                    marking[spare_pool] -= 1
                    return marking

                return update

            activities.append(
                Activity(
                    f"fail{u}", make_fail_rate(u), [Case(1.0, make_fail(u))],
                    shared=True,
                )
            )
            activities.append(
                Activity(
                    f"swap{u}", make_swap_rate(u), [Case(1.0, make_swap(u))],
                    shared=True,
                )
            )
        return SANModel("units", places, activities)

    def repair_shop() -> SANModel:
        places = [
            Place(spare_pool, spares, spares),
            Place(shop, spares + num_units, 0),
            Place("busy", 1, 0),
        ]

        def start_rate(marking: Marking) -> float:
            if marking[shop] > 0 and marking["busy"] == 0:
                return 10.0 * repair_rate
            return 0.0

        def start(marking: Marking) -> Marking:
            marking = dict(marking)
            marking[shop] -= 1
            marking["busy"] = 1
            return marking

        def finish_rate(marking: Marking) -> float:
            if marking["busy"] == 1 and marking[spare_pool] < spares:
                return repair_rate
            return 0.0

        def finish(marking: Marking) -> Marking:
            marking = dict(marking)
            marking["busy"] = 0
            marking[spare_pool] += 1
            return marking

        return SANModel(
            "shop",
            places,
            [
                Activity("start", start_rate, [Case(1.0, start)]),
                Activity("finish", finish_rate, [Case(1.0, finish)]),
            ],
        )

    return Join(
        [unit_farm(), repair_shop()],
        shared_invariant=lambda m: m[spare_pool] + m[shop] <= spares + num_units,
    )
