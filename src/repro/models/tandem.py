"""The paper's tandem multi-processor system (Section 5).

Two subsystems — the MSMQ polling system and the hypercube — are joined by
state sharing: each one's output pool is the other's input pool, and a
constant number ``J`` of jobs circulates.  The level assignment follows the
paper's symbolic state-space generator:

* level 1: the common places (the two pools),
* level 2: the hypercube submodel's private places,
* level 3: the MSMQ submodel's private places.

The rates are not given in the paper; the defaults below are documented
stand-ins chosen so all activity classes are exercised (fast job flow, slow
failures, slower repairs).  The *symmetry structure* — three identical
MSMQ servers, the A/A' pair, and the remaining hypercube servers — is what
drives Table 1's reductions and is reproduced exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.lumping.md_model import MDModel
from repro.models.hypercube import build_hypercube, down_count
from repro.models.msmq import build_msmq
from repro.san.composition import Join
from repro.san.semantics import CompiledModel, compile_join
from repro.statespace.events import EventModel, project_event_model
from repro.statespace.reachability import ReachabilityResult


@dataclass
class TandemParams:
    """Parameters of the tandem system.

    ``jobs`` is the paper's ``J``; the structural defaults (3-dimensional
    hypercube, 3 servers, 4 queues) match the paper's configuration.
    """

    jobs: int = 1
    cube_dim: int = 3
    msmq_servers: int = 3
    msmq_queues: int = 4
    msmq_dispatch_rate: float = 5.0
    msmq_walk_rate: float = 2.0
    msmq_service_rate: float = 1.0
    hyper_dispatch_rate: float = 5.0
    hyper_service_rate: float = 1.0
    #: Optional per-server service rates (length 2**cube_dim); distinct
    #: values break the hypercube symmetry (symmetry-breaking experiments).
    hyper_service_rates: Optional[List[float]] = None
    failure_rate: float = 0.001
    repair_rate: float = 0.1
    balance_rate: float = 3.0
    transfer_rate: float = 2.0

    def num_hyper_servers(self) -> int:
        """Number of hypercube servers (``2**cube_dim``)."""
        return 2 ** self.cube_dim


def build_tandem(params: TandemParams) -> CompiledModel:
    """Build and compile the tandem system.

    Returns the compiled model; ``compiled.event_model`` has the paper's
    3-level structure (shared pools / hypercube / MSMQ).
    """
    jobs = params.jobs
    hyper = build_hypercube(
        jobs,
        cube_dim=params.cube_dim,
        pool_in="pool_hyper",
        pool_out="pool_msmq",
        pool_in_initial=0,
        pool_out_initial=jobs,
        dispatch_rate=params.hyper_dispatch_rate,
        service_rate=params.hyper_service_rate,
        service_rates=params.hyper_service_rates,
        failure_rate=params.failure_rate,
        repair_rate=params.repair_rate,
        balance_rate=params.balance_rate,
        transfer_rate=params.transfer_rate,
    )
    msmq = build_msmq(
        jobs,
        num_servers=params.msmq_servers,
        num_queues=params.msmq_queues,
        pool_in="pool_msmq",
        pool_out="pool_hyper",
        pool_in_initial=jobs,
        pool_out_initial=0,
        dispatch_rate=params.msmq_dispatch_rate,
        walk_rate=params.msmq_walk_rate,
        service_rate=params.msmq_service_rate,
    )
    join = Join(
        [hyper, msmq],
        shared_invariant=lambda m: m["pool_hyper"] + m["pool_msmq"] <= jobs,
    )
    return compile_join(join)


def projected_event_model(
    compiled: CompiledModel, reach: ReachabilityResult
) -> EventModel:
    """The event model with each level's space shrunk to the reachable
    projection — the exact setting of the paper's MD levels."""
    return project_event_model(compiled.event_model, reach.level_supports())


def tandem_md_model(
    event_model: EventModel,
    params: TandemParams,
    reachable: Optional[ReachabilityResult] = None,
    reward: str = "none",
) -> MDModel:
    """Wrap the tandem's MD in an :class:`MDModel` with a reward choice.

    ``reward`` selects the per-level decomposable reward:

    * ``"none"`` — zero rewards (pure state-space study, as in Table 1),
    * ``"unavailability"`` — product-form indicator "two or more hypercube
      servers are down" (the paper's availability criterion),
    * ``"hyper_jobs"`` — sum-form count of jobs queued in the hypercube.

    The initial distribution is the point mass on the model's initial
    state (a product of per-level indicators — the paper's own example of
    a decomposable ``pi_ini``).
    """
    md = event_model.to_md()
    sizes = md.level_sizes
    level_initial = []
    for level, substate in enumerate(event_model.initial_state):
        vector = np.zeros(sizes[level])
        vector[substate] = 1.0
        level_initial.append(vector)

    combiner = "sum"
    level_rewards: List[np.ndarray] = [np.zeros(size) for size in sizes]
    if reward == "unavailability":
        combiner = "product"
        level_rewards = [np.ones(size) for size in sizes]
        hyper_labels = event_model.levels[1].labels
        level_rewards[1] = np.array(
            [
                1.0 if down_count(label, params.cube_dim) >= 2 else 0.0
                for label in hyper_labels
            ]
        )
    elif reward == "hyper_jobs":
        from repro.models.hypercube import queued_jobs

        hyper_labels = event_model.levels[1].labels
        level_rewards[1] = np.array(
            [float(queued_jobs(label, params.cube_dim)) for label in hyper_labels]
        )
    elif reward != "none":
        raise ValueError(f"unknown reward spec {reward!r}")

    reachable_indices = None
    if reachable is not None:
        if reachable.model is not event_model:
            raise ValueError(
                "reachability result was computed on a different event model"
            )
        reachable_indices = reachable.potential_indices()
    return MDModel(
        md,
        level_rewards=level_rewards,
        level_initial=level_initial,
        reward_combiner=combiner,
        reachable=reachable_indices,
    )
