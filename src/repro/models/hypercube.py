"""The hypercube subsystem (paper Fig. 5).

``2**cube_dim`` cube-connected servers, each with a queue of capacity ``J``
and a failure bit.  Two antipodal servers ``A`` (vertex 0) and ``A'``
(vertex ``2**cube_dim - 1``) receive jobs from the input pool through a
dispatcher that favors the one with fewer queued jobs.  A load-balancing
scheme ships a job to a less-loaded neighbor whenever a server holds more
than one job above that neighbor; failed servers drain their queue to up
neighbors one job at a time.  Failures strike up servers at a constant
rate; a single repair facility repairs failed servers, picking uniformly.

Places (private except the pools):

* ``q{v}`` — jobs queued at server ``v``,
* ``f{v}`` — 0: up, 1: failed,

plus the shared pools named by ``pool_in`` / ``pool_out``.

Model symmetries (to be *found* by the lumping algorithm, not encoded):
swapping ``A`` and ``A'`` together with the cube inversion, and the
coordinate permutations fixing ``{A, A'}`` — under which the remaining
``2**cube_dim - 2`` servers are all alike.
"""

from __future__ import annotations

from typing import Callable, List

from repro.san.model import Activity, Case, Marking, Place, SANModel


def neighbors(vertex: int, cube_dim: int) -> List[int]:
    """Hypercube neighbors of ``vertex`` (XOR of each single bit)."""
    return [vertex ^ (1 << bit) for bit in range(cube_dim)]


def build_hypercube(
    jobs: int,
    cube_dim: int = 3,
    pool_in: str = "pool_hyper",
    pool_out: str = "pool_msmq",
    pool_in_initial: int = 0,
    pool_out_initial: int = None,
    dispatch_rate: float = 5.0,
    service_rate: float = 1.0,
    failure_rate: float = 0.001,
    repair_rate: float = 0.1,
    balance_rate: float = 3.0,
    transfer_rate: float = 2.0,
    service_rates: List[float] = None,
    name: str = "hypercube",
) -> SANModel:
    """Build the hypercube subsystem as an atomic SAN model.

    ``service_rates`` optionally gives each server its own service rate
    (overriding the uniform ``service_rate``); distinct rates break the
    cube symmetry and are used by the symmetry-breaking experiments.
    """
    if pool_out_initial is None:
        pool_out_initial = jobs
    num_servers = 2 ** cube_dim
    if service_rates is None:
        service_rates = [service_rate] * num_servers
    elif len(service_rates) != num_servers:
        from repro.errors import ModelError

        raise ModelError(
            f"need {num_servers} service rates, got {len(service_rates)}"
        )
    entry_a = 0
    entry_b = num_servers - 1

    places: List[Place] = [
        Place(pool_in, jobs, pool_in_initial),
        Place(pool_out, jobs, pool_out_initial),
    ]
    for v in range(num_servers):
        places.append(Place(f"q{v}", jobs, 0))
        places.append(Place(f"f{v}", 1, 0))

    activities: List[Activity] = []

    # Dispatcher: input pool -> A or A', favoring the shorter queue.
    def dispatch_enabled(marking: Marking) -> float:
        return dispatch_rate if marking[pool_in] > 0 else 0.0

    def entry_weight(marking: Marking, vertex: int) -> float:
        return float(jobs - marking[f"q{vertex}"])

    def make_entry_probability(vertex: int, other: int) -> Callable:
        def probability(marking: Marking) -> float:
            mine = entry_weight(marking, vertex)
            theirs = entry_weight(marking, other)
            if mine + theirs <= 0:
                return 0.5
            return mine / (mine + theirs)

        return probability

    def make_entry_update(vertex: int) -> Callable:
        def update(marking: Marking) -> Marking:
            marking = dict(marking)
            marking[pool_in] -= 1
            marking[f"q{vertex}"] += 1
            return marking

        return update

    activities.append(
        Activity(
            "dispatch",
            dispatch_enabled,
            [
                Case(
                    make_entry_probability(entry_a, entry_b),
                    make_entry_update(entry_a),
                    name="toA",
                ),
                Case(
                    make_entry_probability(entry_b, entry_a),
                    make_entry_update(entry_b),
                    name="toA'",
                ),
            ],
            shared=True,
        )
    )

    # Service: an up server with queued jobs completes one; the job moves
    # to the output pool.
    for v in range(num_servers):

        def make_serve_rate(vertex: int):
            def rate(marking: Marking) -> float:
                if marking[f"q{vertex}"] > 0 and marking[f"f{vertex}"] == 0:
                    return service_rates[vertex]
                return 0.0

            return rate

        def make_serve_update(vertex: int):
            def update(marking: Marking) -> Marking:
                marking = dict(marking)
                marking[f"q{vertex}"] -= 1
                marking[pool_out] += 1
                return marking

            return update

        activities.append(
            Activity(
                f"serve{v}",
                make_serve_rate(v),
                [Case(1.0, make_serve_update(v))],
                shared=True,
            )
        )

    # Failure: up servers fail at a constant rate.
    for v in range(num_servers):

        def make_fail_rate(vertex: int):
            def rate(marking: Marking) -> float:
                return failure_rate if marking[f"f{vertex}"] == 0 else 0.0

            return rate

        def make_fail_update(vertex: int):
            def update(marking: Marking) -> Marking:
                marking = dict(marking)
                marking[f"f{vertex}"] = 1
                return marking

            return update

        activities.append(
            Activity(
                f"fail{v}",
                make_fail_rate(v),
                [Case(1.0, make_fail_update(v))],
                shared=False,
            )
        )

    # Repair: one facility, uniform choice among the failed servers —
    # i.e. each failed server is repaired at rate repair_rate / #failed.
    for v in range(num_servers):

        def make_repair_rate(vertex: int):
            def rate(marking: Marking) -> float:
                if marking[f"f{vertex}"] == 0:
                    return 0.0
                failed = sum(
                    marking[f"f{u}"] for u in range(num_servers)
                )
                return repair_rate / failed

            return rate

        def make_repair_update(vertex: int):
            def update(marking: Marking) -> Marking:
                marking = dict(marking)
                marking[f"f{vertex}"] = 0
                return marking

            return update

        activities.append(
            Activity(
                f"repair{v}",
                make_repair_rate(v),
                [Case(1.0, make_repair_update(v))],
                shared=False,
            )
        )

    # Load balancing: an up server more than one job above some neighbor
    # ships a job to such a neighbor, favoring the least loaded.
    def excess(marking: Marking, vertex: int, neighbor: int) -> float:
        return float(
            max(0, marking[f"q{vertex}"] - marking[f"q{neighbor}"] - 1)
        )

    for v in range(num_servers):
        nbrs = neighbors(v, cube_dim)

        def make_balance_rate(vertex: int, around: List[int]):
            def rate(marking: Marking) -> float:
                if marking[f"f{vertex}"] != 0:
                    return 0.0
                if all(excess(marking, vertex, u) == 0 for u in around):
                    return 0.0
                return balance_rate

            return rate

        def make_balance_probability(vertex: int, target: int, around: List[int]):
            def probability(marking: Marking) -> float:
                total = sum(excess(marking, vertex, u) for u in around)
                if total == 0:
                    return 0.0
                return excess(marking, vertex, target) / total

            return probability

        def make_balance_update(vertex: int, target: int):
            def update(marking: Marking) -> Marking:
                marking = dict(marking)
                marking[f"q{vertex}"] -= 1
                marking[f"q{target}"] += 1
                return marking

            return update

        activities.append(
            Activity(
                f"balance{v}",
                make_balance_rate(v, nbrs),
                [
                    Case(
                        make_balance_probability(v, u, nbrs),
                        make_balance_update(v, u),
                        name=f"to{u}",
                    )
                    for u in nbrs
                ],
                shared=False,
            )
        )

    # Failed-server transfer: a failed server drains its queue one job at
    # a time to a uniformly chosen up neighbor.
    for v in range(num_servers):
        nbrs = neighbors(v, cube_dim)

        def make_transfer_rate(vertex: int, around: List[int]):
            def rate(marking: Marking) -> float:
                if marking[f"f{vertex}"] == 0 or marking[f"q{vertex}"] == 0:
                    return 0.0
                if all(marking[f"f{u}"] == 1 for u in around):
                    return 0.0
                return transfer_rate

            return rate

        def make_transfer_probability(vertex: int, target: int, around: List[int]):
            def probability(marking: Marking) -> float:
                up = [u for u in around if marking[f"f{u}"] == 0]
                if target not in up:
                    return 0.0
                return 1.0 / len(up)

            return probability

        def make_transfer_update(vertex: int, target: int):
            def update(marking: Marking) -> Marking:
                marking = dict(marking)
                marking[f"q{vertex}"] -= 1
                marking[f"q{target}"] += 1
                return marking

            return update

        activities.append(
            Activity(
                f"transfer{v}",
                make_transfer_rate(v, nbrs),
                [
                    Case(
                        make_transfer_probability(v, u, nbrs),
                        make_transfer_update(v, u),
                        name=f"to{u}",
                    )
                    for u in nbrs
                ],
                shared=False,
            )
        )

    def local_invariant(marking: Marking) -> bool:
        queued = sum(marking[f"q{v}"] for v in range(num_servers))
        return queued <= jobs

    return SANModel(name, places, activities, local_invariant=local_invariant)


def down_count(label, cube_dim: int) -> int:
    """Number of failed servers in a hypercube-level substate label
    (the tuple of private place values, ``q0, f0, q1, f1, ..``)."""
    num_servers = 2 ** cube_dim
    return sum(label[2 * v + 1] for v in range(num_servers))


def queued_jobs(label, cube_dim: int) -> int:
    """Number of queued jobs in a hypercube-level substate label."""
    num_servers = 2 ** cube_dim
    return sum(label[2 * v] for v in range(num_servers))
