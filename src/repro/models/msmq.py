"""The MSMQ (multi-server multi-queue) polling subsystem (paper Fig. 4).

``num_servers`` identical servers cycle over ``num_queues`` identical
queues (Ajmone Marsan et al. [14]).  A walking server moves to the next
queue after an exponential delay; on arrival it polls the queue, takes a
job into service if one waits, and otherwise keeps walking.  Service
completions send the job to the subsystem's output pool; jobs are taken
from the input pool and spread over the queues with equal probability.

Places (all private except the two pools):

* ``w{k}``     — jobs waiting at queue ``k``,
* ``pos{i}``   — the queue server ``i`` is currently at,
* ``mode{i}``  — 0: walking, 1: serving a job,

plus the shared pools named by ``pool_in`` / ``pool_out``.

The local invariant "waiting + in-service jobs <= J" encodes the closed
system's job conservation for local state-space enumeration.

The servers are constructed identically (same rates, same cyclic walk), so
permuting server identities is a model symmetry; likewise the queues are
rotationally symmetric.  This is deliberately *not* factored out of the
encoding — finding it is the lumping algorithm's job (Section 5: "the three
servers of the MSMQ subsystem" are one source of the lumpability found).
"""

from __future__ import annotations

from typing import List

from repro.san.model import Activity, Case, Marking, Place, SANModel


def build_msmq(
    jobs: int,
    num_servers: int = 3,
    num_queues: int = 4,
    pool_in: str = "pool_msmq",
    pool_out: str = "pool_hyper",
    pool_in_initial: int = None,
    pool_out_initial: int = 0,
    dispatch_rate: float = 5.0,
    walk_rate: float = 2.0,
    service_rate: float = 1.0,
    name: str = "msmq",
) -> SANModel:
    """Build the MSMQ subsystem as an atomic SAN model.

    ``jobs`` is the closed system's job count ``J`` (place capacities and
    the local invariant derive from it).  By default the input pool starts
    holding all ``J`` jobs.
    """
    if pool_in_initial is None:
        pool_in_initial = jobs
    places: List[Place] = [
        Place(pool_in, jobs, pool_in_initial),
        Place(pool_out, jobs, pool_out_initial),
    ]
    places += [Place(f"w{k}", jobs, 0) for k in range(num_queues)]
    for i in range(num_servers):
        places.append(Place(f"pos{i}", num_queues - 1, i % num_queues))
        places.append(Place(f"mode{i}", 1, 0))

    activities: List[Activity] = []

    # Dispatch: input pool -> a uniformly random queue.
    def dispatch_enabled(marking: Marking) -> float:
        return dispatch_rate if marking[pool_in] > 0 else 0.0

    def make_dispatch_update(queue: int):
        def update(marking: Marking) -> Marking:
            marking = dict(marking)
            marking[pool_in] -= 1
            marking[f"w{queue}"] += 1
            return marking

        return update

    activities.append(
        Activity(
            "dispatch",
            dispatch_enabled,
            [
                Case(1.0 / num_queues, make_dispatch_update(k), name=f"q{k}")
                for k in range(num_queues)
            ],
            shared=True,
        )
    )

    # Walk: a walking server moves to the next queue and polls it.
    for i in range(num_servers):

        def make_walk_rate(server: int):
            def rate(marking: Marking) -> float:
                return walk_rate if marking[f"mode{server}"] == 0 else 0.0

            return rate

        def make_walk_update(server: int):
            def update(marking: Marking) -> Marking:
                marking = dict(marking)
                new_pos = (marking[f"pos{server}"] + 1) % num_queues
                marking[f"pos{server}"] = new_pos
                if marking[f"w{new_pos}"] > 0:
                    marking[f"w{new_pos}"] -= 1
                    marking[f"mode{server}"] = 1
                return marking

            return update

        activities.append(
            Activity(
                f"walk{i}",
                make_walk_rate(i),
                [Case(1.0, make_walk_update(i))],
                shared=False,
            )
        )

    # Serve: a serving server completes; the job moves to the output pool.
    for i in range(num_servers):

        def make_serve_rate(server: int):
            def rate(marking: Marking) -> float:
                return service_rate if marking[f"mode{server}"] == 1 else 0.0

            return rate

        def make_serve_update(server: int):
            def update(marking: Marking) -> Marking:
                marking = dict(marking)
                marking[f"mode{server}"] = 0
                marking[pool_out] += 1
                return marking

            return update

        activities.append(
            Activity(
                f"serve{i}",
                make_serve_rate(i),
                [Case(1.0, make_serve_update(i))],
                shared=True,
            )
        )

    def local_invariant(marking: Marking) -> bool:
        waiting = sum(marking[f"w{k}"] for k in range(num_queues))
        in_service = sum(marking[f"mode{i}"] for i in range(num_servers))
        return waiting + in_service <= jobs

    return SANModel(name, places, activities, local_invariant=local_invariant)
