"""A redundant cluster availability model (front ends + back ends sharing
one repair crew).

A classic dependability scenario in the spirit of the Möbius / SAN
literature: ``front_ends`` identical front-end servers and ``backends``
identical database servers.  Machines fail; a single shared repair crew
(one token in the shared place ``crew``) repairs one machine at a time.
The system is available when at least ``quorum`` front ends and at least
one back end are up — a product-form (hence level-decomposable) indicator.

Each farm is built with :func:`repro.san.replication.replicate`, so each
occupies one MD level and the compositional lumping algorithm reduces it
from ``3^n`` per-machine states to the occupancy multisets.
"""

from __future__ import annotations

from typing import Tuple

from repro.san.composition import Join
from repro.san.model import Activity, Case, Marking, Place, SANModel
from repro.san.replication import replicate
from repro.san.rewards import RewardSpec, marking_predicate

#: Per-machine states: 0 = up, 1 = down (waiting for the crew), 2 = in repair.
UP, DOWN, IN_REPAIR = 0, 1, 2


def _machine_template(
    failure_rate: float, repair_rate: float, grab_rate: float
) -> SANModel:
    places = [Place("crew", 1, 1), Place("state", 2, UP)]

    def fail_rate(marking: Marking) -> float:
        return failure_rate if marking["state"] == UP else 0.0

    def fail(marking: Marking) -> Marking:
        marking = dict(marking)
        marking["state"] = DOWN
        return marking

    def start_rate(marking: Marking) -> float:
        if marking["state"] == DOWN and marking["crew"] > 0:
            return grab_rate
        return 0.0

    def start(marking: Marking) -> Marking:
        marking = dict(marking)
        marking["state"] = IN_REPAIR
        marking["crew"] -= 1
        return marking

    def finish_rate(marking: Marking) -> float:
        return repair_rate if marking["state"] == IN_REPAIR else 0.0

    def finish(marking: Marking) -> Marking:
        marking = dict(marking)
        marking["state"] = UP
        marking["crew"] += 1
        return marking

    return SANModel(
        "machine",
        places,
        [
            Activity("fail", fail_rate, [Case(1.0, fail)], shared=False),
            Activity("start", start_rate, [Case(1.0, start)], shared=True),
            Activity("finish", finish_rate, [Case(1.0, finish)], shared=True),
        ],
    )


def build_cluster(
    front_ends: int = 3,
    backends: int = 2,
    frontend_failure_rate: float = 0.01,
    backend_failure_rate: float = 0.005,
    repair_rate: float = 1.0,
    grab_rate: float = 10.0,
) -> Join:
    """The cluster as a Join of two replicated farms sharing the crew."""
    frontend_farm = replicate(
        _machine_template(frontend_failure_rate, repair_rate, grab_rate),
        front_ends,
        shared_names=["crew"],
        name="frontends",
        replica_prefix="fe",
    )
    backend_farm = replicate(
        _machine_template(backend_failure_rate, repair_rate, grab_rate),
        backends,
        shared_names=["crew"],
        name="backends",
        replica_prefix="be",
    )
    return Join([frontend_farm, backend_farm])


def availability_reward(
    front_ends: int, backends: int, quorum: int
) -> RewardSpec:
    """Indicator: at least ``quorum`` front ends up AND some back end up."""

    def frontends_ok(marking: Marking) -> bool:
        ups = sum(
            1
            for i in range(front_ends)
            if marking[f"fe{i}.state"] == UP
        )
        return ups >= quorum

    def backends_ok(marking: Marking) -> bool:
        return any(
            marking[f"be{i}.state"] == UP for i in range(backends)
        )

    return RewardSpec.product(
        marking_predicate(
            frontends_ok,
            [f"fe{i}.state" for i in range(front_ends)],
            name="frontend-quorum",
        ),
        marking_predicate(
            backends_ok,
            [f"be{i}.state" for i in range(backends)],
            name="backend-alive",
        ),
    )


def expected_sizes(front_ends: int, backends: int) -> Tuple[int, int]:
    """Potential farm-level sizes before lumping (3 states per machine)."""
    return 3 ** front_ends, 3 ** backends
