"""Example models, including the paper's tandem multi-processor system."""

from repro.models.msmq import build_msmq
from repro.models.hypercube import build_hypercube
from repro.models.tandem import TandemParams, build_tandem, tandem_md_model
from repro.models.cluster import availability_reward, build_cluster
from repro.models.simple import (
    birth_death_ctmc,
    closed_tandem_join,
    redundant_units_join,
)

__all__ = [
    "build_msmq",
    "build_hypercube",
    "TandemParams",
    "build_tandem",
    "tandem_md_model",
    "availability_reward",
    "build_cluster",
    "birth_death_ctmc",
    "closed_tandem_join",
    "redundant_units_join",
]
