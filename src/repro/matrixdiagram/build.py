"""Constructing matrix diagrams.

Two entry points matter in practice:

* :func:`md_from_kronecker_terms` — builds the MD of a sum of Kronecker
  products ``R = sum_e lambda_e * W_1^e (x) .. (x) W_L^e``.  This is the
  formalism-independent path the paper relies on ("MD representations of Q
  can be derived ... from a given sparse matrix or Kronecker representation
  of Q").
* :class:`MDBuilder` — incremental construction with hash-consing, so MDs
  are reduced (no duplicate nodes per level) by construction.  Used by the
  Kronecker conversion and by the lumping algorithm when it rebuilds nodes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse

from repro.errors import MatrixDiagramError
from repro.matrixdiagram.formal_sum import FormalSum
from repro.matrixdiagram.md import MatrixDiagram
from repro.matrixdiagram.node import Entry, MDNode

MatrixLike = Union[
    Mapping[Tuple[int, int], float], np.ndarray, sparse.spmatrix
]


def matrix_entries(matrix: MatrixLike) -> Dict[Tuple[int, int], float]:
    """Normalize a matrix-like object to a ``{(row, col): value}`` dict
    of its non-zero entries."""
    if isinstance(matrix, Mapping):
        return {
            (int(r), int(c)): float(v)
            for (r, c), v in matrix.items()
            if float(v) != 0.0
        }
    if sparse.issparse(matrix):
        coo = matrix.tocoo()
        return {
            (int(r), int(c)): float(v)
            for r, c, v in zip(coo.row, coo.col, coo.data)
            if float(v) != 0.0
        }
    array = np.asarray(matrix, dtype=float)
    if array.ndim != 2:
        raise MatrixDiagramError("level matrices must be 2-dimensional")
    rows, cols = np.nonzero(array)
    return {
        (int(r), int(c)): float(array[r, c]) for r, c in zip(rows, cols)
    }


class MDBuilder:
    """Incremental MD construction with hash-consing of nodes.

    ``add_node`` interns nodes by structural key, so the finished MD is
    reduced by construction.  Node indices are allocated sequentially
    starting at ``first_index``.
    """

    def __init__(
        self,
        level_sizes: Sequence[int],
        level_state_labels: Optional[Sequence[Sequence[object]]] = None,
        first_index: int = 1,
    ) -> None:
        self.level_sizes = tuple(int(s) for s in level_sizes)
        self.level_state_labels = level_state_labels
        self._nodes: Dict[int, MDNode] = {}
        self._intern: Dict[Tuple, int] = {}
        self._next_index = first_index

    @property
    def num_levels(self) -> int:
        """Number of levels of the MD being built."""
        return len(self.level_sizes)

    def add_node(
        self, level: int, entries: Mapping[Tuple[int, int], Entry]
    ) -> int:
        """Intern a node; returns the index of the canonical copy."""
        terminal = level == self.num_levels
        node = MDNode(level, dict(entries), terminal=terminal)
        key = node.structure_key()
        existing = self._intern.get(key)
        if existing is not None:
            return existing
        index = self._next_index
        self._next_index += 1
        self._nodes[index] = node
        self._intern[key] = index
        return index

    def finish(self, root: int) -> MatrixDiagram:
        """Build the :class:`MatrixDiagram` rooted at ``root``; interned
        nodes that ended up unreachable (e.g. chains hanging off zero
        entries) are dropped before validation."""
        reachable = {root}
        frontier = [root]
        while frontier:
            index = frontier.pop()
            node = self._nodes.get(index)
            if node is None:
                continue
            for child in node.children():
                if child not in reachable:
                    reachable.add(child)
                    frontier.append(child)
        return MatrixDiagram(
            self.level_sizes,
            {i: n for i, n in self._nodes.items() if i in reachable},
            root,
            level_state_labels=self.level_state_labels,
        )


def md_from_kronecker_terms(
    terms: Iterable[Tuple[float, Sequence[MatrixLike]]],
    level_sizes: Sequence[int],
    level_state_labels: Optional[Sequence[Sequence[object]]] = None,
) -> MatrixDiagram:
    """The MD of ``R = sum_e lambda_e * W_1^e (x) W_2^e (x) .. (x) W_L^e``.

    Each term contributes a chain of nodes (one per level below the root);
    the root combines all terms in its formal sums.  Hash-consing shares
    equal suffixes across terms — e.g. all terms whose lower levels are
    identity matrices share a single identity chain, which is where the MD's
    compactness comes from.

    >>> import numpy as np
    >>> md = md_from_kronecker_terms(
    ...     [(2.0, [np.eye(2), np.eye(3)])], level_sizes=(2, 3))
    >>> md.num_levels
    2
    """
    level_sizes = tuple(int(s) for s in level_sizes)
    num_levels = len(level_sizes)
    if num_levels == 0:
        raise MatrixDiagramError("need at least one level")
    builder = MDBuilder(level_sizes, level_state_labels)
    term_list: List[Tuple[float, List[Dict[Tuple[int, int], float]]]] = []
    for weight, matrices in terms:
        matrices = list(matrices)
        if len(matrices) != num_levels:
            raise MatrixDiagramError(
                f"term has {len(matrices)} level matrices, expected {num_levels}"
            )
        term_list.append(
            (float(weight), [matrix_entries(m) for m in matrices])
        )
    if not term_list:
        raise MatrixDiagramError("need at least one Kronecker term")

    root_entries: Dict[Tuple[int, int], FormalSum] = {}
    if num_levels == 1:
        flat: Dict[Tuple[int, int], float] = {}
        for weight, (entries,) in term_list:
            for rc, value in entries.items():
                flat[rc] = flat.get(rc, 0.0) + weight * value
        root = builder.add_node(1, flat)
        return builder.finish(root)

    for weight, matrices in term_list:
        # Build the chain bottom-up: terminal node first.
        child = builder.add_node(num_levels, matrices[-1])
        for level in range(num_levels - 1, 1, -1):
            entries = {
                rc: FormalSum.of(child, value)
                for rc, value in matrices[level - 1].items()
            }
            child = builder.add_node(level, entries)
        for rc, value in matrices[0].items():
            term_sum = FormalSum.of(child, weight * value)
            existing = root_entries.get(rc)
            root_entries[rc] = term_sum if existing is None else existing + term_sum
    root = builder.add_node(1, root_entries)
    return builder.finish(root)


def md_from_flat_matrix(
    matrix: MatrixLike, size: Optional[int] = None
) -> MatrixDiagram:
    """A one-level MD representing ``matrix`` directly (the degenerate case
    the paper handles with artificial levels)."""
    entries = matrix_entries(matrix)
    if size is None:
        if sparse.issparse(matrix):
            size = matrix.shape[0]
        elif isinstance(matrix, np.ndarray):
            size = matrix.shape[0]
        else:
            size = 1 + max((max(r, c) for (r, c) in entries), default=-1)
    builder = MDBuilder((size,))
    root = builder.add_node(1, entries)
    return builder.finish(root)


def md_identity(level_sizes: Sequence[int]) -> MatrixDiagram:
    """The MD of the identity matrix over the product space."""
    terms = [
        (
            1.0,
            [
                {(s, s): 1.0 for s in range(size)}
                for size in level_sizes
            ],
        )
    ]
    return md_from_kronecker_terms(terms, level_sizes)
