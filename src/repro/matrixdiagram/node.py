"""Matrix diagram nodes.

A node at level ``i`` is a sparse matrix over the level's local state space
``S_i = {0, .., n_i - 1}``.  Non-terminal entries are :class:`FormalSum`
objects over next-level node indices; terminal entries are floats.  Row and
column *supports* (the paper's row/column index sets ``S_n``, ``S'_n``,
which may be proper subsets of ``S_i``) are implicit: a substate is in the
support iff some entry touches it.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple, Union

from repro.errors import MatrixDiagramError
from repro.matrixdiagram.formal_sum import FormalSum
from repro.util.numeric import quantize

Entry = Union[FormalSum, float]


class MDNode:
    """One node of a matrix diagram.

    Parameters
    ----------
    level:
        1-based level of the node (level 1 is the root level).
    entries:
        Mapping ``(row_substate, col_substate) -> entry``.  Entries must all
        be :class:`FormalSum` (non-terminal node) or all floats (terminal
        node); zero entries are dropped.
    terminal:
        Whether this node sits at the last level (real-valued matrix).
        Required explicitly so an all-zero node still knows its kind.
    """

    __slots__ = ("level", "terminal", "_entries")

    def __init__(
        self,
        level: int,
        entries: Mapping[Tuple[int, int], Entry],
        terminal: bool,
    ) -> None:
        if level < 1:
            raise MatrixDiagramError(f"level must be >= 1, got {level}")
        self.level = level
        self.terminal = terminal
        cleaned: Dict[Tuple[int, int], Entry] = {}
        for (row, col), entry in entries.items():
            if row < 0 or col < 0:
                raise MatrixDiagramError(
                    f"negative substate in entry ({row}, {col})"
                )
            if terminal:
                if isinstance(entry, FormalSum):
                    raise MatrixDiagramError(
                        "terminal node entries must be real numbers"
                    )
                value = float(entry)
                if value != 0.0:
                    cleaned[(row, col)] = value
            else:
                if not isinstance(entry, FormalSum):
                    raise MatrixDiagramError(
                        "non-terminal node entries must be FormalSum objects"
                    )
                if not entry.is_zero():
                    cleaned[(row, col)] = entry
        self._entries = cleaned

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    def entries(self) -> Iterator[Tuple[int, int, Entry]]:
        """Iterate ``(row, col, entry)`` over non-zero entries."""
        for (row, col), entry in self._entries.items():
            yield row, col, entry

    def entry(self, row: int, col: int) -> Entry:
        """The entry at ``(row, col)``; zero (``FormalSum.zero()`` or 0.0)
        if absent."""
        try:
            return self._entries[(row, col)]
        except KeyError:
            return 0.0 if self.terminal else FormalSum.zero()

    @property
    def num_entries(self) -> int:
        """Number of non-zero entries."""
        return len(self._entries)

    def row_support(self) -> Tuple[int, ...]:
        """Substates with at least one non-zero row entry, sorted."""
        return tuple(sorted({row for (row, _c) in self._entries}))

    def col_support(self) -> Tuple[int, ...]:
        """Substates with at least one non-zero column entry, sorted."""
        return tuple(sorted({col for (_r, col) in self._entries}))

    def max_substate(self) -> int:
        """Largest substate index appearing in any entry (-1 if empty)."""
        if not self._entries:
            return -1
        return max(max(r, c) for (r, c) in self._entries)

    def children(self) -> Tuple[int, ...]:
        """All next-level node indices referenced by this node, sorted."""
        if self.terminal:
            return ()
        refs = set()
        for entry in self._entries.values():
            refs.update(entry.children())
        return tuple(sorted(refs))

    # ------------------------------------------------------------------
    # row/col aggregation used by the lumping key functions
    # ------------------------------------------------------------------

    def row_sum_over(self, row: int, cols: Tuple[int, ...]) -> Entry:
        """``R_n(s, C)``: the (formal or real) sum of entries in row ``row``
        restricted to columns ``cols`` (paper's ``A(i, C)`` identity)."""
        if self.terminal:
            return sum(
                self._entries.get((row, col), 0.0) for col in cols
            )
        return FormalSum.accumulate(
            self._entries[(row, col)]
            for col in cols
            if (row, col) in self._entries
        )

    def col_sum_over(self, rows: Tuple[int, ...], col: int) -> Entry:
        """``R_n(C, s)``: the (formal or real) sum of entries in column
        ``col`` restricted to rows ``rows``."""
        if self.terminal:
            return sum(
                self._entries.get((row, col), 0.0) for row in rows
            )
        return FormalSum.accumulate(
            self._entries[(row, col)]
            for row in rows
            if (row, col) in self._entries
        )

    # ------------------------------------------------------------------
    # structure / equality
    # ------------------------------------------------------------------

    def structure_key(self) -> Tuple:
        """A hashable key identifying this node's matrix *structurally*.

        Two nodes with equal structure keys represent the same matrix
        provided their referenced children do (coefficients are quantized).
        Quasi-reduction merges nodes with equal keys (the paper's
        requirement that "at any level, no two nodes are equal").
        """
        if self.terminal:
            body = tuple(
                (rc, quantize(v)) for rc, v in sorted(self._entries.items())
            )
        else:
            body = tuple(
                (rc, entry.signature)
                for rc, entry in sorted(self._entries.items())
            )
        return (self.level, self.terminal, body)

    def remapped_children(self, mapping: Mapping[int, int]) -> "MDNode":
        """A copy with child references renamed through ``mapping``."""
        if self.terminal:
            return MDNode(self.level, dict(self._entries), terminal=True)
        return MDNode(
            self.level,
            {rc: entry.remapped(mapping) for rc, entry in self._entries.items()},
            terminal=False,
        )

    def __repr__(self) -> str:
        kind = "terminal" if self.terminal else "inner"
        return (
            f"MDNode(level={self.level}, {kind}, entries={self.num_entries})"
        )
