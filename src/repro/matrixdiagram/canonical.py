"""Canonicalization of matrix diagrams (Miner, PNPM 2001).

In a *canonical* MD, a node uniquely represents its matrix: two distinct
nodes at the same level never represent equal matrices.  The paper points
out that its local lumpability condition (equality of formal sums as sets
of ``(coefficient, node)`` pairs) is only sufficient partly because an
arbitrary MD may contain two distinct nodes with equal matrices; canonical
MDs close that gap.

We canonicalize by *scale normalization*: bottom-up, each node is divided
by its leading coefficient (the value of its lexicographically first
non-zero entry, or for non-terminal nodes that entry's first term), and the
factor is pushed into the parents' referencing coefficients.  Together with
hash-consing this merges all nodes that are scalar multiples of one
another — the dominant source of duplicate-matrix nodes in Kronecker-built
MDs.  (Full semantic canonicity would require deciding matrix equality of
arbitrary linear combinations; scale + structure normalization is the
classical practical compromise.)
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.matrixdiagram.formal_sum import FormalSum
from repro.matrixdiagram.md import MatrixDiagram
from repro.matrixdiagram.node import MDNode


def _leading_value(node: MDNode) -> float:
    """The scale factor to divide out of ``node`` (1.0 for an empty node)."""
    items = sorted(
        ((r, c), entry) for r, c, entry in node.entries()
    )
    if not items:
        return 1.0
    _position, entry = items[0]
    if node.terminal:
        return float(entry) or 1.0
    first_terms = sorted(entry.items())
    return first_terms[0][1] if first_terms else 1.0


def canonicalize(md: MatrixDiagram) -> MatrixDiagram:
    """Scale-normalized, reduced copy of ``md`` (same represented matrix).

    After canonicalization every node's leading coefficient is 1, scalar
    multiples are shared, and the MD is quasi-reduced.
    """
    # factor[i]: the scalar divided out of node i; parents referencing i
    # multiply their coefficient by factor[i].
    factor: Dict[int, float] = {}
    new_nodes: Dict[int, MDNode] = {}
    for level in range(md.num_levels, 0, -1):
        for index, node in md.nodes_at(level).items():
            if node.terminal:
                adjusted = node
            else:
                entries: Dict[Tuple[int, int], FormalSum] = {}
                for r, c, formal_sum in node.entries():
                    entries[(r, c)] = FormalSum(
                        {
                            child: coeff * factor[child]
                            for child, coeff in formal_sum.items()
                        }
                    )
                adjusted = MDNode(level, entries, terminal=False)
            scale = _leading_value(adjusted)
            if scale == 1.0 or index == md.root_index:
                factor[index] = 1.0
                new_nodes[index] = adjusted
                continue
            factor[index] = scale
            inverse = 1.0 / scale
            if adjusted.terminal:
                scaled_entries = {
                    (r, c): value * inverse
                    for r, c, value in adjusted.entries()
                }
                new_nodes[index] = MDNode(level, scaled_entries, terminal=True)
            else:
                scaled_entries = {
                    (r, c): entry.scaled(inverse)
                    for r, c, entry in adjusted.entries()
                }
                new_nodes[index] = MDNode(level, scaled_entries, terminal=False)
    result = MatrixDiagram(
        md.level_sizes,
        new_nodes,
        md.root_index,
        level_state_labels=md.all_level_labels(),
    )
    return result.quasi_reduce()
