"""Statistics, memory accounting and DOT export for matrix diagrams.

The paper's Table 1 reports "MD space" in kilobytes for the unlumped and
lumped MDs.  :func:`md_stats` reproduces that accounting with an explicit,
documented cost model patterned on a C implementation:

* per node: 32 bytes (level, dimensions, entry table pointer, bookkeeping),
* per non-zero entry: 16 bytes (row/column indices + entry pointer),
* per formal-sum term: 12 bytes (child pointer + 4-byte float coefficient
  as Möbius used) — terminal entries count 8 bytes for their double value.

Absolute bytes are a model, but ratios (lumped vs unlumped) are directly
comparable to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.matrixdiagram.md import MatrixDiagram

NODE_OVERHEAD_BYTES = 32
ENTRY_OVERHEAD_BYTES = 16
TERM_BYTES = 12
TERMINAL_VALUE_BYTES = 8


@dataclass
class MDStats:
    """Size statistics of a matrix diagram."""

    num_levels: int
    level_sizes: List[int]
    nodes_per_level: List[int]
    entries_per_level: List[int]
    terms_per_level: List[int]
    memory_bytes: int
    potential_size: int
    per_level_memory: List[int] = field(default_factory=list)

    @property
    def num_nodes(self) -> int:
        """Total node count."""
        return sum(self.nodes_per_level)

    @property
    def num_entries(self) -> int:
        """Total non-zero entry count."""
        return sum(self.entries_per_level)

    def summary(self) -> str:
        """A one-line human-readable summary."""
        return (
            f"L={self.num_levels} sizes={self.level_sizes} "
            f"nodes={self.nodes_per_level} entries={self.num_entries} "
            f"mem={self.memory_bytes}B"
        )


def md_stats(md: MatrixDiagram) -> MDStats:
    """Compute :class:`MDStats` for an MD."""
    nodes_per_level = []
    entries_per_level = []
    terms_per_level = []
    per_level_memory = []
    for level in range(1, md.num_levels + 1):
        nodes = md.nodes_at(level)
        entry_count = 0
        term_count = 0
        for node in nodes.values():
            entry_count += node.num_entries
            if node.terminal:
                term_count += node.num_entries
            else:
                for _r, _c, formal_sum in node.entries():
                    term_count += len(formal_sum)
        nodes_per_level.append(len(nodes))
        entries_per_level.append(entry_count)
        terms_per_level.append(term_count)
        term_bytes = (
            TERMINAL_VALUE_BYTES if level == md.num_levels else TERM_BYTES
        )
        per_level_memory.append(
            len(nodes) * NODE_OVERHEAD_BYTES
            + entry_count * ENTRY_OVERHEAD_BYTES
            + term_count * term_bytes
        )
    return MDStats(
        num_levels=md.num_levels,
        level_sizes=list(md.level_sizes),
        nodes_per_level=nodes_per_level,
        entries_per_level=entries_per_level,
        terms_per_level=terms_per_level,
        memory_bytes=sum(per_level_memory),
        potential_size=md.potential_size(),
        per_level_memory=per_level_memory,
    )


def to_dot(md: MatrixDiagram, max_entries: int = 12) -> str:
    """Render the MD structure as Graphviz DOT (for documentation and
    debugging).  Node labels show up to ``max_entries`` entries."""
    lines = ["digraph md {", "  rankdir=TB;", "  node [shape=box];"]
    edges: Dict[tuple, float] = {}
    for index in md.node_indices():
        node = md.node(index)
        rows = []
        for position, (r, c, entry) in enumerate(sorted(node.entries())):
            if position >= max_entries:
                rows.append("...")
                break
            if node.terminal:
                rows.append(f"({r},{c})={entry:g}")
            else:
                terms = "+".join(
                    f"{coeff:g}*R{child}" for child, coeff in sorted(entry.items())
                )
                rows.append(f"({r},{c})={terms}")
                for child, coeff in entry.items():
                    edges[(index, child)] = coeff
        label = f"R{index} (L{node.level})\\n" + "\\n".join(rows)
        lines.append(f'  n{index} [label="{label}"];')
    for (parent, child), _coeff in sorted(edges.items()):
        lines.append(f"  n{parent} -> n{child};")
    lines.append("}")
    return "\n".join(lines)
