"""Structural operations on matrix diagrams.

Implements the machinery of the paper's Section 3:

* :func:`flatten_node` / :func:`flatten` — resolve formal sums by scalar
  multiplication and matrix addition, bottom-up ("each MD node R_n results
  in a real-valued matrix bar(R)_n"),
* :func:`merge_bottom_up` / :func:`merge_top_down` — merge adjacent levels
  so an arbitrary level of interest becomes level 2 of a 3-level MD
  (:func:`to_three_level`), including the paper's artificial level-0 /
  level-(L+1) trick for the edge cases,
* :func:`md_equal` — semantic equality of two MDs (equal represented
  matrices).

The compositional lumping algorithm itself never merges levels (the paper
stresses the merging argument is purely notational); these operations exist
for verification, tests and the concrete-matrix ablation.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.errors import MatrixDiagramError
from repro.matrixdiagram.formal_sum import FormalSum
from repro.matrixdiagram.md import MatrixDiagram
from repro.matrixdiagram.node import MDNode


def flatten_node(
    md: MatrixDiagram,
    index: int,
    cache: Optional[Dict[int, sparse.csr_matrix]] = None,
) -> sparse.csr_matrix:
    """The real matrix ``bar(R)_n`` represented by node ``index``.

    The matrix is square of dimension ``|S_i| * .. * |S_L|`` where ``i`` is
    the node's level; rows/columns outside the node's support are zero.
    ``cache`` memoizes shared children across calls.
    """
    if cache is None:
        cache = {}

    sizes = md.level_sizes
    # A shared child is referenced from many parent entries; memoize its
    # COO view so the CSR->COO conversion happens once per node, not
    # once per reference (the conversion dominated flattening time).
    coo_cache: Dict[int, sparse.coo_matrix] = {}

    def recurse_coo(node_index: int) -> sparse.coo_matrix:
        coo = coo_cache.get(node_index)
        if coo is None:
            coo = recurse(node_index).tocoo()
            coo_cache[node_index] = coo
        return coo

    def recurse(node_index: int) -> sparse.csr_matrix:
        cached = cache.get(node_index)
        if cached is not None:
            return cached
        node = md.node(node_index)
        dim = math.prod(sizes[node.level - 1 :])
        stride = math.prod(sizes[node.level :])
        rows: List[np.ndarray] = []
        cols: List[np.ndarray] = []
        data: List[np.ndarray] = []
        if node.terminal:
            for r, c, value in node.entries():
                rows.append(np.array([r]))
                cols.append(np.array([c]))
                data.append(np.array([value]))
        else:
            for r, c, formal_sum in node.entries():
                for child, coefficient in formal_sum.items():
                    block = recurse_coo(child)
                    if block.nnz == 0:
                        continue
                    rows.append(block.row + r * stride)
                    cols.append(block.col + c * stride)
                    data.append(block.data * coefficient)
        if rows:
            matrix = sparse.coo_matrix(
                (
                    np.concatenate(data),
                    (np.concatenate(rows), np.concatenate(cols)),
                ),
                shape=(dim, dim),
            ).tocsr()
        else:
            matrix = sparse.csr_matrix((dim, dim))
        matrix.eliminate_zeros()
        cache[node_index] = matrix
        return matrix

    return recurse(index)


def flatten(md: MatrixDiagram) -> sparse.csr_matrix:
    """The full matrix the MD represents, over the potential product space.

    Global state ``(s_1, .., s_L)`` maps to the flat index
    ``mixed_radix_index((s_1, .., s_L), level_sizes)``.
    """
    return flatten_node(md, md.root_index)


def md_equal(a: MatrixDiagram, b: MatrixDiagram, tol: float = 1e-9) -> bool:
    """True if two MDs represent the same matrix (within ``tol``).

    The MDs must have the same potential space (same product of level
    sizes); level structure may differ (e.g. one may be a merged version of
    the other).
    """
    if a.potential_size() != b.potential_size():
        return False
    difference = flatten(a) - flatten(b)
    if difference.nnz == 0:
        return True
    return bool(np.abs(difference.data).max() <= tol)


def _product_labels(
    md: MatrixDiagram, first_level: int, last_level: int, limit: int = 1_000_000
) -> Optional[List[object]]:
    """Tuples of per-level labels for a merged level, or ``None`` if the MD
    is unlabeled or the product would exceed ``limit`` entries."""
    labels = md.all_level_labels()
    if labels is None:
        return None
    size = math.prod(md.level_sizes[first_level - 1 : last_level])
    if size > limit:
        return None
    merged: List[object] = [()]
    for level in range(first_level, last_level + 1):
        merged = [
            prefix + (label,)
            for prefix in merged
            for label in labels[level - 1]
        ]
    return merged


def merge_bottom_up(md: MatrixDiagram, from_level: int) -> MatrixDiagram:
    """Merge levels ``from_level..L`` into a single terminal level.

    Every node at ``from_level`` is replaced by a terminal node holding its
    flattened matrix; nodes above are unchanged.  The represented matrix is
    unchanged (Section 3's bottom-up merging argument).
    """
    num_levels = md.num_levels
    if not 1 <= from_level <= num_levels:
        raise MatrixDiagramError(f"invalid from_level {from_level}")
    if from_level == num_levels:
        return md
    sizes = md.level_sizes
    merged_size = math.prod(sizes[from_level - 1 :])
    new_sizes = sizes[: from_level - 1] + (merged_size,)

    cache: Dict[int, sparse.csr_matrix] = {}
    new_nodes: Dict[int, MDNode] = {}
    for level in range(1, from_level):
        for index, node in md.nodes_at(level).items():
            new_nodes[index] = node
    for index in md.nodes_at(from_level):
        flat = flatten_node(md, index, cache).tocoo()
        entries = {
            (int(r), int(c)): float(v)
            for r, c, v in zip(flat.row, flat.col, flat.data)
        }
        new_nodes[index] = MDNode(from_level, entries, terminal=True)

    labels = md.all_level_labels()
    new_labels = None
    if labels is not None:
        merged_labels = _product_labels(md, from_level, num_levels)
        if merged_labels is not None:
            new_labels = labels[: from_level - 1] + [merged_labels]
    return MatrixDiagram(
        new_sizes, new_nodes, md.root_index, level_state_labels=new_labels
    )


def merge_top_down(md: MatrixDiagram, through_level: int) -> MatrixDiagram:
    """Merge levels ``1..through_level`` into a single new root level.

    The new root's entries are indexed by the mixed-radix encoding of the
    merged substate tuples; its formal sums reference the (unchanged) nodes
    at level ``through_level + 1``, whose levels shift up accordingly.
    Requires ``through_level < L``.
    """
    num_levels = md.num_levels
    if not 1 <= through_level < num_levels:
        raise MatrixDiagramError(
            f"through_level must be in 1..{num_levels - 1}, got {through_level}"
        )
    if through_level == 1:
        return md
    sizes = md.level_sizes

    # Accumulate, over all paths through levels 1..through_level, the
    # formal sums reaching each (row-prefix, col-prefix) pair.
    current: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], FormalSum] = {
        ((), ()): FormalSum.of(md.root_index, 1.0)
    }
    for _level in range(1, through_level + 1):
        nxt: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], FormalSum] = {}
        for (row_prefix, col_prefix), formal_sum in current.items():
            for node_index, coefficient in formal_sum.items():
                node = md.node(node_index)
                for r, c, entry in node.entries():
                    key = (row_prefix + (r,), col_prefix + (c,))
                    contribution = entry.scaled(coefficient)
                    existing = nxt.get(key)
                    nxt[key] = (
                        contribution
                        if existing is None
                        else existing + contribution
                    )
        current = nxt

    merged_size = math.prod(sizes[:through_level])
    new_sizes = (merged_size,) + sizes[through_level:]
    radices = sizes[:through_level]

    def encode(prefix: Tuple[int, ...]) -> int:
        index = 0
        for digit, radix in zip(prefix, radices):
            index = index * radix + digit
        return index

    root_entries = {
        (encode(rp), encode(cp)): formal_sum
        for (rp, cp), formal_sum in current.items()
        if not formal_sum.is_zero()
    }

    new_nodes: Dict[int, MDNode] = {}
    for level in range(through_level + 1, num_levels + 1):
        for index, node in md.nodes_at(level).items():
            new_level = level - through_level + 1
            new_nodes[index] = MDNode(
                new_level,
                {rc: e for r, c, e in node.entries() for rc in [(r, c)]},
                terminal=node.terminal,
            )
    new_root = max(new_nodes, default=0) + 1
    new_nodes[new_root] = MDNode(1, root_entries, terminal=num_levels == through_level)

    labels = md.all_level_labels()
    new_labels = None
    if labels is not None:
        merged_labels = _product_labels(md, 1, through_level)
        if merged_labels is not None:
            new_labels = [merged_labels] + labels[through_level:]
    return MatrixDiagram(
        new_sizes, new_nodes, new_root, level_state_labels=new_labels
    )


def merge_adjacent(md: MatrixDiagram, level: int) -> MatrixDiagram:
    """Merge levels ``level`` and ``level + 1`` into one level.

    The merged level's substates are the mixed-radix pairs
    ``s * |S_{level+1}| + s'``; entries compose the coefficient of the
    upper entry with the lower node's entries, so the represented matrix
    is unchanged.  Unlike :func:`merge_bottom_up` / :func:`merge_top_down`
    this works at any position, which makes arbitrary regroupings possible
    (see :func:`regroup_levels`).
    """
    num_levels = md.num_levels
    if not 1 <= level < num_levels:
        raise MatrixDiagramError(
            f"level must be in 1..{num_levels - 1}, got {level}"
        )
    sizes = md.level_sizes
    lower_size = sizes[level]  # |S_{level+1}|
    merged_size = sizes[level - 1] * lower_size
    new_sizes = sizes[: level - 1] + (merged_size,) + sizes[level + 1 :]
    merged_is_terminal = level + 1 == num_levels

    new_nodes: Dict[int, MDNode] = {}
    # Levels above stay as they are (references to `level` nodes remain).
    for upper in range(1, level):
        for index, node in md.nodes_at(upper).items():
            new_nodes[index] = node
    # Nodes at `level` absorb their children.
    for index, node in md.nodes_at(level).items():
        entries: Dict[Tuple[int, int], object] = {}
        for r, c, formal_sum in node.entries():
            for child, coefficient in formal_sum.items():
                child_node = md.node(child)
                for r2, c2, entry in child_node.entries():
                    key = (r * lower_size + r2, c * lower_size + c2)
                    if merged_is_terminal:
                        entries[key] = entries.get(key, 0.0) + (
                            coefficient * entry
                        )
                    else:
                        contribution = entry.scaled(coefficient)
                        existing = entries.get(key)
                        entries[key] = (
                            contribution
                            if existing is None
                            else existing + contribution
                        )
        new_nodes[index] = MDNode(level, entries, terminal=merged_is_terminal)
    # Deeper nodes shift one level up.
    for deeper in range(level + 2, num_levels + 1):
        for index, node in md.nodes_at(deeper).items():
            new_nodes[index] = MDNode(
                deeper - 1,
                {(r, c): e for r, c, e in node.entries()},
                terminal=node.terminal,
            )

    labels = md.all_level_labels()
    new_labels = None
    if labels is not None:
        merged_labels = [
            (upper, lower)
            for upper in labels[level - 1]
            for lower in labels[level]
        ]
        new_labels = (
            labels[: level - 1] + [merged_labels] + labels[level + 1 :]
        )
    result = MatrixDiagram(
        new_sizes, new_nodes, md.root_index, level_state_labels=new_labels
    )
    return result.quasi_reduce()


def regroup_levels(md: MatrixDiagram, groups) -> MatrixDiagram:
    """Merge contiguous level groups: ``groups`` partitions ``1..L`` into
    consecutive runs, e.g. ``[[1], [2, 3], [4]]`` merges levels 2 and 3.

    Regrouping changes which symmetries are *local*: two interchangeable
    components on different levels are invisible to the per-level lumping
    conditions, but merging their levels turns the component-permutation
    symmetry into an ordinary within-level symmetry the algorithm can
    find.  (The cost is a larger local state space — exactly the paper's
    locality-vs-coarseness trade-off.)
    """
    expected = 1
    parsed = []
    for group in groups:
        group = sorted(group)
        if group != list(range(group[0], group[-1] + 1)):
            raise MatrixDiagramError(f"group {group} is not contiguous")
        if group[0] != expected:
            raise MatrixDiagramError(
                f"groups must cover levels consecutively; expected level "
                f"{expected}, got {group[0]}"
            )
        expected = group[-1] + 1
        parsed.append(group)
    if expected != md.num_levels + 1:
        raise MatrixDiagramError("groups must cover every level")
    result = md
    # Merge within each group, front to back; account for level shifts.
    offset = 0
    for group in parsed:
        start = group[0] - offset
        for _ in range(len(group) - 1):
            result = merge_adjacent(result, start)
            offset += 1
    return result


def add_artificial_top(md: MatrixDiagram) -> MatrixDiagram:
    """Prepend the paper's artificial level 0: a 1x1 root with entry
    ``1 * R_root`` (used when the level of interest is the top level)."""
    new_nodes: Dict[int, MDNode] = {}
    for level in range(1, md.num_levels + 1):
        for index, node in md.nodes_at(level).items():
            new_nodes[index] = MDNode(
                level + 1,
                {(r, c): e for r, c, e in node.entries()},
                terminal=node.terminal,
            )
    new_root = max(new_nodes, default=0) + 1
    new_nodes[new_root] = MDNode(
        1, {(0, 0): FormalSum.of(md.root_index, 1.0)}, terminal=False
    )
    labels = md.all_level_labels()
    new_labels = [["*"]] + labels if labels is not None else None
    return MatrixDiagram(
        (1,) + md.level_sizes, new_nodes, new_root, level_state_labels=new_labels
    )


def add_artificial_bottom(md: MatrixDiagram) -> MatrixDiagram:
    """Append the paper's artificial level L+1: a 1x1 terminal node holding
    1.0; old terminal entries become coefficients referencing it."""
    unit_index = max(md.node_indices(), default=0) + 1
    new_nodes: Dict[int, MDNode] = {
        unit_index: MDNode(
            md.num_levels + 1, {(0, 0): 1.0}, terminal=True
        )
    }
    for level in range(1, md.num_levels + 1):
        for index, node in md.nodes_at(level).items():
            if node.terminal:
                entries = {
                    (r, c): FormalSum.of(unit_index, value)
                    for r, c, value in node.entries()
                }
                new_nodes[index] = MDNode(level, entries, terminal=False)
            else:
                new_nodes[index] = node
    labels = md.all_level_labels()
    new_labels = labels + [["*"]] if labels is not None else None
    return MatrixDiagram(
        md.level_sizes + (1,),
        new_nodes,
        md.root_index,
        level_state_labels=new_labels,
    )


def to_three_level(md: MatrixDiagram, focus_level: int) -> MatrixDiagram:
    """Merge levels so ``focus_level`` becomes level 2 of a 3-level MD.

    This realizes the paper's "without loss of generality, an MD of 3
    levels" argument, including the artificial top/bottom levels when the
    focus is the first or last level.
    """
    if not 1 <= focus_level <= md.num_levels:
        raise MatrixDiagramError(f"invalid focus level {focus_level}")
    result = md
    if focus_level == 1:
        result = add_artificial_top(result)
        focus_level = 2
    if focus_level == result.num_levels:
        result = add_artificial_bottom(result)
    result = merge_top_down(result, focus_level - 1)
    # After the top-down merge the focus sits at level 2.
    result = merge_bottom_up(result, 3)
    return result
