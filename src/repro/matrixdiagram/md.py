"""The matrix diagram container: leveled DAG of :class:`MDNode` objects.

Follows Section 3 of the paper: a connected DAG with a unique root node,
levels ``1..L``, arcs only between adjacent levels, and (after
quasi-reduction) no two equal nodes on any level.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import MatrixDiagramError
from repro.matrixdiagram.node import MDNode


class MatrixDiagram:
    """A matrix diagram over per-level local state spaces.

    Parameters
    ----------
    level_sizes:
        ``level_sizes[i - 1]`` is ``|S_i|``, the size of level i's local
        state space.  Substates are ``0..|S_i| - 1``.
    nodes:
        Mapping of unique node index -> :class:`MDNode`.
    root:
        Index of the root node (must be at level 1).
    level_state_labels:
        Optional per-level sequences of substate labels, for presentation.
    """

    def __init__(
        self,
        level_sizes: Sequence[int],
        nodes: Mapping[int, MDNode],
        root: int,
        level_state_labels: Optional[Sequence[Sequence[object]]] = None,
    ) -> None:
        if not level_sizes:
            raise MatrixDiagramError("an MD needs at least one level")
        if any(size < 1 for size in level_sizes):
            raise MatrixDiagramError("every level needs at least one substate")
        self._level_sizes = tuple(int(s) for s in level_sizes)
        self._nodes: Dict[int, MDNode] = dict(nodes)
        self._root = root
        if level_state_labels is not None:
            if len(level_state_labels) != len(self._level_sizes):
                raise MatrixDiagramError(
                    "level_state_labels must have one sequence per level"
                )
            for size, labels in zip(self._level_sizes, level_state_labels):
                if len(labels) != size:
                    raise MatrixDiagramError(
                        f"{len(labels)} labels for a level of size {size}"
                    )
            self._labels: Optional[List[List[object]]] = [
                list(labels) for labels in level_state_labels
            ]
        else:
            self._labels = None
        self.validate()

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def num_levels(self) -> int:
        """Number of levels ``L``."""
        return len(self._level_sizes)

    @property
    def level_sizes(self) -> Tuple[int, ...]:
        """Per-level local state-space sizes ``(|S_1|, .., |S_L|)``."""
        return self._level_sizes

    @property
    def root_index(self) -> int:
        """Index of the root node."""
        return self._root

    @property
    def root(self) -> MDNode:
        """The root node."""
        return self._nodes[self._root]

    def node(self, index: int) -> MDNode:
        """The node with the given index."""
        try:
            return self._nodes[index]
        except KeyError:
            raise MatrixDiagramError(f"no node with index {index}") from None

    @property
    def num_nodes(self) -> int:
        """Total number of nodes."""
        return len(self._nodes)

    def node_indices(self) -> Tuple[int, ...]:
        """All node indices, sorted."""
        return tuple(sorted(self._nodes))

    def nodes_at(self, level: int) -> Dict[int, MDNode]:
        """Mapping ``index -> node`` of all nodes at ``level`` (1-based)."""
        return {
            index: node
            for index, node in self._nodes.items()
            if node.level == level
        }

    def level_size(self, level: int) -> int:
        """``|S_level|`` (1-based level)."""
        return self._level_sizes[level - 1]

    def potential_size(self) -> int:
        """Size of the potential product space ``|S_1| * .. * |S_L|``."""
        return math.prod(self._level_sizes)

    def substate_label(self, level: int, substate: int) -> object:
        """Presentation label of a substate (the index itself if unlabeled)."""
        if self._labels is None:
            return substate
        return self._labels[level - 1][substate]

    def level_labels(self, level: int) -> Optional[List[object]]:
        """All labels of a level, or ``None`` if unlabeled."""
        if self._labels is None:
            return None
        return list(self._labels[level - 1])

    def all_level_labels(self) -> Optional[List[List[object]]]:
        """Labels for every level, or ``None``."""
        if self._labels is None:
            return None
        return [list(labels) for labels in self._labels]

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check every MD structural invariant; raise on violation.

        * the root exists and is at level 1,
        * every node's level is within ``1..L``; terminal iff at level L,
        * formal sums reference only existing nodes at the next level,
        * entry substates fit within the level's local state space,
        * every node is reachable from the root.
        """
        num_levels = self.num_levels
        if self._root not in self._nodes:
            raise MatrixDiagramError("root index does not name a node")
        if self._nodes[self._root].level != 1:
            raise MatrixDiagramError("root node must be at level 1")
        for index, node in self._nodes.items():
            if not 1 <= node.level <= num_levels:
                raise MatrixDiagramError(
                    f"node {index} at invalid level {node.level}"
                )
            if node.terminal != (node.level == num_levels):
                raise MatrixDiagramError(
                    f"node {index} terminal flag inconsistent with level"
                )
            if node.max_substate() >= self.level_size(node.level):
                raise MatrixDiagramError(
                    f"node {index} has substate beyond |S_{node.level}| = "
                    f"{self.level_size(node.level)}"
                )
            for child in node.children():
                child_node = self._nodes.get(child)
                if child_node is None:
                    raise MatrixDiagramError(
                        f"node {index} references missing node {child}"
                    )
                if child_node.level != node.level + 1:
                    raise MatrixDiagramError(
                        f"node {index} (level {node.level}) references node "
                        f"{child} at level {child_node.level}, expected "
                        f"{node.level + 1}"
                    )
        unreachable = set(self._nodes) - set(self.reachable_nodes())
        if unreachable:
            raise MatrixDiagramError(
                f"nodes unreachable from the root: {sorted(unreachable)[:10]}"
            )

    def reachable_nodes(self) -> List[int]:
        """Node indices reachable from the root (the root included)."""
        seen = {self._root}
        frontier = [self._root]
        while frontier:
            index = frontier.pop()
            for child in self._nodes[index].children():
                if child not in seen and child in self._nodes:
                    seen.add(child)
                    frontier.append(child)
        return sorted(seen)

    # ------------------------------------------------------------------
    # quasi-reduction
    # ------------------------------------------------------------------

    def quasi_reduce(self) -> "MatrixDiagram":
        """Remove duplicate nodes level by level, bottom-up.

        Returns a new MD in which no two nodes of a level have equal
        structure (the paper's reducedness assumption, the basis of MD
        efficiency).  Node indices of surviving nodes are preserved;
        references to removed duplicates are redirected to the surviving
        representative (smallest index).
        """
        mapping: Dict[int, int] = {}
        new_nodes: Dict[int, MDNode] = {}
        for level in range(self.num_levels, 0, -1):
            by_key: Dict[Tuple, int] = {}
            for index in sorted(self.nodes_at(level)):
                node = self._nodes[index].remapped_children(mapping)
                key = node.structure_key()
                survivor = by_key.get(key)
                if survivor is None:
                    by_key[key] = index
                    new_nodes[index] = node
                else:
                    mapping[index] = survivor
        root = mapping.get(self._root, self._root)
        reduced = MatrixDiagram(
            self._level_sizes,
            new_nodes,
            root,
            level_state_labels=self._labels,
        )
        return reduced.trimmed()

    def trimmed(self) -> "MatrixDiagram":
        """A copy with nodes unreachable from the root removed."""
        reachable = set(self.reachable_nodes())
        if len(reachable) == len(self._nodes):
            return self
        return MatrixDiagram(
            self._level_sizes,
            {i: n for i, n in self._nodes.items() if i in reachable},
            self._root,
            level_state_labels=self._labels,
        )

    def is_reduced(self) -> bool:
        """True if no level contains two structurally equal nodes."""
        for level in range(1, self.num_levels + 1):
            keys = [
                node.structure_key() for node in self.nodes_at(level).values()
            ]
            if len(keys) != len(set(keys)):
                return False
        return True

    # ------------------------------------------------------------------
    # rebuilding
    # ------------------------------------------------------------------

    def with_nodes(
        self,
        replacements: Mapping[int, MDNode],
        level_sizes: Optional[Sequence[int]] = None,
        level_state_labels: Optional[Sequence[Sequence[object]]] = None,
    ) -> "MatrixDiagram":
        """A copy with some nodes replaced (and optionally new level sizes).

        Used by the compositional lumping algorithm, which "replaces each
        MD node with a possibly smaller one and does not create or delete
        any node" (Section 5).
        """
        nodes = dict(self._nodes)
        nodes.update(replacements)
        labels = level_state_labels
        if labels is None and level_sizes is None:
            labels = self._labels
        return MatrixDiagram(
            self._level_sizes if level_sizes is None else level_sizes,
            nodes,
            self._root,
            level_state_labels=labels,
        )

    def __repr__(self) -> str:
        per_level = [len(self.nodes_at(lv)) for lv in range(1, self.num_levels + 1)]
        return (
            f"MatrixDiagram(levels={self.num_levels}, "
            f"level_sizes={self._level_sizes}, nodes_per_level={per_level})"
        )
