"""Algebraic operations on matrix diagrams.

MDs are closed under transposition, scaling and addition, all computable
node-locally:

* **transpose** — transpose every node's entry positions; the represented
  matrix transposes because the Kronecker-style block structure commutes
  with transposition level by level.
* **scale** — multiply the root's coefficients (or terminal entries for a
  1-level MD).
* **add** — a fresh root whose entries are the formal-sum sums of the two
  roots' entries, with the operand MDs' nodes living side by side
  (indices are offset to avoid collisions), then quasi-reduced.

Transposition matters for lumping: *exact* lumpability of ``R`` is
*ordinary* lumpability of ``R^T`` (plus the exit-rate/initial-vector
conditions), which the test suite uses to cross-validate the two
implementations against each other.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import MatrixDiagramError
from repro.matrixdiagram.md import MatrixDiagram
from repro.matrixdiagram.node import MDNode


def transpose(md: MatrixDiagram) -> MatrixDiagram:
    """The MD of the transposed matrix (every node transposed in place)."""
    nodes: Dict[int, MDNode] = {}
    for index in md.node_indices():
        node = md.node(index)
        entries = {(c, r): entry for r, c, entry in node.entries()}
        nodes[index] = MDNode(node.level, entries, terminal=node.terminal)
    return MatrixDiagram(
        md.level_sizes,
        nodes,
        md.root_index,
        level_state_labels=md.all_level_labels(),
    )


def scale(md: MatrixDiagram, factor: float) -> MatrixDiagram:
    """The MD of ``factor * R`` (only the root is touched)."""
    root = md.root
    if root.terminal:
        entries = {
            (r, c): value * factor for r, c, value in root.entries()
        }
        new_root = MDNode(1, entries, terminal=True)
    else:
        entries = {
            (r, c): entry.scaled(factor) for r, c, entry in root.entries()
        }
        new_root = MDNode(1, entries, terminal=False)
    if factor == 0.0:
        # The root is now empty; lower nodes would be unreachable, so the
        # zero MD keeps only a trivial root chain.
        return MatrixDiagram(
            md.level_sizes,
            {md.root_index: new_root},
            md.root_index,
            level_state_labels=md.all_level_labels(),
        )
    return md.with_nodes({md.root_index: new_root})


def add(a: MatrixDiagram, b: MatrixDiagram) -> MatrixDiagram:
    """The MD of ``A + B`` for two MDs over the same level structure."""
    if a.level_sizes != b.level_sizes:
        raise MatrixDiagramError(
            f"cannot add MDs with level sizes {a.level_sizes} and "
            f"{b.level_sizes}"
        )
    offset = max(a.node_indices(), default=0) + 1
    nodes: Dict[int, MDNode] = {}
    for index in a.node_indices():
        nodes[index] = a.node(index)
    for index in b.node_indices():
        node = b.node(index)
        if node.terminal:
            shifted = node
        else:
            shifted = node.remapped_children(
                {child: child + offset for child in node.children()}
            )
        nodes[index + offset] = shifted

    root_a = a.root
    root_b = b.root
    if a.num_levels == 1:
        entries: Dict = {}
        for r, c, value in root_a.entries():
            entries[(r, c)] = entries.get((r, c), 0.0) + value
        for r, c, value in root_b.entries():
            entries[(r, c)] = entries.get((r, c), 0.0) + value
        new_root = MDNode(1, entries, terminal=True)
    else:
        entries = {}
        for r, c, entry in root_a.entries():
            entries[(r, c)] = entry
        for r, c, entry in root_b.entries():
            shifted = entry.remapped(
                {child: child + offset for child in entry.children()}
            )
            existing = entries.get((r, c))
            entries[(r, c)] = (
                shifted if existing is None else existing + shifted
            )
        new_root = MDNode(1, entries, terminal=False)

    new_root_index = max(nodes) + 1
    nodes[new_root_index] = new_root
    del nodes[a.root_index]
    del nodes[b.root_index + offset]
    result = MatrixDiagram(
        a.level_sizes,
        nodes,
        new_root_index,
        level_state_labels=a.all_level_labels(),
    )
    return result.trimmed().quasi_reduce()
