"""Vector products with MD-represented matrices, without flattening.

This is what makes MDs useful for numerical solution: the iteration vector
is the only object of global size; the matrix stays symbolic.  The product
recurses over MD paths, accumulating the product of path coefficients, and
vectorizes over the terminal level where the real-valued blocks live.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np
from scipy import sparse

from repro.errors import MatrixDiagramError, SolverError
from repro.matrixdiagram.md import MatrixDiagram


def _terminal_matrix(
    md: MatrixDiagram, index: int, cache: Dict[int, sparse.csr_matrix]
) -> sparse.csr_matrix:
    cached = cache.get(index)
    if cached is not None:
        return cached
    node = md.node(index)
    size = md.level_sizes[-1]
    rows, cols, data = [], [], []
    for r, c, value in node.entries():
        rows.append(r)
        cols.append(c)
        data.append(value)
    matrix = sparse.coo_matrix(
        (data, (rows, cols)), shape=(size, size)
    ).tocsr()
    cache[index] = matrix
    return matrix


def md_vector_multiply(
    md: MatrixDiagram,
    vector: np.ndarray,
    side: str = "left",
    terminal_cache: Optional[Dict[int, sparse.csr_matrix]] = None,
) -> np.ndarray:
    """``vector @ R`` (``side='left'``) or ``R @ vector`` (``side='right'``)
    where ``R`` is the matrix the MD represents over the potential space.

    The vector must have length ``md.potential_size()``.  Memory use is
    O(vector) plus the (small) terminal-block cache; the flat matrix is
    never materialized.
    """
    if side not in ("left", "right"):
        raise MatrixDiagramError(f"side must be 'left' or 'right', not {side!r}")
    x = np.asarray(vector, dtype=float)
    n = md.potential_size()
    if x.shape != (n,):
        raise MatrixDiagramError(
            f"vector has shape {x.shape}, expected ({n},)"
        )
    y = np.zeros(n)
    sizes = md.level_sizes
    strides = [math.prod(sizes[level:]) for level in range(len(sizes) + 1)]
    cache: Dict[int, sparse.csr_matrix] = (
        {} if terminal_cache is None else terminal_cache
    )
    terminal_size = sizes[-1]

    def recurse(index: int, row_offset: int, col_offset: int, scale: float) -> None:
        node = md.node(index)
        if node.terminal:
            block = _terminal_matrix(md, index, cache)
            if side == "left":
                segment = x[row_offset : row_offset + terminal_size]
                y[col_offset : col_offset + terminal_size] += scale * (
                    segment @ block
                )
            else:
                segment = x[col_offset : col_offset + terminal_size]
                y[row_offset : row_offset + terminal_size] += scale * (
                    block @ segment
                )
            return
        stride = strides[node.level]
        for r, c, formal_sum in node.entries():
            new_row = row_offset + r * stride
            new_col = col_offset + c * stride
            for child, coefficient in formal_sum.items():
                recurse(child, new_row, new_col, scale * coefficient)

    recurse(md.root_index, 0, 0, 1.0)
    return y


class MDOperator:
    """A reusable multiply context for one MD (caches terminal blocks).

    Also provides derived quantities iterative solvers need: row sums
    (exit rates when the MD represents ``R``) and a uniformized-step
    operator.
    """

    def __init__(self, md: MatrixDiagram) -> None:
        self.md = md
        self._terminal_cache: Dict[int, sparse.csr_matrix] = {}
        self._row_sums: Optional[np.ndarray] = None

    @property
    def size(self) -> int:
        """Dimension of the potential space."""
        return self.md.potential_size()

    def left(self, vector: np.ndarray) -> np.ndarray:
        """``vector @ R``."""
        return md_vector_multiply(
            self.md, vector, side="left", terminal_cache=self._terminal_cache
        )

    def right(self, vector: np.ndarray) -> np.ndarray:
        """``R @ vector``."""
        return md_vector_multiply(
            self.md, vector, side="right", terminal_cache=self._terminal_cache
        )

    def row_sums(self) -> np.ndarray:
        """``R(i, S)`` for every potential state ``i`` (cached)."""
        if self._row_sums is None:
            self._row_sums = self.right(np.ones(self.size))
        return self._row_sums

    def diagonal(self) -> np.ndarray:
        """``R(i, i)`` for every potential state, extracted symbolically.

        A global state lies on the diagonal iff every level's entry is
        diagonal, so the diagonal vector is assembled by recursing only
        through diagonal entries — cost proportional to the MD's diagonal
        support, not the potential space.
        """
        md = self.md
        sizes = md.level_sizes
        strides = [
            int(np.prod(sizes[level:])) for level in range(len(sizes) + 1)
        ]
        diagonal = np.zeros(self.size)

        def recurse(index: int, offset: int, scale: float) -> None:
            node = md.node(index)
            stride = strides[node.level]
            for r, c, entry in node.entries():
                if r != c:
                    continue
                position = offset + r * stride
                if node.terminal:
                    diagonal[position] += scale * entry
                else:
                    for child, coefficient in entry.items():
                        recurse(child, position, scale * coefficient)

        recurse(md.root_index, 0, 1.0)
        return diagonal

    def steady_state_jacobi(
        self,
        initial: np.ndarray,
        tol: float = 1e-12,
        max_iterations: int = 500_000,
        relaxation: float = 0.9,
    ) -> np.ndarray:
        """Stationary distribution by damped Jacobi sweeps on ``pi Q = 0``
        using only MD products and the symbolic diagonal.

        With ``Q = R - diag(rowsums)``, the Jacobi split uses the diagonal
        ``d = diag(R) - rowsums`` and off-diagonal action
        ``pi O = pi R - pi * diag(R)``; see
        :func:`repro.markov.solvers.steady_state_jacobi` for the damping
        rationale.  Same support requirements as
        :meth:`steady_state_power`.
        """
        pi = np.asarray(initial, dtype=float).copy()
        if pi.shape != (self.size,):
            raise SolverError(
                f"initial vector has shape {pi.shape}, expected ({self.size},)"
            )
        if abs(pi.sum() - 1.0) > 1e-9:
            raise SolverError("initial vector must sum to 1")
        if not 0 < relaxation <= 1:
            raise SolverError("relaxation must be in (0, 1]")
        diag_r = self.diagonal()
        q_diagonal = diag_r - self.row_sums()
        # States with zero Q-diagonal have no outgoing behaviour; they can
        # never receive Jacobi mass (their inflow is zero when the initial
        # support lies in a closed class), so they are simply excluded.
        support = q_diagonal != 0
        if np.any(pi[~support] > 0):
            raise SolverError(
                "initial mass on a state with zero exit rate; Jacobi "
                "needs a non-singular diagonal on the support"
            )
        for _iteration in range(1, max_iterations + 1):
            off = self.left(pi) - pi * diag_r
            step = np.zeros_like(pi)
            step[support] = -off[support] / q_diagonal[support]
            total = step.sum()
            if total <= 0:
                raise SolverError("MD jacobi iteration collapsed to zero")
            new_pi = (1.0 - relaxation) * pi + relaxation * (step / total)
            np.clip(new_pi, 0.0, None, out=new_pi)
            new_pi /= new_pi.sum()
            delta = float(np.abs(new_pi - pi).max())
            pi = new_pi
            if delta < tol:
                return pi
        raise SolverError(
            f"MD jacobi did not converge in {max_iterations} iterations"
        )

    def transient(
        self,
        initial: np.ndarray,
        time: float,
        tol: float = 1e-12,
    ) -> np.ndarray:
        """Transient distribution at ``time`` by uniformization, using only
        MD-vector products — the matrix is never materialized.

        ``pi(t) = sum_k Poisson(k; lambda t) * pi(0) P^k`` with
        ``pi P = pi + (pi R - pi * rowsums) / lambda``.
        """
        pi = np.asarray(initial, dtype=float).copy()
        if pi.shape != (self.size,):
            raise SolverError(
                f"initial vector has shape {pi.shape}, expected ({self.size},)"
            )
        if abs(pi.sum() - 1.0) > 1e-9:
            raise SolverError("initial vector must sum to 1")
        if time < 0:
            raise SolverError("time must be non-negative")
        if time == 0:
            return pi
        row_sums = self.row_sums()
        lam = 1.01 * float(row_sums.max()) if row_sums.max() > 0 else 1.0
        mean = lam * time
        result = np.zeros_like(pi)
        term = pi
        weight = np.exp(-mean)
        if weight == 0.0:
            raise SolverError(
                "uniformization mean too large for direct summation; "
                "split the horizon into shorter steps"
            )
        total_weight = weight
        k = 0
        while total_weight < 1.0 - tol:
            if weight > 0:
                result += weight * term
            term = term + (self.left(term) - term * row_sums) / lam
            k += 1
            weight *= mean / k
            total_weight += weight
            if k > 10_000_000:
                raise SolverError("poisson truncation failed to converge")
        result += weight * term
        total = result.sum()
        if total <= 0:
            raise SolverError("transient solution lost all probability mass")
        return result / total

    def steady_state_power(
        self,
        initial: np.ndarray,
        tol: float = 1e-12,
        max_iterations: int = 500_000,
    ) -> np.ndarray:
        """Stationary distribution by power iteration using only MD
        products: ``pi <- pi + (pi R - pi * rowsums) / lambda``.

        ``initial`` must be a distribution supported on (a subset of) one
        closed communicating class of the potential space; iteration never
        moves mass out of the class's closure, so unreachable potential
        states simply stay at probability zero.
        """
        pi = np.asarray(initial, dtype=float).copy()
        if pi.shape != (self.size,):
            raise SolverError(
                f"initial vector has shape {pi.shape}, expected ({self.size},)"
            )
        if abs(pi.sum() - 1.0) > 1e-9:
            raise SolverError("initial vector must sum to 1")
        row_sums = self.row_sums()
        lam = 1.01 * float(row_sums.max()) if row_sums.max() > 0 else 1.0
        for _iteration in range(1, max_iterations + 1):
            flow = self.left(pi)
            new_pi = pi + (flow - pi * row_sums) / lam
            # Clip tiny negatives from roundoff, renormalize.
            np.clip(new_pi, 0.0, None, out=new_pi)
            new_pi /= new_pi.sum()
            delta = float(np.abs(new_pi - pi).max())
            pi = new_pi
            if delta < tol:
                return pi
        raise SolverError(
            f"MD power iteration did not converge in {max_iterations} iterations"
        )
