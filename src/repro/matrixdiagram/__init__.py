"""Matrix diagrams (MDs): leveled symbolic representations of matrices.

An MD (Ciardo & Miner 1999; Section 3 of the paper) is a connected DAG with
a unique root whose nodes are matrices.  A node at level ``i < L`` has
entries that are *formal sums* ``sum_k c_k * R_{n_k}`` over nodes of level
``i + 1``; a node at the terminal level ``L`` has real entries.  The matrix
an MD represents is obtained by recursively substituting each child
reference with the (recursively expanded) child matrix — the "bottom-up
merge" of the paper.
"""

from repro.matrixdiagram.formal_sum import FormalSum
from repro.matrixdiagram.node import MDNode
from repro.matrixdiagram.md import MatrixDiagram
from repro.matrixdiagram.build import (
    md_from_flat_matrix,
    md_from_kronecker_terms,
    md_identity,
)
from repro.matrixdiagram.operations import (
    flatten,
    flatten_node,
    md_equal,
    merge_adjacent,
    merge_bottom_up,
    merge_top_down,
    regroup_levels,
)
from repro.matrixdiagram.multiply import md_vector_multiply, MDOperator
from repro.matrixdiagram.canonical import canonicalize
from repro.matrixdiagram.algebra import add as md_add, scale as md_scale, transpose as md_transpose
from repro.matrixdiagram.io import load_md, md_from_json, md_to_json, save_md
from repro.matrixdiagram.stats import MDStats, md_stats, to_dot

__all__ = [
    "FormalSum",
    "MDNode",
    "MatrixDiagram",
    "md_from_flat_matrix",
    "md_from_kronecker_terms",
    "md_identity",
    "flatten",
    "flatten_node",
    "md_equal",
    "merge_adjacent",
    "merge_bottom_up",
    "merge_top_down",
    "regroup_levels",
    "md_vector_multiply",
    "MDOperator",
    "canonicalize",
    "md_add",
    "md_scale",
    "md_transpose",
    "load_md",
    "md_from_json",
    "md_to_json",
    "save_md",
    "MDStats",
    "md_stats",
    "to_dot",
]
