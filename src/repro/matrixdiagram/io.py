"""Serialization of matrix diagrams to/from a JSON-compatible form.

The format is a plain dict (level sizes, labels, nodes with their entries)
so MDs — including lumped ones — can be stored, diffed, and shipped
between processes without pickling.  Round-tripping preserves the
represented matrix exactly and the node structure up to nothing (indices,
levels and entries are all kept verbatim).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.errors import MatrixDiagramError
from repro.matrixdiagram.formal_sum import FormalSum
from repro.matrixdiagram.md import MatrixDiagram
from repro.matrixdiagram.node import MDNode

FORMAT_VERSION = 1


def md_to_dict(md: MatrixDiagram) -> Dict:
    """A JSON-compatible dict describing the MD.

    Labels are stringified only if they are not already JSON-native; MDs
    built by this library use tuples of ints, which are stored as lists.
    """
    nodes = []
    for index in md.node_indices():
        node = md.node(index)
        if node.terminal:
            entries = [
                [r, c, value] for r, c, value in sorted(node.entries())
            ]
        else:
            entries = [
                [r, c, sorted(entry.items())]
                for r, c, entry in sorted(node.entries())
            ]
        nodes.append(
            {
                "index": index,
                "level": node.level,
                "terminal": node.terminal,
                "entries": entries,
            }
        )
    labels = md.all_level_labels()
    return {
        "format": FORMAT_VERSION,
        "level_sizes": list(md.level_sizes),
        "root": md.root_index,
        "labels": (
            [[list(l) if isinstance(l, tuple) else l for l in level]
             for level in labels]
            if labels is not None
            else None
        ),
        "nodes": nodes,
    }


def md_from_dict(data: Dict) -> MatrixDiagram:
    """Inverse of :func:`md_to_dict`."""
    if data.get("format") != FORMAT_VERSION:
        raise MatrixDiagramError(
            f"unsupported MD format {data.get('format')!r}"
        )
    nodes: Dict[int, MDNode] = {}
    for spec in data["nodes"]:
        if spec["terminal"]:
            entries = {
                (int(r), int(c)): float(v) for r, c, v in spec["entries"]
            }
        else:
            entries = {
                (int(r), int(c)): FormalSum(
                    {int(child): float(coeff) for child, coeff in terms}
                )
                for r, c, terms in spec["entries"]
            }
        nodes[int(spec["index"])] = MDNode(
            int(spec["level"]), entries, terminal=bool(spec["terminal"])
        )
    labels: Optional[List[List[object]]] = None
    if data.get("labels") is not None:
        labels = [
            [tuple(l) if isinstance(l, list) else l for l in level]
            for level in data["labels"]
        ]
    return MatrixDiagram(
        data["level_sizes"], nodes, data["root"], level_state_labels=labels
    )


def md_to_json(md: MatrixDiagram, indent: Optional[int] = None) -> str:
    """Serialize to a JSON string."""
    return json.dumps(md_to_dict(md), indent=indent)


def md_from_json(text: str) -> MatrixDiagram:
    """Deserialize from a JSON string."""
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise MatrixDiagramError(
            f"MD data is not valid JSON (truncated or corrupt?): {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise MatrixDiagramError(
            "MD data is not a JSON object (truncated or corrupt?)"
        )
    try:
        return md_from_dict(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise MatrixDiagramError(
            f"malformed MD data (truncated or corrupt?): {exc!r}"
        ) from exc


def save_md(md: MatrixDiagram, path: str) -> None:
    """Write an MD to a JSON file, atomically.

    The bytes go to a temporary file that is fsynced and renamed over
    ``path``, so a crash mid-save leaves either the previous file or the
    complete new one — never a torn, half-written MD.
    """
    from repro.robust.checkpoint import atomic_write_text

    atomic_write_text(path, md_to_json(md))


def load_md(path: str) -> MatrixDiagram:
    """Read an MD from a JSON file.

    A truncated or otherwise corrupt file raises a clear
    :class:`~repro.errors.MatrixDiagramError` instead of an arbitrary
    decoding failure.
    """
    with open(path) as handle:
        return md_from_json(handle.read())
