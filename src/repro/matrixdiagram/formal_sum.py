"""Formal sums: the entries of non-terminal matrix diagram nodes.

A formal sum ``sum_k c_k * R_{n_k}`` is stored as a mapping from child node
index ``n_k`` to real coefficient ``c_k``; zero coefficients are dropped on
construction, so an empty formal sum denotes the zero matrix.

Formal sums are immutable and hashable.  The hash/equality is based on the
*quantized* coefficients (see :func:`repro.util.numeric.quantize`), so sums
whose coefficients agree up to floating-point accumulation noise compare
equal — exactly the equality the paper's key function ``K`` needs when it
compares "sets of (coefficient, node index) pairs" (Section 4).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple

from repro.util.numeric import quantize


class FormalSum:
    """An immutable linear combination of next-level MD nodes."""

    __slots__ = ("_terms", "_signature")

    def __init__(self, terms: Mapping[int, float] = ()) -> None:
        cleaned: Dict[int, float] = {}
        items = terms.items() if isinstance(terms, Mapping) else terms
        for child, coefficient in items:
            coefficient = float(coefficient)
            if coefficient != 0.0:
                cleaned[int(child)] = cleaned.get(int(child), 0.0) + coefficient
        # Re-drop terms that cancelled during accumulation.
        self._terms: Dict[int, float] = {
            c: v for c, v in cleaned.items() if v != 0.0
        }
        self._signature: Tuple[Tuple[int, float], ...] = tuple(
            sorted((c, quantize(v)) for c, v in self._terms.items())
        )

    @classmethod
    def of(cls, child: int, coefficient: float = 1.0) -> "FormalSum":
        """The single-term sum ``coefficient * R_child``."""
        return cls({child: coefficient})

    @classmethod
    def zero(cls) -> "FormalSum":
        """The empty sum (zero matrix)."""
        return cls()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    def items(self) -> Iterator[Tuple[int, float]]:
        """Iterate ``(child_index, coefficient)`` pairs (unordered)."""
        return iter(self._terms.items())

    def children(self) -> Tuple[int, ...]:
        """Child node indices referenced by this sum, sorted."""
        return tuple(sorted(self._terms))

    def coefficient(self, child: int) -> float:
        """Coefficient of ``child`` (0.0 if absent)."""
        return self._terms.get(child, 0.0)

    def is_zero(self) -> bool:
        """True if the sum has no terms."""
        return not self._terms

    def __len__(self) -> int:
        return len(self._terms)

    @property
    def signature(self) -> Tuple[Tuple[int, float], ...]:
        """Sorted, quantized ``(child, coefficient)`` tuple.

        This is the hashable value the refinement algorithm's key function
        builds its comparison keys from.
        """
        return self._signature

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------

    def __add__(self, other: "FormalSum") -> "FormalSum":
        if not isinstance(other, FormalSum):
            return NotImplemented
        merged = dict(self._terms)
        for child, coefficient in other._terms.items():
            merged[child] = merged.get(child, 0.0) + coefficient
        return FormalSum(merged)

    def scaled(self, factor: float) -> "FormalSum":
        """The sum with every coefficient multiplied by ``factor``."""
        if factor == 0.0:
            return FormalSum.zero()
        return FormalSum({c: v * factor for c, v in self._terms.items()})

    def remapped(self, mapping: Mapping[int, int]) -> "FormalSum":
        """Rename child indices through ``mapping``.

        Children mapped to the same new index have their coefficients
        summed — this is what happens when quasi-reduction merges duplicate
        child nodes.
        """
        remapped: Dict[int, float] = {}
        for child, coefficient in self._terms.items():
            new_child = mapping.get(child, child)
            remapped[new_child] = remapped.get(new_child, 0.0) + coefficient
        return FormalSum(remapped)

    @staticmethod
    def accumulate(sums: Iterable["FormalSum"]) -> "FormalSum":
        """Sum an iterable of formal sums."""
        merged: Dict[int, float] = {}
        for formal_sum in sums:
            for child, coefficient in formal_sum._terms.items():
                merged[child] = merged.get(child, 0.0) + coefficient
        return FormalSum(merged)

    # ------------------------------------------------------------------
    # equality / hashing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FormalSum):
            return NotImplemented
        return self._signature == other._signature

    def __hash__(self) -> int:
        return hash(self._signature)

    def __repr__(self) -> str:
        if not self._terms:
            return "FormalSum(0)"
        body = " + ".join(
            f"{v:g}*R{c}" for c, v in sorted(self._terms.items())
        )
        return f"FormalSum({body})"
