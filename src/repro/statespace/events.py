"""Event models: the compositional form every front end compiles to.

An :class:`EventModel` is a set of levels (each with a finite local state
space) plus events.  An event acts on a subset of levels; on each level it
touches, it maps a local state to weighted successor options; levels it
does not touch are left unchanged.  The rate of a global transition is the
event weight times the product of the chosen options' factors — exactly the
structure of a stochastic automata network, and exactly what converts
losslessly to a Kronecker descriptor and hence to a matrix diagram.

Semantics of an event ``e`` in global state ``s = (s_1, .., s_L)``:

* if some touched level has no option for its local state, ``e`` is
  disabled in ``s``;
* otherwise each combination of per-level options ``(t_i, f_i)`` yields a
  transition ``s -> t`` with rate ``weight(e) * prod_i f_i``.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ModelError, StateSpaceError
from repro.kronecker.descriptor import KroneckerDescriptor
from repro.matrixdiagram.md import MatrixDiagram
from repro.kronecker.to_md import descriptor_to_md


class LevelSpace:
    """An ordered local state space with label <-> index lookup."""

    def __init__(self, name: str, labels: Sequence[Hashable]) -> None:
        if not labels:
            raise StateSpaceError(f"level {name!r} has an empty state space")
        self.name = name
        self._labels: List[Hashable] = list(labels)
        self._index: Dict[Hashable, int] = {
            label: i for i, label in enumerate(self._labels)
        }
        if len(self._index) != len(self._labels):
            raise StateSpaceError(f"level {name!r} has duplicate state labels")

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._index

    def index(self, label: Hashable) -> int:
        """Index of a label; raises if unknown."""
        try:
            return self._index[label]
        except KeyError:
            raise StateSpaceError(
                f"unknown state {label!r} in level {self.name!r}"
            ) from None

    def label(self, index: int) -> Hashable:
        """Label at ``index``."""
        return self._labels[index]

    @property
    def labels(self) -> List[Hashable]:
        """All labels in index order (copy)."""
        return list(self._labels)

    def __repr__(self) -> str:
        return f"LevelSpace({self.name!r}, size={len(self)})"


#: Per-level effect: local state index -> list of (target index, factor>0).
LevelEffect = Dict[int, List[Tuple[int, float]]]


class Event:
    """One event of an :class:`EventModel`.

    ``effects`` maps 1-based level numbers to :data:`LevelEffect` tables.
    Levels not in ``effects`` are untouched (identity).  A local state
    missing from a touched level's table disables the event there.
    """

    def __init__(
        self,
        name: str,
        weight: float,
        effects: Mapping[int, LevelEffect],
    ) -> None:
        if weight < 0:
            raise ModelError(f"event {name!r} has negative weight {weight}")
        self.name = name
        self.weight = float(weight)
        cleaned: Dict[int, LevelEffect] = {}
        for level, table in effects.items():
            level_table: LevelEffect = {}
            for source, options in table.items():
                kept = [
                    (int(t), float(f)) for (t, f) in options if float(f) != 0.0
                ]
                if any(f < 0 for _t, f in kept):
                    raise ModelError(
                        f"event {name!r} has a negative factor at level {level}"
                    )
                if kept:
                    level_table[int(source)] = kept
            cleaned[int(level)] = level_table
        self.effects = cleaned

    def levels(self) -> Tuple[int, ...]:
        """The levels this event touches, sorted."""
        return tuple(sorted(self.effects))

    def top_level(self) -> int:
        """Highest (closest-to-root) level touched; used by saturation."""
        return min(self.effects) if self.effects else 1

    def __repr__(self) -> str:
        return f"Event({self.name!r}, weight={self.weight}, levels={self.levels()})"


class EventModel:
    """Levels + events + initial state: a complete compositional model."""

    def __init__(
        self,
        levels: Sequence[LevelSpace],
        events: Sequence[Event],
        initial_state: Sequence[Hashable],
    ) -> None:
        if not levels:
            raise ModelError("an event model needs at least one level")
        self.levels: List[LevelSpace] = list(levels)
        self.events: List[Event] = list(events)
        if len(initial_state) != len(self.levels):
            raise ModelError(
                f"initial state has {len(initial_state)} components, "
                f"expected {len(self.levels)}"
            )
        self.initial_state: Tuple[int, ...] = tuple(
            level.index(label) for level, label in zip(self.levels, initial_state)
        )
        for event in self.events:
            self._check_event(event)

    def _check_event(self, event: Event) -> None:
        for level, table in event.effects.items():
            if not 1 <= level <= len(self.levels):
                raise ModelError(
                    f"event {event.name!r} touches invalid level {level}"
                )
            size = len(self.levels[level - 1])
            for source, options in table.items():
                if source >= size:
                    raise ModelError(
                        f"event {event.name!r}: source {source} outside "
                        f"level {level} of size {size}"
                    )
                for target, _factor in options:
                    if target >= size:
                        raise ModelError(
                            f"event {event.name!r}: target {target} outside "
                            f"level {level} of size {size}"
                        )

    # ------------------------------------------------------------------
    # sizes / encodings
    # ------------------------------------------------------------------

    @property
    def num_levels(self) -> int:
        """Number of levels ``L``."""
        return len(self.levels)

    def level_sizes(self) -> Tuple[int, ...]:
        """Sizes of the local state spaces."""
        return tuple(len(level) for level in self.levels)

    def potential_size(self) -> int:
        """Size of the potential product space."""
        return math.prod(self.level_sizes())

    def encode(self, state: Sequence[int]) -> int:
        """Mixed-radix flat index of a global state (top level most
        significant, matching the MD flattening order)."""
        index = 0
        for digit, level in zip(state, self.levels):
            index = index * len(level) + digit
        return index

    def decode(self, index: int) -> Tuple[int, ...]:
        """Inverse of :meth:`encode`."""
        digits = []
        for level in reversed(self.levels):
            digits.append(index % len(level))
            index //= len(level)
        return tuple(reversed(digits))

    def state_labels(self, state: Sequence[int]) -> Tuple[Hashable, ...]:
        """The label tuple of a global state given by indices."""
        return tuple(
            level.label(s) for level, s in zip(self.levels, state)
        )

    # ------------------------------------------------------------------
    # transition semantics
    # ------------------------------------------------------------------

    def successors(
        self, state: Sequence[int]
    ) -> List[Tuple[Tuple[int, ...], float]]:
        """All transitions out of ``state`` as ``(target, rate)`` pairs.

        Multiple events (or option combinations) reaching the same target
        are *not* merged here; the rate matrix construction sums them.
        """
        out: List[Tuple[Tuple[int, ...], float]] = []
        state = tuple(state)
        for event in self.events:
            out.extend(self._fire(event, state))
        return out

    def _fire(
        self, event: Event, state: Tuple[int, ...]
    ) -> Iterator[Tuple[Tuple[int, ...], float]]:
        touched = event.levels()
        per_level_options: List[List[Tuple[int, float]]] = []
        for level in touched:
            options = event.effects[level].get(state[level - 1])
            if not options:
                return
            per_level_options.append(options)
        combos: List[Tuple[Tuple[int, ...], float]] = [((), 1.0)]
        for options in per_level_options:
            combos = [
                (chosen + (target,), factor * option_factor)
                for chosen, factor in combos
                for target, option_factor in options
            ]
        for chosen, factor in combos:
            target_state = list(state)
            for level, target in zip(touched, chosen):
                target_state[level - 1] = target
            rate = event.weight * factor
            if rate > 0:
                yield tuple(target_state), rate

    # ------------------------------------------------------------------
    # representations
    # ------------------------------------------------------------------

    def kronecker_descriptor(self) -> KroneckerDescriptor:
        """The descriptor ``R = sum_e weight_e * W_1^e (x) .. (x) W_L^e``
        with ``W_i^e[s, t] = sum of factors`` and identity on untouched
        levels."""
        descriptor = KroneckerDescriptor(self.level_sizes())
        for event in self.events:
            factors: List[Optional[Dict[Tuple[int, int], float]]] = [
                None
            ] * self.num_levels
            for level, table in event.effects.items():
                entries: Dict[Tuple[int, int], float] = {}
                for source, options in table.items():
                    for target, factor in options:
                        key = (source, target)
                        entries[key] = entries.get(key, 0.0) + factor
                factors[level - 1] = entries
            descriptor.add_term(event.weight, factors)
        return descriptor

    def to_md(self, labeled: bool = True) -> MatrixDiagram:
        """The (reduced) MD of the model's rate matrix ``R``."""
        labels = (
            [level.labels for level in self.levels] if labeled else None
        )
        return descriptor_to_md(
            self.kronecker_descriptor(), level_state_labels=labels
        )

    def restricted_events(
        self, allowed: Sequence[Iterable[int]]
    ) -> "EventModel":
        """A copy whose events are restricted to the given per-level allowed
        local states (options leading outside are dropped)."""
        allowed_sets = [set(states) for states in allowed]
        if len(allowed_sets) != self.num_levels:
            raise ModelError("need one allowed set per level")
        new_events = []
        for event in self.events:
            effects: Dict[int, LevelEffect] = {}
            for level, table in event.effects.items():
                keep: LevelEffect = {}
                for source, options in table.items():
                    if source not in allowed_sets[level - 1]:
                        continue
                    kept = [
                        (t, f)
                        for t, f in options
                        if t in allowed_sets[level - 1]
                    ]
                    if kept:
                        keep[source] = kept
                effects[level] = keep
            new_events.append(Event(event.name, event.weight, effects))
        initial_labels = self.state_labels(self.initial_state)
        return EventModel(self.levels, new_events, initial_labels)

    def __repr__(self) -> str:
        return (
            f"EventModel(levels={self.level_sizes()}, "
            f"events={len(self.events)})"
        )


def project_event_model(
    model: EventModel, supports: Sequence[Sequence[int]]
) -> EventModel:
    """Shrink each level's local state space to the given substates.

    ``supports[i]`` lists the level-(i+1) substates to keep (typically the
    reachable projections from a :class:`ReachabilityResult`).  Events are
    remapped to the compacted indices; options involving removed substates
    are dropped.  The model's initial state must survive the projection.

    This realizes the paper's setting in which each MD level's index set is
    exactly the projection of the reachable state space.
    """
    if len(supports) != model.num_levels:
        raise ModelError("need one support per level")
    keep: List[List[int]] = [sorted(set(s)) for s in supports]
    position: List[Dict[int, int]] = [
        {substate: i for i, substate in enumerate(kept)} for kept in keep
    ]
    new_levels = [
        LevelSpace(level.name, [level.label(s) for s in kept])
        for level, kept in zip(model.levels, keep)
    ]
    for level_number, (state, table) in enumerate(
        zip(model.initial_state, position), start=1
    ):
        if state not in table:
            raise StateSpaceError(
                f"initial substate of level {level_number} was projected away"
            )
    new_events = []
    for event in model.events:
        effects: Dict[int, LevelEffect] = {}
        for level, table in event.effects.items():
            mapping = position[level - 1]
            new_table: LevelEffect = {}
            for source, options in table.items():
                new_source = mapping.get(source)
                if new_source is None:
                    continue
                kept_options = [
                    (mapping[target], factor)
                    for target, factor in options
                    if target in mapping
                ]
                if kept_options:
                    new_table[new_source] = kept_options
            effects[level] = new_table
        new_events.append(Event(event.name, event.weight, effects))
    initial_labels = model.state_labels(model.initial_state)
    return EventModel(new_levels, new_events, initial_labels)
