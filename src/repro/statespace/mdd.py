"""Multi-valued decision diagrams (MDDs) for sets of global states.

An MDD here represents a set of tuples ``(s_1, .., s_L)`` with ``s_i`` in
level i's local state space — the state-set companion of the matrix
diagram.  Nodes are hash-consed in an :class:`MDDManager`, so set equality
is pointer equality and fixpoint detection in reachability is O(1).

The layout matches the MD: level 1 at the top.  Node 0 is the empty set
(FALSE), node 1 the terminal TRUE.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from repro.errors import StateSpaceError

FALSE = 0
TRUE = 1


class MDDManager:
    """Owner of all MDD nodes for one sequence of level sizes."""

    def __init__(self, level_sizes: Sequence[int]) -> None:
        if not level_sizes:
            raise StateSpaceError("MDD needs at least one level")
        self.level_sizes = tuple(int(s) for s in level_sizes)
        self.num_levels = len(self.level_sizes)
        # node id -> (level, ((substate, child), ..)) sorted by substate
        self._nodes: Dict[int, Tuple[int, Tuple[Tuple[int, int], ...]]] = {}
        self._unique: Dict[Tuple[int, Tuple[Tuple[int, int], ...]], int] = {}
        self._next_id = 2
        self._count_cache: Dict[int, int] = {FALSE: 0, TRUE: 1}

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------

    def make(self, level: int, children: Mapping[int, int]) -> int:
        """Intern a node at ``level`` with the given substate -> child map.

        FALSE children are dropped; a node with no children collapses to
        FALSE.  (No TRUE-collapse across levels: tuples have fixed length,
        so a full node is still a node.)
        """
        items = tuple(
            sorted((s, c) for s, c in children.items() if c != FALSE)
        )
        if not items:
            return FALSE
        size = self.level_sizes[level - 1]
        for substate, child in items:
            if not 0 <= substate < size:
                raise StateSpaceError(
                    f"substate {substate} out of range at level {level}"
                )
            expected_child_level = level + 1
            if expected_child_level > self.num_levels:
                if child != TRUE:
                    raise StateSpaceError(
                        "bottom-level children must be TRUE"
                    )
            elif child != FALSE and child != TRUE:
                child_level = self._nodes[child][0]
                if child_level != expected_child_level:
                    raise StateSpaceError(
                        f"child at level {child_level}, expected "
                        f"{expected_child_level}"
                    )
            elif child == TRUE and expected_child_level <= self.num_levels:
                raise StateSpaceError(
                    "TRUE child above the bottom level"
                )
        key = (level, items)
        existing = self._unique.get(key)
        if existing is not None:
            return existing
        node_id = self._next_id
        self._next_id += 1
        self._nodes[node_id] = key
        self._unique[key] = node_id
        return node_id

    def children(self, node: int) -> Tuple[Tuple[int, int], ...]:
        """The ``(substate, child)`` pairs of a node."""
        return self._nodes[node][1]

    def level_of(self, node: int) -> int:
        """The level of a (non-terminal) node."""
        return self._nodes[node][0]

    @property
    def num_nodes(self) -> int:
        """Number of interned nodes (excluding terminals)."""
        return len(self._nodes)

    # ------------------------------------------------------------------
    # set construction
    # ------------------------------------------------------------------

    def from_tuples(self, tuples: Sequence[Sequence[int]]) -> int:
        """The MDD of an explicit collection of global states."""
        unique = sorted({tuple(t) for t in tuples})
        for t in unique:
            if len(t) != self.num_levels:
                raise StateSpaceError(
                    f"tuple {t} has wrong length for {self.num_levels} levels"
                )
        return self._from_sorted(unique, 1)

    def _from_sorted(self, tuples: List[Tuple[int, ...]], level: int) -> int:
        if not tuples:
            return FALSE
        if level > self.num_levels:
            return TRUE
        children: Dict[int, int] = {}
        start = 0
        while start < len(tuples):
            substate = tuples[start][level - 1]
            end = start
            while end < len(tuples) and tuples[end][level - 1] == substate:
                end += 1
            children[substate] = self._from_sorted(
                [t for t in tuples[start:end]], level + 1
            ) if level < self.num_levels else TRUE
            start = end
        return self.make(level, children)

    def singleton(self, state: Sequence[int]) -> int:
        """The MDD containing exactly one state."""
        return self.from_tuples([tuple(state)])

    # ------------------------------------------------------------------
    # set operations
    # ------------------------------------------------------------------

    def union(self, a: int, b: int) -> int:
        """Set union of two MDDs (must be same-level roots)."""
        return self._union(a, b, {})

    def _union(self, a: int, b: int, memo: Dict[Tuple[int, int], int]) -> int:
        if a == b:
            return a
        if a == FALSE:
            return b
        if b == FALSE:
            return a
        if a == TRUE or b == TRUE:
            return TRUE
        key = (a, b) if a < b else (b, a)
        cached = memo.get(key)
        if cached is not None:
            return cached
        level = self.level_of(a)
        if level != self.level_of(b):
            raise StateSpaceError("union of nodes at different levels")
        merged: Dict[int, int] = dict(self.children(a))
        for substate, child in self.children(b):
            existing = merged.get(substate, FALSE)
            merged[substate] = self._union(existing, child, memo)
        result = self.make(level, merged)
        memo[key] = result
        return result

    def intersect(self, a: int, b: int) -> int:
        """Set intersection of two MDDs."""
        return self._intersect(a, b, {})

    def _intersect(
        self, a: int, b: int, memo: Dict[Tuple[int, int], int]
    ) -> int:
        if a == FALSE or b == FALSE:
            return FALSE
        if a == b:
            return a
        if a == TRUE:
            return b
        if b == TRUE:
            return a
        key = (a, b) if a < b else (b, a)
        cached = memo.get(key)
        if cached is not None:
            return cached
        level = self.level_of(a)
        if level != self.level_of(b):
            raise StateSpaceError("intersection of nodes at different levels")
        b_children = dict(self.children(b))
        merged: Dict[int, int] = {}
        for substate, child in self.children(a):
            other = b_children.get(substate, FALSE)
            merged[substate] = self._intersect(child, other, memo)
        result = self.make(level, merged)
        memo[key] = result
        return result

    def contains(self, node: int, state: Sequence[int]) -> bool:
        """Membership test."""
        current = node
        for substate in state:
            if current == FALSE:
                return False
            if current == TRUE:
                raise StateSpaceError("state longer than MDD depth")
            children = dict(self.children(current))
            current = children.get(substate, FALSE)
        return current == TRUE

    def count(self, node: int) -> int:
        """Number of states in the set."""
        cached = self._count_cache.get(node)
        if cached is not None:
            return cached
        total = sum(
            self.count(child) for _substate, child in self.children(node)
        )
        self._count_cache[node] = total
        return total

    def tuples(self, node: int) -> Iterator[Tuple[int, ...]]:
        """Enumerate the set's states in lexicographic order."""
        if node == FALSE:
            return
        if node == TRUE:
            yield ()
            return
        for substate, child in self.children(node):
            for suffix in self.tuples(child):
                yield (substate,) + suffix

    def level_support(self, node: int, level: int) -> List[int]:
        """Substates of ``level`` that occur in at least one member state
        (the projection of the set onto that level)."""
        seen: set = set()
        visited: set = set()

        def walk(current: int, current_level: int) -> None:
            if current in (FALSE, TRUE) or current in visited:
                return
            visited.add(current)
            if current_level == level:
                seen.update(s for s, _c in self.children(current))
                return
            for _substate, child in self.children(current):
                walk(child, current_level + 1)

        walk(node, 1)
        return sorted(seen)

    def map_levels(
        self,
        node: int,
        mappings: Sequence[Mapping[int, int]],
        target: "MDDManager",
    ) -> int:
        """Apply per-level substate maps and rebuild the set in ``target``.

        ``mappings[i]`` maps level-(i+1) substates to target substates;
        substates missing from a map are dropped.  Used to (a) re-express
        a reachable set in projected (support-compacted) coordinates and
        (b) project a state set through per-level lumping partitions —
        both without ever enumerating the set.
        """
        if len(mappings) != self.num_levels:
            raise StateSpaceError("need one mapping per level")
        memo: Dict[int, int] = {}

        def walk(current: int, level: int) -> int:
            if current in (FALSE, TRUE):
                return current
            cached = memo.get(current)
            if cached is not None:
                return cached
            mapping = mappings[level - 1]
            children: Dict[int, int] = {}
            for substate, child in self.children(current):
                target_substate = mapping.get(substate)
                if target_substate is None:
                    continue
                mapped_child = walk(child, level + 1)
                if mapped_child == FALSE:
                    continue
                existing = children.get(target_substate, FALSE)
                children[target_substate] = target._union(
                    existing, mapped_child, {}
                )
            result = target.make(level, children)
            memo[current] = result
            return result

        return walk(node, 1)

    # ------------------------------------------------------------------
    # relational image
    # ------------------------------------------------------------------

    def image(self, node: int, event) -> int:
        """The set of states reachable from ``node`` by firing ``event``
        once (:class:`repro.statespace.events.Event` semantics; factors are
        ignored beyond being positive)."""
        memo: Dict[int, int] = {}

        def walk(current: int, level: int) -> int:
            if current == FALSE:
                return FALSE
            if current == TRUE:
                return TRUE
            cached = memo.get(current)
            if cached is not None:
                return cached
            table = event.effects.get(level)
            result_children: Dict[int, int] = {}
            for substate, child in self.children(current):
                child_image = walk(child, level + 1)
                if child_image == FALSE:
                    continue
                if table is None:
                    merged = result_children.get(substate, FALSE)
                    result_children[substate] = self._union(
                        merged, child_image, {}
                    )
                else:
                    for target, factor in table.get(substate, ()):
                        if factor <= 0:
                            continue
                        merged = result_children.get(target, FALSE)
                        result_children[target] = self._union(
                            merged, child_image, {}
                        )
            result = self.make(level, result_children)
            memo[current] = result
            return result

        return walk(node, 1)
