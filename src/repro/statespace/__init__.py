"""Compositional state spaces: event models, MDDs and reachability."""

from repro.statespace.events import Event, EventModel, LevelSpace
from repro.statespace.mdd import MDDManager
from repro.statespace.simulate import (
    Trajectory,
    estimate_reward,
    estimate_stationary,
    simulate,
)
from repro.statespace.reachability import (
    ReachabilityResult,
    SymbolicStateSpace,
    reachable_bfs,
    reachable_mdd,
    reachable_saturation,
    symbolic_reachability,
)

__all__ = [
    "Event",
    "EventModel",
    "LevelSpace",
    "MDDManager",
    "ReachabilityResult",
    "reachable_bfs",
    "reachable_mdd",
    "reachable_saturation",
    "SymbolicStateSpace",
    "symbolic_reachability",
    "Trajectory",
    "simulate",
    "estimate_stationary",
    "estimate_reward",
]
