"""Reachability analysis for event models.

Two engines produce the same result:

* :func:`reachable_bfs` — explicit breadth-first search over encoded
  states.  Fast for up to a few hundred thousand states.
* :func:`reachable_mdd` — symbolic fixpoint on MDDs with per-event image
  computation (chaining).  Keeps the set symbolic, as the paper's symbolic
  state-space generator [10] does.

Both return a :class:`ReachabilityResult`, which also knows how to
materialize the reachable-restricted CTMC (for flat verification and the
unlumped baseline) and the per-level projections (the paper's per-level
state-space sizes ``S1, S2, S3`` in Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import StateSpaceError
from repro.markov.ctmc import CTMC
from repro.robust import budgets, checkpoint, faults
from repro.robust.budgets import BudgetExceeded
from repro.robust.pool import parallel_config
from repro.robust.shard import sharded_reachable_states
from repro.statespace.events import EventModel
from repro.statespace.mdd import MDDManager


def _reach_guard(model: EventModel, seeds) -> dict:
    """Snapshot guard tying a reachability checkpoint to its problem:
    the level sizes plus a digest of the seed set."""
    return {
        "level_sizes": list(model.level_sizes()),
        "seeds": checkpoint.digest(repr(sorted(seeds)).encode("utf-8")),
    }


@dataclass
class ReachabilityResult:
    """The reachable state space of an event model."""

    model: EventModel
    states: List[Tuple[int, ...]]  # sorted lexicographically
    engine: str
    _index: Optional[Dict[Tuple[int, ...], int]] = field(
        default=None, repr=False
    )

    @property
    def num_states(self) -> int:
        """Number of reachable states."""
        return len(self.states)

    def index_of(self, state: Sequence[int]) -> int:
        """Dense index of a reachable state; raises if unreachable."""
        if self._index is None:
            self._index = {s: i for i, s in enumerate(self.states)}
        try:
            return self._index[tuple(state)]
        except KeyError:
            raise StateSpaceError(f"state {tuple(state)} is not reachable") from None

    def level_sizes(self) -> Tuple[int, ...]:
        """Number of *reachable* substates per level (the projections)."""
        supports = self.level_supports()
        return tuple(len(support) for support in supports)

    def level_supports(self) -> List[List[int]]:
        """Per level, the sorted substates that occur in a reachable state."""
        supports: List[set] = [set() for _ in range(self.model.num_levels)]
        for state in self.states:
            for level, substate in enumerate(state):
                supports[level].add(substate)
        return [sorted(support) for support in supports]

    def to_ctmc(self) -> CTMC:
        """The CTMC over the reachable states (densely indexed, labeled by
        the per-level label tuples)."""
        if self._index is None:
            self._index = {s: i for i, s in enumerate(self.states)}
        triples = []
        for source_index, state in enumerate(self.states):
            for target, rate in self.model.successors(state):
                triples.append((source_index, self._index[target], rate))
        labels = [self.model.state_labels(state) for state in self.states]
        return CTMC.from_transitions(
            len(self.states), triples, state_labels=labels
        )

    def potential_indices(self) -> List[int]:
        """Mixed-radix flat indices of the reachable states within the
        potential product space (for restricting flattened MDs)."""
        return [self.model.encode(state) for state in self.states]


def reachable_bfs(
    model: EventModel,
    initial: Optional[Sequence[Tuple[int, ...]]] = None,
    max_states: Optional[int] = None,
    parallel=None,
) -> ReachabilityResult:
    """Explicit BFS from the model's initial state (or a given seed set).

    Cooperates with active :mod:`repro.robust.budgets`: the state count
    is checked as states are *discovered*, so a state budget fires
    promptly instead of after full exploration.

    ``parallel`` (an int or :class:`~repro.robust.pool.ParallelConfig`)
    shards each frontier round across a fault-tolerant worker pool; the
    result — and the checkpoint payloads, written under the same key —
    are bitwise-identical to the serial engine's, so a killed parallel
    run can resume serially and vice versa.
    """
    faults.check("reachability.bfs")
    cfg = parallel_config(parallel)
    if initial is None:
        seeds = [model.initial_state]
    else:
        seeds = [tuple(state) for state in initial]
    seen = set(seeds)
    frontier = list(seeds)
    ck = checkpoint.active()
    key = guard = None
    if ck is not None:
        key = ck.sequence_key("reachability.bfs")
        guard = _reach_guard(model, seeds)
        record = ck.load(key, guard=guard)
        if record is not None:
            payload = record["payload"]
            if record["complete"]:
                states = [tuple(s) for s in payload["states"]]
                return ReachabilityResult(model, states, engine="bfs")
            seen = {tuple(s) for s in payload["seen"]}
            frontier = [tuple(s) for s in payload["frontier"]]
    if cfg is not None:
        states = sharded_reachable_states(
            model,
            seen,
            frontier,
            cfg,
            ck=ck,
            key=key,
            guard=guard,
            max_states=max_states,
        )
        if ck is not None:
            ck.save(key, {"states": states}, guard=guard, complete=True)
        return ReachabilityResult(model, states, engine="bfs")
    # position/next_frontier are kept consistent at every budget hook so
    # the BudgetExceeded handler can snapshot the unprocessed frontier.
    position = 0
    next_frontier: List[Tuple[int, ...]] = []
    try:
        budgets.check_states(len(seen), stage="reachability")
        while frontier:
            position = 0
            next_frontier = []
            budgets.charge_iterations(1, stage="reachability")
            for position, state in enumerate(frontier):
                for target, _rate in model.successors(state):
                    if target not in seen:
                        seen.add(target)
                        next_frontier.append(target)
                        budgets.check_states(len(seen), stage="reachability")
                        if max_states is not None and len(seen) > max_states:
                            raise StateSpaceError(
                                f"state space exceeds max_states={max_states}"
                            )
            frontier = next_frontier
            position = 0
            next_frontier = []
            if ck is not None and ck.tick(key):
                ck.save(
                    key,
                    {"seen": sorted(seen), "frontier": sorted(frontier)},
                    guard=guard,
                )
    except BudgetExceeded:
        if ck is not None:
            # Re-expanding the in-flight state on resume is idempotent:
            # its already-recorded successors are in ``seen``.
            remaining = frontier[position:] + next_frontier
            ck.save(
                key,
                {"seen": sorted(seen), "frontier": sorted(remaining)},
                guard=guard,
            )
        raise
    states = sorted(seen)
    if ck is not None:
        ck.save(key, {"states": states}, guard=guard, complete=True)
    return ReachabilityResult(model, states, engine="bfs")


def reachable_mdd(
    model: EventModel,
    manager: Optional[MDDManager] = None,
    return_mdd: bool = False,
    parallel=None,
):
    """Symbolic fixpoint: ``S <- S U image(S, e)`` for all events until
    stable (event chaining).  Returns a :class:`ReachabilityResult`, plus
    the final MDD id and manager when ``return_mdd`` is true.

    With ``parallel``, the reachable set is computed by the sharded
    explicit frontier expansion instead of event chaining — the engines
    compute the same set, and the MDD is canonical per manager, so
    ``manager.from_tuples`` of that set is the node chaining would have
    reached.  (This trades the symbolic economy for multicore frontier
    expansion; at the scales where enumeration is impossible, use the
    serial saturation engine.)
    """
    faults.check("reachability.mdd")
    if manager is None:
        manager = MDDManager(model.level_sizes())
    cfg = parallel_config(parallel)
    if cfg is not None:
        states = _sharded_mdd_states(model, cfg)
        result = ReachabilityResult(model, states, engine="mdd")
        if return_mdd:
            return result, manager.from_tuples(states), manager
        return result
    current = _chain(manager, model)
    states = sorted(manager.tuples(current))
    result = ReachabilityResult(model, states, engine="mdd")
    if return_mdd:
        return result, current, manager
    return result


def _sharded_mdd_states(model: EventModel, cfg) -> List[Tuple[int, ...]]:
    """Reachable states for the parallel MDD engine, checkpointed under
    the engine's own key (``reachability.mdd.shard``) so its snapshots
    never collide with the chaining engine's ``tuples`` payloads."""
    seeds = [model.initial_state]
    seen = set(seeds)
    frontier = list(seeds)
    ck = checkpoint.active()
    key = guard = None
    if ck is not None:
        key = ck.sequence_key("reachability.mdd.shard")
        guard = _reach_guard(model, seeds)
        record = ck.load(key, guard=guard)
        if record is not None:
            payload = record["payload"]
            if record["complete"]:
                return [tuple(s) for s in payload["states"]]
            seen = {tuple(s) for s in payload["seen"]}
            frontier = [tuple(s) for s in payload["frontier"]]
    states = sharded_reachable_states(
        model, seen, frontier, cfg, ck=ck, key=key, guard=guard
    )
    if ck is not None:
        ck.save(key, {"states": states}, guard=guard, complete=True)
    return states


@dataclass
class SymbolicStateSpace:
    """A reachable set kept symbolic (never enumerated).

    Supports the queries the Table-1 pipeline needs at scales where
    materializing states is impossible: exact count, per-level supports,
    and projection through per-level substate maps.
    """

    model: EventModel
    manager: MDDManager
    node: int
    engine: str

    @property
    def num_states(self) -> int:
        """Exact reachable state count (via MDD counting)."""
        return self.manager.count(self.node)

    def level_supports(self) -> List[List[int]]:
        """Per level, the substates occurring in some reachable state."""
        return [
            self.manager.level_support(self.node, level)
            for level in range(1, self.model.num_levels + 1)
        ]

    def level_sizes(self) -> Tuple[int, ...]:
        """Reachable projection sizes per level."""
        return tuple(len(support) for support in self.level_supports())

    def mapped_count(
        self, mappings, target_sizes: Sequence[int]
    ) -> int:
        """Number of distinct images of the set under per-level substate
        maps — e.g. the lumped reachable count when the maps send each
        substate to its class index."""
        target = MDDManager(tuple(target_sizes))
        mapped = self.manager.map_levels(self.node, mappings, target)
        return target.count(mapped)


def symbolic_reachability(
    model: EventModel, strategy: str = "saturation"
) -> SymbolicStateSpace:
    """Reachability that never enumerates states (for very large spaces).

    ``strategy`` is ``"saturation"`` or ``"chaining"``.
    """
    faults.check("reachability.mdd")
    manager = MDDManager(model.level_sizes())
    if strategy == "saturation":
        node = _saturate(manager, model)
    elif strategy == "chaining":
        node = _chain(manager, model)
    else:
        raise StateSpaceError(f"unknown strategy {strategy!r}")
    return SymbolicStateSpace(
        model=model, manager=manager, node=node, engine=strategy
    )


def _chain(manager: MDDManager, model: EventModel) -> int:
    node = manager.singleton(model.initial_state)
    ck = checkpoint.active()
    key = guard = None
    if ck is not None:
        key = ck.sequence_key("reachability.chain")
        guard = _reach_guard(model, [model.initial_state])
        record = ck.load(key, guard=guard)
        if record is not None:
            # Any snapshot S with seed <= S <= closure(seed) resumes
            # exactly: the fixpoint is monotone, so closure(S) ==
            # closure(seed).
            node = manager.from_tuples(
                [tuple(s) for s in record["payload"]["tuples"]]
            )
            if record["complete"]:
                return node
    try:
        while True:
            budgets.charge_iterations(1, stage="reachability")
            previous = node
            for event in model.events:
                node = manager.union(node, manager.image(node, event))
            if budgets.active_budget() is not None:
                budgets.check_states(manager.count(node), stage="reachability")
            if node == previous:
                break
            if ck is not None and ck.tick(key):
                ck.save(
                    key, {"tuples": sorted(manager.tuples(node))}, guard=guard
                )
    except BudgetExceeded:
        if ck is not None:
            ck.save(key, {"tuples": sorted(manager.tuples(node))}, guard=guard)
        raise
    if ck is not None:
        ck.save(
            key,
            {"tuples": sorted(manager.tuples(node))},
            guard=guard,
            complete=True,
        )
    return node


def _saturate(manager: MDDManager, model: EventModel) -> int:
    current = manager.singleton(model.initial_state)
    start_top = model.num_levels
    ck = checkpoint.active()
    key = guard = None
    if ck is not None:
        key = ck.sequence_key("reachability.saturation")
        guard = _reach_guard(model, [model.initial_state])
        record = ck.load(key, guard=guard)
        if record is not None:
            current = manager.from_tuples(
                [tuple(s) for s in record["payload"]["tuples"]]
            )
            if record["complete"]:
                return current
            # Resuming the outer sweep at the saved level is sound: the
            # final sweep (lowest_top == 1) closes under *all* events, so
            # any intermediate set still converges to the same closure.
            start_top = int(record["payload"]["top"])
    events_by_top: dict = {}
    for event in model.events:
        events_by_top.setdefault(event.top_level(), []).append(event)
    # Last node/level observed at a budget hook, for the exception save.
    progress = {"node": current, "top": start_top}

    def close_from(node: int, lowest_top: int) -> int:
        while True:
            budgets.charge_iterations(1, stage="reachability")
            previous = node
            for top in range(model.num_levels, lowest_top - 1, -1):
                for event in events_by_top.get(top, ()):
                    node = manager.union(node, manager.image(node, event))
            progress["node"] = node
            if budgets.active_budget() is not None:
                budgets.check_states(
                    manager.count(node), stage="reachability"
                )
            if node == previous:
                return node
            if ck is not None and ck.tick(key):
                ck.save(
                    key,
                    {
                        "tuples": sorted(manager.tuples(node)),
                        "top": lowest_top,
                    },
                    guard=guard,
                )

    try:
        for top in range(start_top, 0, -1):
            progress["top"] = top
            current = close_from(current, top)
            progress["node"] = current
    except BudgetExceeded:
        if ck is not None:
            ck.save(
                key,
                {
                    "tuples": sorted(manager.tuples(progress["node"])),
                    "top": progress["top"],
                },
                guard=guard,
            )
        raise
    if ck is not None:
        ck.save(
            key,
            {"tuples": sorted(manager.tuples(current)), "top": 1},
            guard=guard,
            complete=True,
        )
    return current


def reachable_saturation(
    model: EventModel,
    manager: Optional[MDDManager] = None,
    return_mdd: bool = False,
    parallel=None,
):
    """Saturation-style symbolic reachability (Ciardo et al., cited as the
    paper's route to very large state spaces).

    Events are grouped by their *top level* (the highest level they
    touch).  Working bottom-up, the state set is closed under all events
    whose top level is at or below the current level before moving up, and
    every upper-level firing is followed by re-closing the lower levels.
    Exploits event locality: low events never disturb high levels, so
    their fixpoints are computed once per upper configuration instead of
    once per global iteration.

    ``parallel`` is accepted for engine-chain uniformity but ignored:
    the bottom-up locality sweep is inherently sequential, and this
    engine exists for scales where enumerating states (which the
    sharded driver does) is the thing being avoided.
    """
    del parallel  # saturation stays serial by design (see docstring)
    faults.check("reachability.mdd")
    if manager is None:
        manager = MDDManager(model.level_sizes())
    # Saturate bottom-up: after closing under deep (local) events, each
    # firing of a higher event is followed by re-closing everything below.
    current = _saturate(manager, model)
    states = sorted(manager.tuples(current))
    result = ReachabilityResult(model, states, engine="saturation")
    if return_mdd:
        return result, current, manager
    return result
