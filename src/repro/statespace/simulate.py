"""Discrete-event simulation of event models (Gillespie / SSA).

Simulation is the independent oracle the numerical stack is validated
against (and the evaluation method the paper's introduction contrasts
with): trajectories sample the same semantics — exponential races between
the enabled events — so long-run occupancies must converge to the
numerically computed stationary distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StateSpaceError
from repro.statespace.events import EventModel


@dataclass
class Trajectory:
    """One simulated path: jump times and the states entered."""

    times: List[float]  # entry time of each state (times[0] == 0.0)
    states: List[Tuple[int, ...]]
    total_time: float

    @property
    def num_jumps(self) -> int:
        """Number of transitions taken."""
        return len(self.states) - 1

    def occupancy(self) -> Dict[Tuple[int, ...], float]:
        """Fraction of total time spent in each visited state."""
        if self.total_time <= 0:
            raise StateSpaceError("trajectory has zero duration")
        out: Dict[Tuple[int, ...], float] = {}
        for index, state in enumerate(self.states):
            start = self.times[index]
            end = (
                self.times[index + 1]
                if index + 1 < len(self.times)
                else self.total_time
            )
            out[state] = out.get(state, 0.0) + (end - start)
        return {state: t / self.total_time for state, t in out.items()}


def simulate(
    model: EventModel,
    horizon: float,
    initial: Optional[Sequence[int]] = None,
    seed: Optional[int] = None,
    max_jumps: int = 10_000_000,
) -> Trajectory:
    """Simulate one trajectory up to time ``horizon``.

    In each state the enabled transitions race exponentially: dwell time
    ~ Exp(total rate), next state chosen proportionally to its rate.
    Self-loops in ``R`` are taken like any other transition (they consume
    a jump but not state change), matching the R-level semantics.
    """
    if horizon <= 0:
        raise StateSpaceError("horizon must be positive")
    rng = np.random.default_rng(seed)
    state = tuple(initial) if initial is not None else model.initial_state
    times = [0.0]
    states = [state]
    now = 0.0
    for _jump in range(max_jumps):
        transitions = model.successors(state)
        total_rate = sum(rate for _t, rate in transitions)
        if total_rate <= 0:
            # Absorbing state: dwell until the horizon.
            return Trajectory(times, states, horizon)
        now += rng.exponential(1.0 / total_rate)
        if now >= horizon:
            return Trajectory(times, states, horizon)
        threshold = rng.uniform(0.0, total_rate)
        accumulated = 0.0
        for target, rate in transitions:
            accumulated += rate
            if accumulated >= threshold:
                state = target
                break
        times.append(now)
        states.append(state)
    raise StateSpaceError(f"exceeded {max_jumps} jumps before the horizon")


def estimate_stationary(
    model: EventModel,
    total_time: float,
    burn_in: float = 0.0,
    seed: Optional[int] = None,
) -> Dict[Tuple[int, ...], float]:
    """Long-run occupancy estimate from a single trajectory.

    ``burn_in`` time is discarded before occupancies are accumulated.
    """
    if not 0 <= burn_in < total_time:
        raise StateSpaceError("need 0 <= burn_in < total_time")
    trajectory = simulate(model, total_time, seed=seed)
    window = total_time - burn_in
    out: Dict[Tuple[int, ...], float] = {}
    for index, state in enumerate(trajectory.states):
        start = trajectory.times[index]
        end = (
            trajectory.times[index + 1]
            if index + 1 < len(trajectory.times)
            else total_time
        )
        clipped_start = max(start, burn_in)
        if end > clipped_start:
            out[state] = out.get(state, 0.0) + (end - clipped_start)
    return {state: t / window for state, t in out.items()}


def estimate_reward(
    model: EventModel,
    reward_of_state,
    total_time: float,
    burn_in: float = 0.0,
    seed: Optional[int] = None,
) -> float:
    """Long-run average of a state reward function along a trajectory."""
    occupancy = estimate_stationary(
        model, total_time, burn_in=burn_in, seed=seed
    )
    return float(
        sum(
            fraction * float(reward_of_state(state))
            for state, fraction in occupancy.items()
        )
    )
