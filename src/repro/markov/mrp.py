"""Markov reward processes (Definition 1 of the paper).

An MRP bundles a CTMC with a rate-reward vector ``r`` and an initial
probability vector ``pi_ini``.  Lumpability is a property of the MRP, not of
the bare CTMC: ordinary lumping additionally requires rewards constant on
blocks, exact lumping requires the initial distribution constant on blocks
(Definition 2 / Theorem 1).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ModelError
from repro.markov.ctmc import CTMC


class MarkovRewardProcess:
    """The 4-tuple ``(S, Q, r, pi_ini)`` of Definition 1.

    ``S`` and ``Q`` are carried by the embedded :class:`CTMC` (which stores
    ``R``; ``Q`` is derived).  ``rewards`` and ``initial_distribution``
    default to all-zero rewards and the uniform distribution, both of which
    are trivially constant on any partition and hence never obstruct
    lumping.
    """

    def __init__(
        self,
        ctmc: CTMC,
        rewards: Optional[Sequence[float]] = None,
        initial_distribution: Optional[Sequence[float]] = None,
    ) -> None:
        self._ctmc = ctmc
        n = ctmc.num_states
        if rewards is None:
            self._rewards = np.zeros(n)
        else:
            self._rewards = np.asarray(rewards, dtype=float).copy()
            if self._rewards.shape != (n,):
                raise ModelError(
                    f"reward vector has shape {self._rewards.shape}, "
                    f"expected ({n},)"
                )
        if initial_distribution is None:
            self._initial = np.full(n, 1.0 / n) if n else np.zeros(0)
        else:
            self._initial = np.asarray(initial_distribution, dtype=float).copy()
            if self._initial.shape != (n,):
                raise ModelError(
                    f"initial distribution has shape {self._initial.shape}, "
                    f"expected ({n},)"
                )
            if np.any(self._initial < -1e-12):
                raise ModelError("initial distribution has negative entries")
            total = float(self._initial.sum())
            if n and abs(total - 1.0) > 1e-9:
                raise ModelError(
                    f"initial distribution sums to {total}, expected 1"
                )

    @property
    def ctmc(self) -> CTMC:
        """The embedded CTMC."""
        return self._ctmc

    @property
    def num_states(self) -> int:
        """Size of the state space."""
        return self._ctmc.num_states

    @property
    def rewards(self) -> np.ndarray:
        """A copy of the rate-reward vector ``r``."""
        return self._rewards.copy()

    @property
    def initial_distribution(self) -> np.ndarray:
        """A copy of ``pi_ini``."""
        return self._initial.copy()

    def reward(self, state: int) -> float:
        """Reward of a single state."""
        return float(self._rewards[state])

    def initial_probability(self, state: int) -> float:
        """Initial probability of a single state."""
        return float(self._initial[state])

    @classmethod
    def point_mass(
        cls,
        ctmc: CTMC,
        initial_state: int,
        rewards: Optional[Sequence[float]] = None,
    ) -> "MarkovRewardProcess":
        """An MRP that starts deterministically in ``initial_state``."""
        n = ctmc.num_states
        if not 0 <= initial_state < n:
            raise ModelError(f"initial state {initial_state} out of range")
        pi = np.zeros(n)
        pi[initial_state] = 1.0
        return cls(ctmc, rewards=rewards, initial_distribution=pi)

    def __repr__(self) -> str:
        return f"MarkovRewardProcess(states={self.num_states})"
