"""Random CTMC generators used by tests and property-based checks.

Beyond uniformly random chains, this module can *plant* a lumpable
structure: :func:`random_ordinarily_lumpable` builds a chain whose states
group into blocks with equal block-to-block cumulative rates, so the optimal
state-level lumping algorithm must recover a partition at least as coarse as
the planted one.  The construction mirrors the definition directly
(Theorem 1): pick a quotient chain first, then expand each quotient state
into a block and distribute the outgoing rate of each member over the
target block.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.markov.ctmc import CTMC
from repro.partitions import Partition


def random_ctmc(
    num_states: int,
    density: float = 0.3,
    rate_scale: float = 2.0,
    seed: Optional[int] = None,
    ensure_irreducible: bool = True,
) -> CTMC:
    """A random CTMC with roughly ``density`` fraction of off-diagonal
    entries present, rates uniform in ``(0, rate_scale]``.

    With ``ensure_irreducible`` a Hamiltonian cycle of small rates is added
    so the chain is strongly connected (solvers require irreducibility).
    """
    rng = np.random.default_rng(seed)
    triples: List[Tuple[int, int, float]] = []
    for i in range(num_states):
        for j in range(num_states):
            if i != j and rng.random() < density:
                triples.append((i, j, float(rng.uniform(0.05, rate_scale))))
    if ensure_irreducible and num_states > 1:
        for i in range(num_states):
            triples.append((i, (i + 1) % num_states, 0.01))
    return CTMC.from_transitions(num_states, triples)


def random_partition(
    num_states: int, num_blocks: int, seed: Optional[int] = None
) -> Partition:
    """A uniformly random partition of ``range(num_states)`` into exactly
    ``num_blocks`` non-empty blocks."""
    if not 1 <= num_blocks <= num_states:
        raise ValueError("need 1 <= num_blocks <= num_states")
    rng = np.random.default_rng(seed)
    # Guarantee non-emptiness: first num_blocks states seed the blocks.
    assignment = list(range(num_blocks))
    assignment += [int(rng.integers(num_blocks)) for _ in range(num_states - num_blocks)]
    rng.shuffle(assignment)
    blocks: List[List[int]] = [[] for _ in range(num_blocks)]
    for state, block in enumerate(assignment):
        blocks[block].append(state)
    return Partition(num_states, blocks)


def random_ordinarily_lumpable(
    num_states: int,
    num_blocks: int,
    seed: Optional[int] = None,
) -> Tuple[CTMC, Partition]:
    """A random CTMC ordinarily lumpable w.r.t. a planted partition.

    Construction: draw a random irreducible quotient chain on
    ``num_blocks`` states, then expand block ``B`` into its members.  For a
    quotient rate ``lambda(B, B')``, every member ``s`` of ``B`` receives
    outgoing rates to the members of ``B'`` that sum to ``lambda(B, B')``
    but are split randomly (and differently per member), so the chain is
    not block-diagonal-trivial yet satisfies
    ``R(s, B') = R(s_hat, B')`` for all ``s, s_hat in B``.
    """
    rng = np.random.default_rng(seed)
    partition = random_partition(num_states, num_blocks, seed=None if seed is None else seed + 1)
    quotient = random_ctmc(
        num_blocks,
        density=0.5,
        seed=None if seed is None else seed + 2,
        ensure_irreducible=True,
    )
    blocks = list(partition.blocks())
    triples: List[Tuple[int, int, float]] = []
    for b_index, block in enumerate(blocks):
        for c_index, target_block in enumerate(blocks):
            total = quotient.rate(b_index, c_index)
            if total <= 0:
                continue
            for s in block:
                # Split `total` across the target block with random positive
                # weights; each member of the source block gets its own split.
                weights = rng.uniform(0.1, 1.0, size=len(target_block))
                weights *= total / weights.sum()
                for t, w in zip(target_block, weights):
                    if s != t or True:  # self-loops allowed in R
                        triples.append((s, t, float(w)))
    chain = CTMC.from_transitions(num_states, triples)
    return chain, partition


def random_exactly_lumpable(
    num_states: int,
    num_blocks: int,
    seed: Optional[int] = None,
) -> Tuple[CTMC, Partition]:
    """A random CTMC exactly lumpable w.r.t. a planted partition.

    Exact lumpability needs ``R(B', s)`` constant over ``s in B`` (column
    sums from each block equal) *and* equal exit rates within each block.
    We construct the transpose the same way as
    :func:`random_ordinarily_lumpable` splits rows, then fix exit rates by
    adding self-loops, which change ``R`` but not ``Q``-level behaviour
    and preserve the column-sum property within blocks only if distributed
    equally -- so instead we split incoming rate *uniformly* across source
    block members, which yields both properties at once.
    """
    rng = np.random.default_rng(seed)
    partition = random_partition(num_states, num_blocks, seed=None if seed is None else seed + 1)
    quotient = random_ctmc(
        num_blocks,
        density=0.5,
        seed=None if seed is None else seed + 2,
        ensure_irreducible=True,
    )
    blocks = list(partition.blocks())
    triples: List[Tuple[int, int, float]] = []
    for b_index, block in enumerate(blocks):
        for c_index, target_block in enumerate(blocks):
            total = quotient.rate(b_index, c_index)
            if total <= 0:
                continue
            # Every member of the source block sends total/|B| to *each*
            # member of the target block: then R(B, t) = total for each t,
            # i.e. columns within the target block have equal sums from B,
            # and every source member has equal contribution to exit rate.
            rate = total / len(block)
            for s in block:
                for t in target_block:
                    triples.append((s, t, float(rate)))
    chain = CTMC.from_transitions(num_states, triples)
    return chain, partition


def random_distribution(
    num_states: int, seed: Optional[int] = None
) -> np.ndarray:
    """A random probability vector of length ``num_states``."""
    rng = np.random.default_rng(seed)
    raw = rng.uniform(0.1, 1.0, size=num_states)
    return raw / raw.sum()


def block_constant_vector(
    partition: Partition, values: Optional[Sequence[float]] = None,
    seed: Optional[int] = None,
) -> np.ndarray:
    """A vector constant on each block of ``partition`` (random per-block
    values unless given) -- a valid reward vector for ordinary lumping."""
    rng = np.random.default_rng(seed)
    blocks = list(partition.blocks())
    if values is None:
        values = rng.uniform(0.0, 10.0, size=len(blocks))
    out = np.zeros(partition.n)
    for value, block in zip(values, blocks):
        for s in block:
            out[s] = value
    return out
