"""Steady-state solvers for CTMCs.

The paper's motivation is that lumping shrinks the iteration vectors and the
per-iteration cost of exactly these solvers.  We provide:

* a direct solver (sparse LU on the normalized balance equations) for small
  chains and as the reference in tests,
* power iteration on the uniformized DTMC,
* Jacobi and Gauss-Seidel iterations on ``pi Q = 0``,

all returning a :class:`SteadyStateResult` with the distribution, residual
and iteration count.  Solvers require an irreducible chain; callers solving
a chain with transient states should first restrict to the recurrent class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from repro.errors import SolverError
from repro.markov.ctmc import CTMC


@dataclass
class SteadyStateResult:
    """Outcome of a steady-state solve.

    Attributes
    ----------
    distribution:
        The stationary probability vector ``pi`` (sums to 1).
    iterations:
        Iterations used (0 for the direct method).
    residual:
        Final infinity-norm of ``pi Q``.
    method:
        Name of the solver that produced the result.
    """

    distribution: np.ndarray
    iterations: int
    residual: float
    method: str


def _residual(pi: np.ndarray, q: sparse.csr_matrix) -> float:
    return float(np.abs(pi @ q).max()) if pi.size else 0.0


def _check_irreducible(ctmc: CTMC) -> None:
    if ctmc.num_states == 0:
        raise SolverError("cannot solve an empty chain")
    if not ctmc.is_irreducible():
        raise SolverError(
            "steady-state solvers require an irreducible chain; "
            "restrict to the recurrent class first"
        )


def steady_state_direct(ctmc: CTMC) -> SteadyStateResult:
    """Solve ``pi Q = 0, sum(pi) = 1`` directly via sparse LU.

    Replaces the last balance equation with the normalization constraint,
    which is the standard full-rank reformulation.
    """
    _check_irreducible(ctmc)
    n = ctmc.num_states
    q = ctmc.generator_matrix()
    a = sparse.lil_matrix(q.T)
    a[n - 1, :] = 1.0
    b = np.zeros(n)
    b[n - 1] = 1.0
    try:
        pi = sparse_linalg.spsolve(sparse.csc_matrix(a), b)
    except RuntimeError as exc:  # singular factorization
        raise SolverError(f"direct solve failed: {exc}") from exc
    pi = np.asarray(pi, dtype=float).ravel()
    if np.any(~np.isfinite(pi)):
        raise SolverError("direct solve produced non-finite entries")
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise SolverError("direct solve produced a zero vector")
    pi /= total
    return SteadyStateResult(pi, 0, _residual(pi, q), "direct")


def steady_state_power(
    ctmc: CTMC,
    tol: float = 1e-12,
    max_iterations: int = 200_000,
) -> SteadyStateResult:
    """Power iteration ``pi <- pi P`` on the uniformized DTMC."""
    _check_irreducible(ctmc)
    n = ctmc.num_states
    p = ctmc.embedded_dtmc()
    q = ctmc.generator_matrix()
    pi = np.full(n, 1.0 / n)
    for iteration in range(1, max_iterations + 1):
        new_pi = pi @ p
        delta = float(np.abs(new_pi - pi).max())
        pi = new_pi
        if delta < tol:
            pi = np.clip(pi, 0.0, None)
            pi /= pi.sum()
            return SteadyStateResult(pi, iteration, _residual(pi, q), "power")
    raise SolverError(
        f"power iteration did not converge in {max_iterations} iterations"
    )


def steady_state_jacobi(
    ctmc: CTMC,
    tol: float = 1e-12,
    max_iterations: int = 200_000,
    relaxation: float = 0.9,
) -> SteadyStateResult:
    """Damped Jacobi iteration on ``pi Q = 0``.

    Writing ``Q = D + O`` with ``D`` the diagonal, the fixed point is
    ``pi = -(pi O) D^{-1}``; each sweep renormalizes.  The undamped sweep
    can oscillate (e.g. any 2-state chain is period-2), so the update is
    relaxed: ``pi <- (1 - w) pi + w * step(pi)`` with ``0 < w < 1``.
    """
    if not 0 < relaxation <= 1:
        raise SolverError("relaxation must be in (0, 1]")
    _check_irreducible(ctmc)
    n = ctmc.num_states
    q = ctmc.generator_matrix()
    diag = q.diagonal()
    if np.any(diag == 0):
        # An absorbing state in an irreducible chain means n == 1.
        pi = np.ones(n) / n
        return SteadyStateResult(pi, 0, _residual(pi, q), "jacobi")
    off = q - sparse.diags(diag)
    off = sparse.csr_matrix(off)
    inv_diag = -1.0 / diag
    pi = np.full(n, 1.0 / n)
    for iteration in range(1, max_iterations + 1):
        step = (pi @ off) * inv_diag
        total = step.sum()
        if total <= 0:
            raise SolverError("jacobi iteration collapsed to zero")
        new_pi = (1.0 - relaxation) * pi + relaxation * (step / total)
        new_pi /= new_pi.sum()
        delta = float(np.abs(new_pi - pi).max())
        pi = new_pi
        if delta < tol:
            return SteadyStateResult(pi, iteration, _residual(pi, q), "jacobi")
    raise SolverError(
        f"jacobi iteration did not converge in {max_iterations} iterations"
    )


def steady_state_gauss_seidel(
    ctmc: CTMC,
    tol: float = 1e-12,
    max_iterations: int = 100_000,
) -> SteadyStateResult:
    """Gauss-Seidel iteration on ``Q^T pi^T = 0`` with in-place updates.

    Uses the column (CSC-of-Q, i.e. CSR-of-Q^T) structure so each state's
    new value sees already-updated predecessors, the standard forward sweep.
    """
    _check_irreducible(ctmc)
    n = ctmc.num_states
    q = ctmc.generator_matrix()
    qt = sparse.csr_matrix(q.T)
    diag = q.diagonal()
    if np.any(diag == 0):
        pi = np.ones(n) / n
        return SteadyStateResult(pi, 0, _residual(pi, q), "gauss-seidel")
    indptr, indices, data = qt.indptr, qt.indices, qt.data
    pi = np.full(n, 1.0 / n)
    for iteration in range(1, max_iterations + 1):
        delta = 0.0
        for j in range(n):
            acc = 0.0
            for k in range(indptr[j], indptr[j + 1]):
                i = indices[k]
                if i != j:
                    acc += data[k] * pi[i]
            new_value = -acc / diag[j]
            delta = max(delta, abs(new_value - pi[j]))
            pi[j] = new_value
        total = pi.sum()
        if total <= 0:
            raise SolverError("gauss-seidel iteration collapsed to zero")
        pi /= total
        if delta < tol:
            pi = np.clip(pi, 0.0, None)
            pi /= pi.sum()
            return SteadyStateResult(
                pi, iteration, _residual(pi, q), "gauss-seidel"
            )
    raise SolverError(
        f"gauss-seidel did not converge in {max_iterations} iterations"
    )


_METHODS = {
    "direct": steady_state_direct,
    "power": steady_state_power,
    "jacobi": steady_state_jacobi,
    "gauss-seidel": steady_state_gauss_seidel,
}


def steady_state(ctmc: CTMC, method: str = "direct", **kwargs) -> SteadyStateResult:
    """Dispatch to a steady-state solver by name.

    ``method`` is one of ``direct``, ``power``, ``jacobi``, ``gauss-seidel``.
    """
    try:
        solver = _METHODS[method]
    except KeyError:
        raise SolverError(
            f"unknown method {method!r}; choose from {sorted(_METHODS)}"
        ) from None
    return solver(ctmc, **kwargs)
