"""Steady-state solvers for CTMCs.

The paper's motivation is that lumping shrinks the iteration vectors and the
per-iteration cost of exactly these solvers.  We provide:

* a direct solver (sparse LU on the normalized balance equations) for small
  chains and as the reference in tests,
* power iteration on the uniformized DTMC,
* Jacobi and Gauss-Seidel iterations on ``pi Q = 0``,

all returning a :class:`SteadyStateResult` with the distribution, residual
and iteration count.  Solvers require an irreducible chain; callers solving
a chain with transient states should first restrict to the recurrent class.

Robustness integration: every solver checks the fault-injection site
``solver.<name>`` at entry and charges active resource budgets once per
iteration (see :mod:`repro.robust`).  Non-convergence errors carry the
last iterate, final residual, and iteration count so the fallback chain
(:func:`repro.robust.fallback.solve_with_fallback`) can warm-start the
next method instead of recomputing from scratch; the iterative solvers
accept that warm start via ``x0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from repro.errors import SolverError
from repro.markov.ctmc import CTMC
from repro.robust import budgets, checkpoint, faults
from repro.robust.budgets import BudgetExceeded


@dataclass
class SteadyStateResult:
    """Outcome of a steady-state solve.

    Attributes
    ----------
    distribution:
        The stationary probability vector ``pi`` (sums to 1).
    iterations:
        Iterations used (0 for the direct method).
    residual:
        Final infinity-norm of ``pi Q``.
    method:
        Name of the solver that produced the result.
    note:
        Diagnostic annotation, or ``None`` for a clean solve.  The one
        note the solvers emit today is ``converged-but-residual-high``:
        the iterate delta dropped below ``tol`` (the stopping rule) but
        the final residual did not — a stalled iteration, not a solved
        chain, and exactly the case a delta-only convergence test
        silently mislabels.
    """

    distribution: np.ndarray
    iterations: int
    residual: float
    method: str
    note: Optional[str] = None


def _residual(pi: np.ndarray, q: sparse.csr_matrix) -> float:
    return float(np.abs(pi @ q).max()) if pi.size else 0.0


def _convergence_note(delta: float, residual: float, tol: float) -> Optional[str]:
    """The ``converged-but-residual-high`` annotation, when deserved.

    Delta-based stopping accepts any fixed point of the *iteration*,
    including stalls far from the balance equations; checking the final
    residual against the same ``tol`` closes that gap.  The comparison
    is deliberately absolute — both quantities live on the scale of
    ``pi Q`` — and only annotates (the certificate layer decides
    whether the result is usable)."""
    if residual > tol:
        return (
            f"converged-but-residual-high: iterate delta {delta:.3e} "
            f"fell below tol {tol:.3e} but the residual ||pi Q||_inf "
            f"= {residual:.3e} did not"
        )
    return None


def _check_irreducible(ctmc: CTMC, method: str) -> None:
    if ctmc.num_states == 0:
        raise SolverError("cannot solve an empty chain", method=method)
    if not ctmc.is_irreducible():
        raise SolverError(
            f"steady-state solver {method!r} requires an irreducible chain, "
            f"but this {ctmc.num_states}-state chain has more than one "
            "communicating class; restrict to the recurrent class first "
            "(or use repro.robust.fallback.solve_with_fallback, which "
            "reports per-attempt diagnostics for degraded runs)",
            method=method,
        )


def _generator_digest(q) -> str:
    """Content digest of a generator matrix (checkpoint guard): a solver
    snapshot is only resumed against the exact same ``Q``."""
    qc = sparse.csr_matrix(q)
    return checkpoint.digest(
        np.asarray(qc.indptr).tobytes(),
        np.asarray(qc.indices).tobytes(),
        np.asarray(qc.data).tobytes(),
    )


def _solver_resume(ck, method: str, n: int, q, tol: Optional[float]):
    """Common checkpoint entry for a solver: the sequence key, guard, and
    any matching snapshot record (or ``None``s when inactive)."""
    if ck is None:
        return None, None, None
    key = ck.sequence_key(f"solve.{method}")
    guard = {"n": n, "q": _generator_digest(q)}
    if tol is not None:
        guard["tol"] = tol
    return key, guard, ck.load(key, guard=guard)


def _initial_vector(n: int, x0: Optional[np.ndarray]) -> np.ndarray:
    """Uniform start, or a normalized copy of a warm-start vector."""
    if x0 is None:
        return np.full(n, 1.0 / n)
    pi = np.asarray(x0, dtype=float).ravel().copy()
    if pi.shape != (n,):
        raise SolverError(
            f"warm start x0 has shape {pi.shape}, expected ({n},)"
        )
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if not np.isfinite(total) or total <= 0:
        return np.full(n, 1.0 / n)
    return pi / total


def steady_state_direct(ctmc: CTMC) -> SteadyStateResult:
    """Solve ``pi Q = 0, sum(pi) = 1`` directly via sparse LU.

    Replaces the last balance equation with the normalization constraint,
    which is the standard full-rank reformulation.
    """
    faults.check("solver.direct")
    _check_irreducible(ctmc, "direct")
    budgets.check_time("solve")
    n = ctmc.num_states
    q = ctmc.generator_matrix()
    ck = checkpoint.active()
    key, guard, record = _solver_resume(ck, "direct", n, q, None)
    if record is not None and record["complete"]:
        payload = record["payload"]
        return SteadyStateResult(
            np.asarray(payload["pi"], dtype=float),
            0,
            float(payload["residual"]),
            "direct",
        )
    a = sparse.lil_matrix(q.T)
    a[n - 1, :] = 1.0
    b = np.zeros(n)
    b[n - 1] = 1.0
    try:
        pi = sparse_linalg.spsolve(sparse.csc_matrix(a), b)
    except RuntimeError as exc:  # singular factorization
        raise SolverError(
            f"direct solve failed on the {n}-state chain: {exc}",
            method="direct",
            iterations=0,
        ) from exc
    pi = np.asarray(pi, dtype=float).ravel()
    if np.any(~np.isfinite(pi)):
        raise SolverError(
            f"direct solve produced non-finite entries on the {n}-state "
            "chain (singular or ill-conditioned balance equations)",
            method="direct",
            iterations=0,
        )
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise SolverError(
            f"direct solve produced a zero vector on the {n}-state chain",
            method="direct",
            iterations=0,
        )
    pi /= total
    residual = _residual(pi, q)
    if ck is not None:
        ck.save(
            key,
            {"pi": pi.tolist(), "iterations": 0, "residual": residual},
            guard=guard,
            complete=True,
        )
    return SteadyStateResult(pi, 0, residual, "direct")


def steady_state_power(
    ctmc: CTMC,
    tol: float = 1e-12,
    max_iterations: int = 200_000,
    x0: Optional[np.ndarray] = None,
) -> SteadyStateResult:
    """Power iteration ``pi <- pi P`` on the uniformized DTMC."""
    faults.check("solver.power")
    _check_irreducible(ctmc, "power")
    n = ctmc.num_states
    p = ctmc.embedded_dtmc()
    q = ctmc.generator_matrix()
    pi = _initial_vector(n, x0)
    ck = checkpoint.active()
    key, guard, record = _solver_resume(ck, "power", n, q, tol)
    start = 1
    if record is not None:
        payload = record["payload"]
        if record["complete"]:
            return SteadyStateResult(
                np.asarray(payload["pi"], dtype=float),
                int(payload["iterations"]),
                float(payload["residual"]),
                "power",
                note=payload.get("note"),
            )
        # JSON round-trips float64 bitwise (repr-based), so the resumed
        # iterate is the killed run's exact vector.
        pi = np.asarray(payload["pi"], dtype=float)
        start = int(payload["iteration"]) + 1
    completed = start - 1
    try:
        for iteration in range(start, max_iterations + 1):
            budgets.charge_iterations(1, stage="solve")
            new_pi = pi @ p
            delta = float(np.abs(new_pi - pi).max())
            pi = new_pi
            completed = iteration
            if delta < tol:
                pi = np.clip(pi, 0.0, None)
                pi /= pi.sum()
                residual = _residual(pi, q)
                note = _convergence_note(delta, residual, tol)
                if ck is not None:
                    ck.save(
                        key,
                        {
                            "pi": pi.tolist(),
                            "iterations": iteration,
                            "residual": residual,
                            "note": note,
                        },
                        guard=guard,
                        complete=True,
                    )
                return SteadyStateResult(
                    pi, iteration, residual, "power", note=note
                )
            if ck is not None and ck.tick(key):
                ck.save(
                    key,
                    {"pi": pi.tolist(), "iteration": completed},
                    guard=guard,
                )
    except BudgetExceeded:
        if ck is not None:
            ck.save(
                key, {"pi": pi.tolist(), "iteration": completed}, guard=guard
            )
        raise
    if ck is not None:
        ck.save(
            key, {"pi": pi.tolist(), "iteration": completed}, guard=guard
        )
    pi = np.clip(pi, 0.0, None)
    pi /= pi.sum()
    raise SolverError(
        f"power iteration did not converge in {max_iterations} iterations",
        method="power",
        iterations=max_iterations,
        residual=_residual(pi, q),
        last_iterate=pi,
    )


def steady_state_jacobi(
    ctmc: CTMC,
    tol: float = 1e-12,
    max_iterations: int = 200_000,
    relaxation: float = 0.9,
    x0: Optional[np.ndarray] = None,
) -> SteadyStateResult:
    """Damped Jacobi iteration on ``pi Q = 0``.

    Writing ``Q = D + O`` with ``D`` the diagonal, the fixed point is
    ``pi = -(pi O) D^{-1}``; each sweep renormalizes.  The undamped sweep
    can oscillate (e.g. any 2-state chain is period-2), so the update is
    relaxed: ``pi <- (1 - w) pi + w * step(pi)`` with ``0 < w < 1``.
    """
    if not 0 < relaxation <= 1:
        raise SolverError("relaxation must be in (0, 1]", method="jacobi")
    faults.check("solver.jacobi")
    _check_irreducible(ctmc, "jacobi")
    n = ctmc.num_states
    q = ctmc.generator_matrix()
    diag = q.diagonal()
    if np.any(diag == 0):
        # An absorbing state in an irreducible chain means n == 1.
        pi = np.ones(n) / n
        return SteadyStateResult(pi, 0, _residual(pi, q), "jacobi")
    off = q - sparse.diags(diag)
    off = sparse.csr_matrix(off)
    inv_diag = -1.0 / diag
    pi = _initial_vector(n, x0)
    ck = checkpoint.active()
    key, guard, record = _solver_resume(ck, "jacobi", n, q, tol)
    start = 1
    if record is not None:
        payload = record["payload"]
        if record["complete"]:
            return SteadyStateResult(
                np.asarray(payload["pi"], dtype=float),
                int(payload["iterations"]),
                float(payload["residual"]),
                "jacobi",
                note=payload.get("note"),
            )
        pi = np.asarray(payload["pi"], dtype=float)
        start = int(payload["iteration"]) + 1
    completed = start - 1
    try:
        for iteration in range(start, max_iterations + 1):
            budgets.charge_iterations(1, stage="solve")
            step = (pi @ off) * inv_diag
            total = step.sum()
            if total <= 0:
                raise SolverError(
                    "jacobi iteration collapsed to zero",
                    method="jacobi",
                    iterations=iteration,
                    residual=_residual(pi, q),
                    last_iterate=pi,
                )
            new_pi = (1.0 - relaxation) * pi + relaxation * (step / total)
            new_pi /= new_pi.sum()
            delta = float(np.abs(new_pi - pi).max())
            pi = new_pi
            completed = iteration
            if delta < tol:
                residual = _residual(pi, q)
                note = _convergence_note(delta, residual, tol)
                if ck is not None:
                    ck.save(
                        key,
                        {
                            "pi": pi.tolist(),
                            "iterations": iteration,
                            "residual": residual,
                            "note": note,
                        },
                        guard=guard,
                        complete=True,
                    )
                return SteadyStateResult(
                    pi, iteration, residual, "jacobi", note=note
                )
            if ck is not None and ck.tick(key):
                ck.save(
                    key,
                    {"pi": pi.tolist(), "iteration": completed},
                    guard=guard,
                )
    except BudgetExceeded:
        if ck is not None:
            ck.save(
                key, {"pi": pi.tolist(), "iteration": completed}, guard=guard
            )
        raise
    if ck is not None:
        ck.save(
            key, {"pi": pi.tolist(), "iteration": completed}, guard=guard
        )
    raise SolverError(
        f"jacobi iteration did not converge in {max_iterations} iterations",
        method="jacobi",
        iterations=max_iterations,
        residual=_residual(pi, q),
        last_iterate=pi,
    )


def steady_state_gauss_seidel(
    ctmc: CTMC,
    tol: float = 1e-12,
    max_iterations: int = 100_000,
    x0: Optional[np.ndarray] = None,
) -> SteadyStateResult:
    """Gauss-Seidel iteration on ``Q^T pi^T = 0`` with in-place updates.

    Uses the column (CSC-of-Q, i.e. CSR-of-Q^T) structure so each state's
    new value sees already-updated predecessors, the standard forward sweep.
    """
    faults.check("solver.gauss-seidel")
    _check_irreducible(ctmc, "gauss-seidel")
    n = ctmc.num_states
    q = ctmc.generator_matrix()
    qt = sparse.csr_matrix(q.T)
    diag = q.diagonal()
    if np.any(diag == 0):
        pi = np.ones(n) / n
        return SteadyStateResult(pi, 0, _residual(pi, q), "gauss-seidel")
    indptr, indices, data = qt.indptr, qt.indices, qt.data
    pi = _initial_vector(n, x0)
    ck = checkpoint.active()
    key, guard, record = _solver_resume(ck, "gauss-seidel", n, q, tol)
    start = 1
    if record is not None:
        payload = record["payload"]
        if record["complete"]:
            return SteadyStateResult(
                np.asarray(payload["pi"], dtype=float),
                int(payload["iterations"]),
                float(payload["residual"]),
                "gauss-seidel",
                note=payload.get("note"),
            )
        pi = np.asarray(payload["pi"], dtype=float)
        start = int(payload["iteration"]) + 1
    completed = start - 1
    try:
        for iteration in range(start, max_iterations + 1):
            # The budget hook fires before the in-place sweep touches pi,
            # so a BudgetExceeded always sees a whole-iteration vector.
            budgets.charge_iterations(1, stage="solve")
            delta = 0.0
            for j in range(n):
                acc = 0.0
                for k in range(indptr[j], indptr[j + 1]):
                    i = indices[k]
                    if i != j:
                        acc += data[k] * pi[i]
                new_value = -acc / diag[j]
                delta = max(delta, abs(new_value - pi[j]))
                pi[j] = new_value
            total = pi.sum()
            if total <= 0:
                raise SolverError(
                    "gauss-seidel iteration collapsed to zero",
                    method="gauss-seidel",
                    iterations=iteration,
                    residual=_residual(pi, q),
                    last_iterate=pi,
                )
            pi /= total
            completed = iteration
            if delta < tol:
                pi = np.clip(pi, 0.0, None)
                pi /= pi.sum()
                residual = _residual(pi, q)
                note = _convergence_note(delta, residual, tol)
                if ck is not None:
                    ck.save(
                        key,
                        {
                            "pi": pi.tolist(),
                            "iterations": iteration,
                            "residual": residual,
                            "note": note,
                        },
                        guard=guard,
                        complete=True,
                    )
                return SteadyStateResult(
                    pi, iteration, residual, "gauss-seidel", note=note
                )
            if ck is not None and ck.tick(key):
                ck.save(
                    key,
                    {"pi": pi.tolist(), "iteration": completed},
                    guard=guard,
                )
    except BudgetExceeded:
        if ck is not None:
            ck.save(
                key, {"pi": pi.tolist(), "iteration": completed}, guard=guard
            )
        raise
    if ck is not None:
        ck.save(
            key, {"pi": pi.tolist(), "iteration": completed}, guard=guard
        )
    pi = np.clip(pi, 0.0, None)
    pi /= pi.sum()
    raise SolverError(
        f"gauss-seidel did not converge in {max_iterations} iterations",
        method="gauss-seidel",
        iterations=max_iterations,
        residual=_residual(pi, q),
        last_iterate=pi,
    )


_METHODS = {
    "direct": steady_state_direct,
    "power": steady_state_power,
    "jacobi": steady_state_jacobi,
    "gauss-seidel": steady_state_gauss_seidel,
}


def steady_state(ctmc: CTMC, method: str = "direct", **kwargs) -> SteadyStateResult:
    """Dispatch to a steady-state solver by name.

    ``method`` is one of ``direct``, ``power``, ``jacobi``, ``gauss-seidel``.
    """
    try:
        solver = _METHODS[method]
    except KeyError:
        raise SolverError(
            f"unknown method {method!r}; choose from {sorted(_METHODS)}"
        ) from None
    return solver(ctmc, **kwargs)
