"""Transient solution of CTMCs via uniformization (Jensen's method).

``pi(t) = sum_k PoissonPMF(k; lambda t) * pi(0) P^k`` where ``P`` is the
uniformized DTMC.  The Poisson series is truncated adaptively so the
neglected tail mass is below the requested tolerance.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.errors import SolverError
from repro.markov.ctmc import CTMC


def uniformize(ctmc: CTMC) -> Tuple[sparse.csr_matrix, float]:
    """Return ``(P, lambda)``: the uniformized DTMC and its rate."""
    lam = ctmc.uniformization_rate()
    return ctmc.embedded_dtmc(lam), lam


def _poisson_weights(mean: float, tol: float) -> np.ndarray:
    """Poisson PMF values ``0..K`` where ``K`` is the smallest truncation
    point leaving tail mass below ``tol``.  Computed iteratively to avoid
    overflow for large means."""
    weights = [np.exp(-mean)] if mean < 700 else [0.0]
    if weights[0] == 0.0:
        # For very large means start from the (stable) normal regime:
        # compute log-pmf iteratively and exponentiate shifted values.
        k_max = int(mean + 12 * np.sqrt(mean) + 20)
        if k_max > 50_000_000:
            raise SolverError(
                f"uniformization mean {mean:.3g} needs {k_max} Poisson "
                f"terms; split the horizon into shorter steps"
            )
        log_pmf = np.empty(k_max + 1)
        log_pmf[0] = -mean
        for k in range(1, k_max + 1):
            log_pmf[k] = log_pmf[k - 1] + np.log(mean / k)
        pmf = np.exp(log_pmf - log_pmf.max())
        pmf /= pmf.sum()
        cumulative = np.cumsum(pmf)
        cutoff = int(np.searchsorted(cumulative, 1.0 - tol)) + 1
        return pmf[: cutoff + 1]
    total = weights[0]
    k = 0
    while total < 1.0 - tol:
        k += 1
        weights.append(weights[-1] * mean / k)
        total += weights[-1]
        if k > 10_000_000:
            raise SolverError("poisson truncation failed to converge")
    return np.asarray(weights)


def transient_distribution(
    ctmc: CTMC,
    initial_distribution: Sequence[float],
    time: float,
    tol: float = 1e-12,
) -> np.ndarray:
    """The distribution ``pi(t)`` starting from ``initial_distribution``.

    >>> from repro.markov.ctmc import CTMC
    >>> chain = CTMC.from_transitions(2, [(0, 1, 1.0), (1, 0, 1.0)])
    >>> pi = transient_distribution(chain, [1.0, 0.0], 50.0)
    >>> bool(abs(pi[0] - 0.5) < 1e-9)
    True
    """
    if time < 0:
        raise SolverError("time must be non-negative")
    pi0 = np.asarray(initial_distribution, dtype=float)
    if pi0.shape != (ctmc.num_states,):
        raise SolverError(
            f"initial distribution has shape {pi0.shape}, "
            f"expected ({ctmc.num_states},)"
        )
    if abs(pi0.sum() - 1.0) > 1e-9:
        raise SolverError("initial distribution must sum to 1")
    if time == 0 or ctmc.num_states == 0:
        return pi0.copy()
    p, lam = uniformize(ctmc)
    weights = _poisson_weights(lam * time, tol)
    result = np.zeros_like(pi0)
    term = pi0.copy()
    for weight in weights:
        if weight > 0:
            result += weight * term
        term = term @ p
    # Renormalize the truncation remainder.
    total = result.sum()
    if total <= 0:
        raise SolverError("transient solution lost all probability mass")
    return result / total
