"""Continuous-time Markov chains over sparse rate matrices.

A CTMC is specified, as in Section 2 of the paper, by a state space
``S = {0, .., n-1}`` and a state transition rate matrix ``R``, where
``R[i, j]`` is the rate of the transition from state ``i`` to state ``j``.
The generator is ``Q = R - rs(R)`` with ``rs(R)`` the diagonal matrix of row
sums.  The distinction between ``R`` and ``Q`` matters for lumping: ``R``
distinguishes self-loop rates that ``Q`` cancels out (the converse of the
paper's Theorem 1 fails for exactly this reason), so all lumping code in
this library works on ``R``.

States are indexed from 0 (the paper indexes from 1; nothing else changes).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.errors import ModelError


class CTMC:
    """A finite CTMC with sparse rate matrix ``R``.

    Parameters
    ----------
    rates:
        Square matrix of transition rates, anything accepted by
        ``scipy.sparse.csr_matrix``.  Negative entries are rejected.
    state_labels:
        Optional sequence of hashable labels, one per state, purely for
        presentation and debugging (e.g. tuples of place markings).
    """

    def __init__(
        self,
        rates: object,
        state_labels: Optional[Sequence[object]] = None,
    ) -> None:
        matrix = sparse.csr_matrix(rates, dtype=float)
        if matrix.shape[0] != matrix.shape[1]:
            raise ModelError(f"rate matrix must be square, got {matrix.shape}")
        if matrix.nnz and matrix.data.min() < 0:
            raise ModelError("transition rates must be non-negative")
        matrix.eliminate_zeros()
        self._rates = matrix
        if state_labels is not None and len(state_labels) != matrix.shape[0]:
            raise ModelError(
                f"{len(state_labels)} labels for {matrix.shape[0]} states"
            )
        self._labels = list(state_labels) if state_labels is not None else None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def num_states(self) -> int:
        """Size of the state space."""
        return self._rates.shape[0]

    @property
    def rate_matrix(self) -> sparse.csr_matrix:
        """The ``R`` matrix (CSR).  Treat as read-only."""
        return self._rates

    @property
    def state_labels(self) -> Optional[List[object]]:
        """State labels if provided, else ``None``."""
        return list(self._labels) if self._labels is not None else None

    def label(self, state: int) -> object:
        """Label of ``state`` (the state index itself if unlabeled)."""
        if self._labels is None:
            return state
        return self._labels[state]

    @property
    def num_transitions(self) -> int:
        """Number of non-zero entries of ``R``."""
        return self._rates.nnz

    def generator_matrix(self) -> sparse.csr_matrix:
        """``Q = R - rs(R)``: off-diagonal rates with negative row-sum
        diagonal.  Self-loop rates in ``R`` cancel out of ``Q``."""
        r = self._rates
        row_sums = np.asarray(r.sum(axis=1)).ravel()
        q = r - sparse.diags(row_sums, format="csr")
        q = sparse.csr_matrix(q)
        q.eliminate_zeros()
        return q

    def exit_rates(self) -> np.ndarray:
        """Row sums ``R(i, S)`` — total outgoing rate per state (self-loops
        included, as in the paper's exact-lumping condition)."""
        return np.asarray(self._rates.sum(axis=1)).ravel()

    def rate(self, source: int, target: int) -> float:
        """The rate ``R[source, target]``."""
        return float(self._rates[source, target])

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    def successors(self, state: int) -> List[Tuple[int, float]]:
        """Outgoing transitions of ``state`` as ``(target, rate)`` pairs."""
        row = self._rates.getrow(state)
        return list(zip(row.indices.tolist(), row.data.tolist()))

    def reachable_from(self, initial: Iterable[int]) -> List[int]:
        """States reachable from ``initial`` following positive-rate
        transitions (including the initial states), sorted ascending."""
        frontier = list(dict.fromkeys(initial))
        seen = set(frontier)
        indptr, indices = self._rates.indptr, self._rates.indices
        while frontier:
            state = frontier.pop()
            for target in indices[indptr[state] : indptr[state + 1]]:
                if target not in seen:
                    seen.add(int(target))
                    frontier.append(int(target))
        return sorted(seen)

    def restricted_to(self, states: Sequence[int]) -> "CTMC":
        """The sub-CTMC over ``states`` (indices are renumbered densely).

        Raises :class:`ModelError` if the subset is not closed under
        transitions (a rate would leave the subset and be silently lost).
        """
        states = sorted(set(states))
        index = {s: i for i, s in enumerate(states)}
        sub = self._rates[states, :]
        outside_mass = sub.sum() - sub[:, states].sum()
        if outside_mass > 0:
            raise ModelError(
                "state subset is not closed: "
                f"rate {outside_mass!r} leaves the subset"
            )
        labels = None
        if self._labels is not None:
            labels = [self._labels[s] for s in states]
        return CTMC(sub[:, states], state_labels=labels)

    def is_irreducible(self) -> bool:
        """True if the chain is strongly connected."""
        n_components, _ = sparse.csgraph.connected_components(
            self._rates, directed=True, connection="strong"
        )
        return bool(n_components == 1)

    def uniformization_rate(self) -> float:
        """A valid uniformization constant: ``1.01 * max exit rate``
        (strictly above the maximum so the DTMC has self-loops and is
        aperiodic), or 1.0 for a chain with no transitions."""
        exit_rates = self.exit_rates()
        top = float(exit_rates.max()) if exit_rates.size else 0.0
        return 1.01 * top if top > 0 else 1.0

    def embedded_dtmc(self, rate: Optional[float] = None) -> sparse.csr_matrix:
        """The uniformized DTMC ``P = I + Q / rate`` (row-stochastic)."""
        lam = self.uniformization_rate() if rate is None else float(rate)
        exit_rates = self.exit_rates()
        if lam < exit_rates.max(initial=0.0):
            raise ModelError("uniformization rate below maximum exit rate")
        q = self.generator_matrix()
        p = sparse.eye(self.num_states, format="csr") + q.multiply(1.0 / lam)
        return sparse.csr_matrix(p)

    def __repr__(self) -> str:
        return (
            f"CTMC(states={self.num_states}, transitions={self.num_transitions})"
        )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_transitions(
        cls,
        num_states: int,
        transitions: Iterable[Tuple[int, int, float]],
        state_labels: Optional[Sequence[object]] = None,
    ) -> "CTMC":
        """Build a CTMC from ``(source, target, rate)`` triples.

        Duplicate ``(source, target)`` pairs have their rates summed, which
        matches how multiple model activities between the same pair of
        states combine.
        """
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        for source, target, rate in transitions:
            if rate < 0:
                raise ModelError(f"negative rate {rate} on {source}->{target}")
            if rate == 0:
                continue
            rows.append(source)
            cols.append(target)
            data.append(float(rate))
        matrix = sparse.coo_matrix(
            (data, (rows, cols)), shape=(num_states, num_states)
        ).tocsr()
        matrix.sum_duplicates()
        return cls(matrix, state_labels=state_labels)

    @classmethod
    def from_dict(
        cls,
        rates: Dict[Tuple[int, int], float],
        num_states: Optional[int] = None,
    ) -> "CTMC":
        """Build a CTMC from a ``{(source, target): rate}`` mapping."""
        if num_states is None:
            num_states = 1 + max(
                (max(s, t) for (s, t) in rates), default=-1
            )
        triples = ((s, t, r) for (s, t), r in rates.items())
        return cls.from_transitions(num_states, triples)
