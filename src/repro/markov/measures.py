"""High-level reward measures computed from an MRP.

The paper's Section 2: "Many of those high-level measures can be computed
using reward values associated with each state of the CTMC (i.e., rate
rewards) and the stationary and transient probability vectors."  These
helpers are the measures the benchmark harness and examples use, and they
are the quantities that lumping must preserve (verified throughout the test
suite: measure(unlumped MRP) == measure(lumped MRP)).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SolverError
from repro.markov.mrp import MarkovRewardProcess
from repro.markov.solvers import steady_state
from repro.markov.transient import transient_distribution


def steady_state_reward(mrp: MarkovRewardProcess, method: str = "direct") -> float:
    """Expected rate reward in steady state: ``sum_s pi(s) r(s)``."""
    result = steady_state(mrp.ctmc, method=method)
    return float(result.distribution @ mrp.rewards)


def expected_reward_at(mrp: MarkovRewardProcess, time: float) -> float:
    """Expected instantaneous rate reward at time ``t``:
    ``sum_s pi_t(s) r(s)`` with ``pi_t`` the transient distribution started
    from the MRP's initial distribution."""
    pi_t = transient_distribution(mrp.ctmc, mrp.initial_distribution, time)
    return float(pi_t @ mrp.rewards)


def accumulated_reward(
    mrp: MarkovRewardProcess, horizon: float, steps: int = 256
) -> float:
    """Expected reward accumulated over ``[0, horizon]``,
    ``E[int_0^T r(X_t) dt]``, via composite-trapezoid integration of the
    instantaneous expected reward.

    ``steps`` trades accuracy for time; the integrand is smooth (a finite
    mixture of exponentials), so a few hundred points give high accuracy.
    """
    if horizon < 0:
        raise SolverError("horizon must be non-negative")
    if horizon == 0:
        return 0.0
    if steps < 1:
        raise SolverError("steps must be positive")
    times = np.linspace(0.0, horizon, steps + 1)
    values = np.array([expected_reward_at(mrp, float(t)) for t in times])
    return float(np.trapezoid(values, times))


def probability_of_states(
    mrp: MarkovRewardProcess, states, method: str = "direct"
) -> float:
    """Steady-state probability of being in the given set of states.

    Useful for availability measures: e.g. "probability that fewer than two
    hypercube servers are failed" in the paper's example model.
    """
    result = steady_state(mrp.ctmc, method=method)
    index = list(states)
    return float(result.distribution[index].sum())
