"""Continuous-time Markov chains, Markov reward processes and solvers."""

from repro.markov.ctmc import CTMC
from repro.markov.dtmc import DTMC, lump_dtmc
from repro.markov.mrp import MarkovRewardProcess
from repro.markov.solvers import (
    SteadyStateResult,
    steady_state,
    steady_state_direct,
    steady_state_gauss_seidel,
    steady_state_jacobi,
    steady_state_power,
)
from repro.markov.transient import transient_distribution, uniformize
from repro.markov.measures import (
    accumulated_reward,
    expected_reward_at,
    steady_state_reward,
)

__all__ = [
    "CTMC",
    "DTMC",
    "lump_dtmc",
    "MarkovRewardProcess",
    "SteadyStateResult",
    "steady_state",
    "steady_state_direct",
    "steady_state_gauss_seidel",
    "steady_state_jacobi",
    "steady_state_power",
    "transient_distribution",
    "uniformize",
    "accumulated_reward",
    "expected_reward_at",
    "steady_state_reward",
]
