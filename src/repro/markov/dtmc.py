"""Discrete-time Markov chains and their lumping.

Buchholz's exact/ordinary lumpability theory (the paper's reference [2])
is stated for DTMCs; the CTMC algorithms in this library are its
continuous-time instantiation.  This module provides the discrete-time
side: a :class:`DTMC` with stationary/transient analysis, conversions to
and from CTMCs via uniformization, and lumping that reuses the same
partition-refinement engine (the key functions only ever see a
non-negative matrix, so ``P`` works exactly like ``R``).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.errors import ModelError, SolverError
from repro.markov.ctmc import CTMC
from repro.partitions import Partition


class DTMC:
    """A finite discrete-time Markov chain with row-stochastic matrix P."""

    def __init__(
        self,
        transition_matrix,
        state_labels: Optional[Sequence[object]] = None,
        tol: float = 1e-9,
    ) -> None:
        matrix = sparse.csr_matrix(transition_matrix, dtype=float)
        if matrix.shape[0] != matrix.shape[1]:
            raise ModelError(
                f"transition matrix must be square, got {matrix.shape}"
            )
        if matrix.nnz and matrix.data.min() < 0:
            raise ModelError("transition probabilities must be non-negative")
        row_sums = np.asarray(matrix.sum(axis=1)).ravel()
        if matrix.shape[0] and np.abs(row_sums - 1.0).max() > tol:
            worst = int(np.abs(row_sums - 1.0).argmax())
            raise ModelError(
                f"row {worst} sums to {row_sums[worst]}, expected 1"
            )
        matrix.eliminate_zeros()
        self._matrix = matrix
        if state_labels is not None and len(state_labels) != matrix.shape[0]:
            raise ModelError(
                f"{len(state_labels)} labels for {matrix.shape[0]} states"
            )
        self._labels = list(state_labels) if state_labels is not None else None

    @property
    def num_states(self) -> int:
        """Size of the state space."""
        return self._matrix.shape[0]

    @property
    def transition_matrix(self) -> sparse.csr_matrix:
        """The matrix ``P`` (CSR).  Treat as read-only."""
        return self._matrix

    @property
    def state_labels(self):
        """State labels if provided, else ``None``."""
        return list(self._labels) if self._labels is not None else None

    def probability(self, source: int, target: int) -> float:
        """``P[source, target]``."""
        return float(self._matrix[source, target])

    def step(self, distribution: np.ndarray, steps: int = 1) -> np.ndarray:
        """``distribution @ P^steps``."""
        pi = np.asarray(distribution, dtype=float)
        if pi.shape != (self.num_states,):
            raise ModelError(
                f"distribution has shape {pi.shape}, "
                f"expected ({self.num_states},)"
            )
        for _ in range(steps):
            pi = pi @ self._matrix
        return pi

    def is_irreducible(self) -> bool:
        """True if the chain is strongly connected."""
        n_components, _ = sparse.csgraph.connected_components(
            self._matrix, directed=True, connection="strong"
        )
        return bool(n_components == 1)

    def stationary_distribution(
        self, tol: float = 1e-13, max_iterations: int = 1_000_000
    ) -> np.ndarray:
        """The stationary distribution via damped power iteration.

        Damping (Cesaro averaging of consecutive iterates) makes the
        iteration converge for periodic chains too.
        """
        if self.num_states == 0:
            raise SolverError("cannot solve an empty chain")
        if not self.is_irreducible():
            raise SolverError(
                "stationary distribution requires an irreducible chain"
            )
        pi = np.full(self.num_states, 1.0 / self.num_states)
        for _ in range(max_iterations):
            new_pi = 0.5 * pi + 0.5 * (pi @ self._matrix)
            if np.abs(new_pi - pi).max() < tol:
                new_pi /= new_pi.sum()
                return new_pi
            pi = new_pi
        raise SolverError("power iteration did not converge")

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------

    @classmethod
    def from_ctmc(cls, ctmc: CTMC, rate: Optional[float] = None) -> "DTMC":
        """The uniformized DTMC of a CTMC (same stationary distribution)."""
        return cls(
            ctmc.embedded_dtmc(rate), state_labels=ctmc.state_labels
        )

    def to_ctmc(self, rate: float = 1.0) -> CTMC:
        """A CTMC whose uniformization (at ``rate``) is this DTMC: rate
        matrix ``rate * P`` (self-loops preserved in R)."""
        if rate <= 0:
            raise ModelError("rate must be positive")
        return CTMC(self._matrix * rate, state_labels=self.state_labels)

    def __repr__(self) -> str:
        return f"DTMC(states={self.num_states}, nnz={self._matrix.nnz})"


def lump_dtmc(
    dtmc: DTMC,
    kind: str = "ordinary",
    initial: Optional[Partition] = None,
    strategy: str = "all-but-largest",
) -> Tuple[Partition, DTMC]:
    """Optimal lumping of a DTMC (Buchholz 1994).

    Reuses the CTMC machinery: the key functions see only a non-negative
    matrix, and the lumped-matrix formulas coincide (``P(C_i, C_j)/|C_i|``
    for exact, representative row sums for ordinary).  The lumped matrix
    is again row-stochastic, which this function asserts.
    """
    from repro.lumping.state_level import lump_mrp
    from repro.markov.mrp import MarkovRewardProcess

    pseudo_ctmc = CTMC(dtmc.transition_matrix, state_labels=dtmc.state_labels)
    result = lump_mrp(
        MarkovRewardProcess(pseudo_ctmc),
        kind=kind,
        initial=initial,
        strategy=strategy,
    )
    lumped = DTMC(
        result.lumped.ctmc.rate_matrix,
        state_labels=result.lumped.ctmc.state_labels,
    )
    return result.partition, lumped
