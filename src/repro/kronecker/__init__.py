"""Kronecker descriptors: sums of Kronecker products of small matrices.

A Kronecker descriptor is the algebraic form of a stochastic automata
network (Plateau & Atif 1991): ``R = sum_e lambda_e * W_1^e (x) .. (x)
W_L^e``.  MDs generalize this representation (Section 3 of the paper); the
conversion :func:`descriptor_to_md` is one of the two standard ways MDs are
obtained in practice.
"""

from repro.kronecker.descriptor import KroneckerDescriptor, KroneckerTerm
from repro.kronecker.ops import descriptor_vector_multiply
from repro.kronecker.to_md import descriptor_to_md

__all__ = [
    "KroneckerDescriptor",
    "KroneckerTerm",
    "descriptor_vector_multiply",
    "descriptor_to_md",
]
