"""Conversion of Kronecker descriptors to matrix diagrams.

Every Kronecker term becomes a chain of MD nodes, and hash-consing inside
the MD builder shares equal suffixes (identity tails, repeated factors)
across terms.  The resulting MD represents exactly the descriptor's matrix
(verified in tests by flattening both).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.kronecker.descriptor import KroneckerDescriptor
from repro.matrixdiagram.build import md_from_kronecker_terms
from repro.matrixdiagram.md import MatrixDiagram


def descriptor_to_md(
    descriptor: KroneckerDescriptor,
    level_state_labels: Optional[Sequence[Sequence[object]]] = None,
) -> MatrixDiagram:
    """The MD of the descriptor's matrix, with component ``i`` at level
    ``i + 1``'s place (components map to levels in order)."""
    sizes = descriptor.component_sizes
    terms = []
    for term in descriptor.terms:
        matrices = []
        for component in range(descriptor.num_components):
            entries = term.factor_entries(component)
            if entries is None:
                entries = {
                    (s, s): 1.0 for s in range(sizes[component])
                }
            matrices.append(entries)
        terms.append((term.weight, matrices))
    return md_from_kronecker_terms(
        terms, sizes, level_state_labels=level_state_labels
    )
