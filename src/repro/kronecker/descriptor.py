"""Kronecker descriptors of structured rate matrices.

A :class:`KroneckerDescriptor` holds component sizes ``(n_1, .., n_L)`` and
terms ``lambda_e * W_1^e (x) .. (x) W_L^e``.  A term's factor may be
``None`` to denote the identity matrix — the common case for components an
event does not touch — which both saves memory and lets the shuffle
product skip whole components.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.errors import ModelError
from repro.matrixdiagram.build import MatrixLike, matrix_entries


@dataclass(frozen=True)
class KroneckerTerm:
    """One term ``weight * W_1 (x) .. (x) W_L``; ``factors[i] is None``
    denotes the identity on component ``i``."""

    weight: float
    factors: Tuple[Optional[Tuple[Tuple[int, int, float], ...]], ...]

    @staticmethod
    def build(
        weight: float,
        factors: Sequence[Optional[MatrixLike]],
    ) -> "KroneckerTerm":
        """Normalize matrix-like factors into entry tuples."""
        normalized: List[Optional[Tuple[Tuple[int, int, float], ...]]] = []
        for factor in factors:
            if factor is None:
                normalized.append(None)
            else:
                entries = matrix_entries(factor)
                normalized.append(
                    tuple(sorted((r, c, v) for (r, c), v in entries.items()))
                )
        return KroneckerTerm(float(weight), tuple(normalized))

    def factor_entries(self, component: int) -> Optional[Dict[Tuple[int, int], float]]:
        """Entries of the factor for ``component`` (``None`` = identity)."""
        factor = self.factors[component]
        if factor is None:
            return None
        return {(r, c): v for r, c, v in factor}


class KroneckerDescriptor:
    """``R = sum_e weight_e * W_1^e (x) .. (x) W_L^e`` over components of
    sizes ``component_sizes``."""

    def __init__(
        self,
        component_sizes: Sequence[int],
        terms: Sequence[KroneckerTerm] = (),
    ) -> None:
        if not component_sizes:
            raise ModelError("descriptor needs at least one component")
        if any(size < 1 for size in component_sizes):
            raise ModelError("component sizes must be positive")
        self._sizes = tuple(int(s) for s in component_sizes)
        self._terms: List[KroneckerTerm] = []
        for term in terms:
            self._check_term(term)
            self._terms.append(term)

    def _check_term(self, term: KroneckerTerm) -> None:
        if len(term.factors) != len(self._sizes):
            raise ModelError(
                f"term has {len(term.factors)} factors, "
                f"expected {len(self._sizes)}"
            )
        for component, factor in enumerate(term.factors):
            if factor is None:
                continue
            size = self._sizes[component]
            for r, c, _v in factor:
                if r >= size or c >= size:
                    raise ModelError(
                        f"factor entry ({r},{c}) outside component "
                        f"{component} of size {size}"
                    )

    @property
    def component_sizes(self) -> Tuple[int, ...]:
        """Sizes ``(n_1, .., n_L)`` of the component state spaces."""
        return self._sizes

    @property
    def num_components(self) -> int:
        """Number of components ``L``."""
        return len(self._sizes)

    @property
    def terms(self) -> List[KroneckerTerm]:
        """The descriptor's terms (copy of the list; terms are immutable)."""
        return list(self._terms)

    @property
    def num_terms(self) -> int:
        """Number of Kronecker terms."""
        return len(self._terms)

    def add_term(
        self, weight: float, factors: Sequence[Optional[MatrixLike]]
    ) -> None:
        """Append a term; see :class:`KroneckerTerm`."""
        term = KroneckerTerm.build(weight, factors)
        self._check_term(term)
        self._terms.append(term)

    def potential_size(self) -> int:
        """Size of the product space ``n_1 * .. * n_L``."""
        return math.prod(self._sizes)

    def factor_matrix(
        self, term_index: int, component: int
    ) -> sparse.csr_matrix:
        """The factor of term ``term_index`` on ``component`` as a sparse
        matrix (identity if the stored factor is ``None``)."""
        size = self._sizes[component]
        factor = self._terms[term_index].factors[component]
        if factor is None:
            return sparse.eye(size, format="csr")
        rows = [r for r, _c, _v in factor]
        cols = [c for _r, c, _v in factor]
        data = [v for _r, _c, v in factor]
        return sparse.coo_matrix(
            (data, (rows, cols)), shape=(size, size)
        ).tocsr()

    def flat_matrix(self) -> sparse.csr_matrix:
        """The full matrix, materialized (for verification on small spaces)."""
        n = self.potential_size()
        total = sparse.csr_matrix((n, n))
        for term_index, term in enumerate(self._terms):
            product = sparse.csr_matrix(np.array([[term.weight]]))
            for component in range(self.num_components):
                product = sparse.kron(
                    product, self.factor_matrix(term_index, component), format="csr"
                )
            total = total + product
        total.eliminate_zeros()
        return sparse.csr_matrix(total)

    def __repr__(self) -> str:
        return (
            f"KroneckerDescriptor(sizes={self._sizes}, "
            f"terms={len(self._terms)})"
        )
