"""Descriptor-vector products by the shuffle algorithm.

For a single Kronecker product, ``x (W_1 (x) .. (x) W_L)`` factors into L
small multiplications by viewing ``x`` as an L-dimensional tensor and
applying each ``W_i`` along axis ``i`` (Plateau's shuffle algorithm).
Identity factors are skipped outright, which is where descriptors beat flat
matrices: an event touching k components costs O(k) axis multiplies instead
of a product-space pass.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.kronecker.descriptor import KroneckerDescriptor


def _apply_axis(
    tensor: np.ndarray, matrix: np.ndarray, axis: int, side: str
) -> np.ndarray:
    """Multiply ``tensor`` by ``matrix`` along ``axis``.

    ``side='left'`` computes the row-vector convention ``x W`` along the
    axis; ``side='right'`` computes ``W x``.
    """
    moved = np.moveaxis(tensor, axis, -1)
    shape = moved.shape
    flat = moved.reshape(-1, shape[-1])
    if side == "left":
        flat = flat @ matrix
    else:
        flat = flat @ matrix.T
    return np.moveaxis(flat.reshape(shape), -1, axis)


def descriptor_vector_multiply(
    descriptor: KroneckerDescriptor,
    vector: np.ndarray,
    side: str = "left",
) -> np.ndarray:
    """``vector @ R`` (``side='left'``) or ``R @ vector`` (``side='right'``)
    where ``R`` is the descriptor's matrix over the potential space.

    >>> import numpy as np
    >>> from repro.kronecker import KroneckerDescriptor
    >>> d = KroneckerDescriptor((2, 2))
    >>> d.add_term(1.0, [np.array([[0, 1], [0, 0]]), None])
    >>> descriptor_vector_multiply(d, np.array([1.0, 0, 0, 0]))
    array([0., 0., 1., 0.])
    """
    if side not in ("left", "right"):
        raise ModelError(f"side must be 'left' or 'right', not {side!r}")
    x = np.asarray(vector, dtype=float)
    n = descriptor.potential_size()
    if x.shape != (n,):
        raise ModelError(f"vector has shape {x.shape}, expected ({n},)")
    sizes = descriptor.component_sizes
    result = np.zeros(n)
    for term_index, term in enumerate(descriptor.terms):
        tensor: Optional[np.ndarray] = None
        for component in range(descriptor.num_components):
            if term.factors[component] is None:
                continue
            if tensor is None:
                tensor = x.reshape(sizes)
            # Benchmarked (benchmarks/bench_kronecker_axis.py): the dense
            # BLAS axis multiply beats the sparse variant by 8-33% on
            # every component size 2-64, and the densified operand is one
            # O(n_i^2) factor, never the O(N) product space.
            matrix = descriptor.factor_matrix(
                term_index, component
            ).toarray()  # reprolint: disable=RL003 -- dense wins (see comment above)
            tensor = _apply_axis(tensor, matrix, component, side)
        if tensor is None:
            # All-identity term: contributes weight * x.
            result += term.weight * x
        else:
            result += term.weight * tensor.reshape(-1)
    return result
