"""Import shim: the real ``reprolint`` package lives in ``tools/reprolint``.

The repo's runtime convention puts ``src/`` on ``sys.path`` (tier-1
tests run with ``PYTHONPATH=src``; ``pip install -e .`` maps ``src/``
packages).  The linter is developer tooling and lives under ``tools/``
with the rest of it, so this one-file package redirects the import
system there: it rebinds ``__path__`` to the real package directory and
executes the real ``__init__`` in this namespace.  After that,
``import reprolint.core`` and ``python -m reprolint`` resolve against
``tools/reprolint`` transparently.
"""

from pathlib import Path as _Path

_real = _Path(__file__).resolve().parents[2] / "tools" / "reprolint"
if not (_real / "__init__.py").is_file():  # pragma: no cover
    raise ImportError(
        f"reprolint implementation not found at {_real}; this shim only "
        "works from a source checkout (tools/reprolint must exist)"
    )
__path__ = [str(_real)]
exec(
    compile(
        (_real / "__init__.py").read_text(encoding="utf-8"),
        str(_real / "__init__.py"),
        "exec",
    )
)
