"""Dependability analysis of the hypercube subsystem via lumping.

The paper's availability criterion: "the subsystem is considered
unavailable when two or more servers are down."  This example computes

* steady-state unavailability, and
* the expected unavailability at a sequence of time points (transient),

on the LUMPED chain, and cross-checks against the unlumped chain.  The
failure bits of the symmetric servers lump by count, which is what makes
the transient analysis cheap.

Run:  python examples/availability_hypercube.py
"""

import numpy as np

from repro.lumping import compositional_lump
from repro.markov import steady_state, transient_distribution
from repro.models import TandemParams, build_tandem, tandem_md_model
from repro.models.tandem import projected_event_model
from repro.statespace import reachable_bfs


def main() -> None:
    params = TandemParams(
        jobs=1, cube_dim=2, msmq_servers=2, msmq_queues=2,
        failure_rate=0.01, repair_rate=0.5,
    )
    compiled = build_tandem(params)
    reach = reachable_bfs(compiled.event_model)
    event_model = projected_event_model(compiled, reach)
    reach = reachable_bfs(event_model)
    model = tandem_md_model(
        event_model, params, reachable=reach, reward="unavailability"
    )
    result = compositional_lump(model, "ordinary")
    print(f"states: {reach.num_states} -> {len(result.lumped.reachable)}")

    lumped = result.lumped.flat_mrp()
    unavailability = float(
        steady_state(lumped.ctmc).distribution @ lumped.rewards
    )
    print(f"steady-state unavailability (lumped chain): {unavailability:.3e}")

    # Transient unavailability from the all-up initial state.
    pi0 = lumped.initial_distribution
    print("transient unavailability:")
    for t in (1.0, 10.0, 100.0, 1000.0):
        pi_t = transient_distribution(lumped.ctmc, pi0, t)
        print(f"  t={t:7.1f}: {float(pi_t @ lumped.rewards):.3e}")

    # Cross-check in the unlumped chain.
    mrp = model.flat_mrp()
    exact = float(steady_state(mrp.ctmc).distribution @ mrp.rewards)
    print(f"steady-state unavailability (unlumped chain): {exact:.3e}")
    assert abs(exact - unavailability) < 1e-10 + 1e-6 * abs(exact)
    print("lumped and unlumped measures agree.")


if __name__ == "__main__":
    main()
