"""Replication (Rep) + compositional lumping: a server farm with spares.

N identical servers fail and grab spares from a shared pool refilled by a
depot.  The `replicate` operator builds the N anonymous copies inside one
MD level; the compositional lumping algorithm then discovers the replica
symmetry purely from the MD — the per-server state bits lump to the count
of up servers, so the lumped chain's size grows linearly instead of
exponentially in N.

Run:  python examples/replicated_server_farm.py [N]
"""

import sys

from repro.lumping import MDModel, compositional_lump
from repro.markov import steady_state
from repro.san import Activity, Case, Join, Place, SANModel, compile_join, replicate
from repro.statespace import reachable_bfs


def server_template(spares: int) -> SANModel:
    places = [Place("spares", spares, spares), Place("up", 1, 1)]

    def fail_rate(marking):
        return 0.05 if marking["up"] == 1 else 0.0

    def fail(marking):
        marking = dict(marking)
        marking["up"] = 0
        return marking

    def swap_rate(marking):
        if marking["up"] == 0 and marking["spares"] > 0:
            return 2.0
        return 0.0

    def swap(marking):
        marking = dict(marking)
        marking["up"] = 1
        marking["spares"] -= 1
        return marking

    return SANModel(
        "server",
        places,
        [
            Activity("fail", fail_rate, [Case(1.0, fail)], shared=False),
            Activity("swap", swap_rate, [Case(1.0, swap)], shared=True),
        ],
    )


def depot(spares: int) -> SANModel:
    places = [Place("spares", spares, spares), Place("repairing", 1, 0)]

    def start_rate(marking):
        return 1.0 if marking["spares"] < spares and marking["repairing"] == 0 else 0.0

    def start(marking):
        marking = dict(marking)
        marking["repairing"] = 1
        return marking

    def finish_rate(marking):
        return 0.8 if marking["repairing"] == 1 else 0.0

    def finish(marking):
        marking = dict(marking)
        marking["repairing"] = 0
        marking["spares"] = min(spares, marking["spares"] + 1)
        return marking

    return SANModel(
        "depot",
        places,
        [
            Activity("start", start_rate, [Case(1.0, start)], shared=True),
            Activity("finish", finish_rate, [Case(1.0, finish)], shared=True),
        ],
    )


def main(replicas: int = 6, spares: int = 2) -> None:
    farm = replicate(server_template(spares), replicas, shared_names=["spares"])
    join = Join([farm, depot(spares)])
    compiled = compile_join(join)
    reach = reachable_bfs(compiled.event_model)
    model = MDModel(
        compiled.event_model.to_md(),
        reachable=reach.potential_indices(),
    )
    print(f"{replicas} servers: {reach.num_states} reachable states, "
          f"farm level {model.md.level_size(2)} substates")

    result = compositional_lump(model, "ordinary")
    farm_reduction = result.reductions[1]
    print(f"farm level lumped: {farm_reduction.original_size} -> "
          f"{farm_reduction.lumped_size} (up-server counts)")
    print(f"overall: {reach.num_states} -> {len(result.lumped.reachable)}")

    # Probability that fewer than half the servers are up, from the lumped
    # chain (rewards: indicator on the lumped farm level's class labels).
    lumped = result.lumped
    pi_hat = steady_state(lumped.flat_ctmc()).distribution
    labels = lumped.md.level_labels(2)
    degraded_mass = 0.0
    for position, index in enumerate(lumped.reachable):
        state = lumped.state_tuple(index)
        label = labels[state[1]]
        members = label if isinstance(label[0], tuple) else (label,)
        up_count = sum(members[0])
        if up_count < (replicas + 1) // 2:
            degraded_mass += pi_hat[position]
    print(f"P(fewer than half the servers up) = {degraded_mass:.3e}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
