"""A budgeted analysis run that degrades gracefully instead of dying.

Runs the tandem pipeline twice: once clean, and once with the fault
injector taking down the direct solver and the MDD reachability engine
while a resource budget caps the run.  Both runs complete; the second
one's RunReport records exactly which fallbacks fired, and the computed
measure is identical — degradation costs time, never correctness.

Run:  python examples/robust_pipeline.py
"""

import numpy as np

from repro.bench.table1 import run_table1_row_robust
from repro.models import TandemParams
from repro.robust.budgets import Budget
from repro.robust.faults import inject_faults


def main() -> None:
    params = TandemParams(jobs=1, cube_dim=2, msmq_servers=2, msmq_queues=2)

    print("=== clean run (MDD engine, direct solver) ===")
    clean = run_table1_row_robust(1, params, engines=("mdd", "bfs"))
    print(clean.report.render())

    print()
    print("=== degraded run (direct solver and MDD engine down, "
          "60s budget) ===")
    budget = Budget(wall_clock_seconds=60, max_states=1_000_000)
    with inject_faults("solver.direct,reachability.mdd"):
        degraded = run_table1_row_robust(
            1, params, engines=("mdd", "bfs"), budget=budget
        )
    print(degraded.report.render())

    drift = float(np.abs(degraded.stationary - clean.stationary).max())
    print()
    print(f"engine used:   {clean.reach_engine} -> {degraded.reach_engine}")
    print(f"solver used:   {clean.solve_method} -> {degraded.solve_method}")
    print(f"max |pi drift|: {drift:.2e} (identical up to solver tolerance)")
    assert drift < 1e-8


if __name__ == "__main__":
    main()
