"""A budgeted analysis run that degrades gracefully instead of dying.

Runs the tandem pipeline twice: once clean, and once with the fault
injector taking down the direct solver and the MDD reachability engine
while a resource budget caps the run.  Both runs complete; the second
one's RunReport records exactly which fallbacks fired, and the computed
measure is identical — degradation costs time, never correctness.

Then demonstrates crash-safe checkpoint/resume: a third run is killed
mid-pipeline (an injected budget fault standing in for a kill -9), and
a fourth resumes from the checkpoint directory and finishes with the
exact same stationary distribution.

Run:  python examples/robust_pipeline.py
"""

import tempfile

import numpy as np

from repro.bench.table1 import run_table1_row_robust
from repro.models import TandemParams
from repro.robust.budgets import Budget, BudgetExceeded
from repro.robust.faults import inject_faults


def main() -> None:
    params = TandemParams(jobs=1, cube_dim=2, msmq_servers=2, msmq_queues=2)

    print("=== clean run (MDD engine, direct solver) ===")
    clean = run_table1_row_robust(1, params, engines=("mdd", "bfs"))
    print(clean.report.render())

    print()
    print("=== degraded run (direct solver and MDD engine down, "
          "60s budget) ===")
    budget = Budget(wall_clock_seconds=60, max_states=1_000_000)
    with inject_faults("solver.direct,reachability.mdd"):
        degraded = run_table1_row_robust(
            1, params, engines=("mdd", "bfs"), budget=budget
        )
    print(degraded.report.render())

    drift = float(np.abs(degraded.stationary - clean.stationary).max())
    print()
    print(f"engine used:   {clean.reach_engine} -> {degraded.reach_engine}")
    print(f"solver used:   {clean.solve_method} -> {degraded.solve_method}")
    print(f"max |pi drift|: {drift:.2e} (identical up to solver tolerance)")
    assert drift < 1e-8

    print()
    print("=== crash-safe checkpoint/resume ===")
    with tempfile.TemporaryDirectory() as ck_dir:
        # Stage a crash: from the 200th cooperative check onward the run
        # "stays dead" (an injected BudgetExceeded plays the kill -9).
        try:
            with inject_faults("budget:200+"), Budget(max_iterations=10**9):
                run_table1_row_robust(1, params, checkpoint_dir=ck_dir)
        except BudgetExceeded as exc:
            print(f"killed mid-pipeline: {exc}")
        # Resume from the snapshots; the finished stages are skipped and
        # the interrupted loop picks up where it stopped.
        resumed = run_table1_row_robust(
            1, params, checkpoint_dir=ck_dir, resume=True
        )
        for note in resumed.report.notes:
            if "checkpoint" in note:
                print(note)
        match = bool(np.array_equal(resumed.stationary, clean.stationary))
        print(f"resumed == uninterrupted (bitwise): {match}")
        assert match


if __name__ == "__main__":
    main()
