"""Supervised execution: crash, hang, and OOM survival, end to end.

Runs the tandem pipeline under the watchdog supervisor three ways:

1. a clean supervised run — one child process, one "ok" attempt;
2. a kill storm — the fault injector SIGKILLs the child mid-pipeline
   and injects an OOM on the restart; the supervisor restarts from
   checkpoint each time and the final stationary distribution is
   *bitwise identical* to the clean run;
3. a stays-dead fault — every attempt dies, the crash-loop circuit
   breaker trips, and the structured diagnosis says why.

Run:  python examples/supervised_pipeline.py
"""

import json
import tempfile

import numpy as np

from repro.bench.table1 import run_table1_row_robust
from repro.models import TandemParams
from repro.robust import faults
from repro.robust.retry import RetryPolicy
from repro.robust.supervisor import CrashLoopError, SupervisorConfig


def main() -> None:
    params = TandemParams(jobs=1, cube_dim=2, msmq_servers=2, msmq_queues=2)
    config = SupervisorConfig(
        policy=RetryPolicy(backoff_initial_seconds=0.05),
        heartbeat_timeout_seconds=30.0,
    )

    print("=== clean supervised run ===")
    clean = run_table1_row_robust(
        1, params, supervised=True, supervisor=config
    )
    for attempt in clean.report.process_attempts:
        print(
            f"attempt #{attempt.index}: {attempt.exit_reason} "
            f"({attempt.seconds:.2f}s, rung {attempt.degradation!r})"
        )

    print()
    print("=== kill storm: SIGKILL at budget call 40, OOM at call 80 ===")
    with tempfile.TemporaryDirectory() as ck_dir:
        faults.reload_env("budget:40@sigkill,budget:80@oom")
        try:
            stormed = run_table1_row_robust(
                1,
                params,
                supervised=True,
                supervisor=config,
                checkpoint_dir=ck_dir,
            )
        finally:
            faults.reload_env("")
    for attempt in stormed.report.process_attempts:
        detail = f" [{attempt.error}]" if attempt.error else ""
        print(
            f"attempt #{attempt.index}: {attempt.exit_reason} "
            f"(rung {attempt.degradation!r}){detail}"
        )
    match = bool(np.array_equal(stormed.stationary, clean.stationary))
    print(f"stormed == clean (bitwise): {match}")
    assert match

    print()
    print("=== stays-dead fault: the circuit breaker trips ===")
    breaker_config = SupervisorConfig(
        policy=RetryPolicy(max_restarts=2, backoff_initial_seconds=0.05),
        heartbeat_timeout_seconds=30.0,
    )
    with tempfile.TemporaryDirectory() as ck_dir:
        faults.reload_env("budget:1+@sigkill")
        try:
            run_table1_row_robust(
                1,
                params,
                supervised=True,
                supervisor=breaker_config,
                checkpoint_dir=ck_dir,
            )
        except CrashLoopError as exc:
            print(f"crash loop detected: {exc}")
            print(json.dumps(exc.diagnosis, indent=2))
        else:
            raise AssertionError("the breaker should have tripped")
        finally:
            faults.reload_env("")


if __name__ == "__main__":
    main()
