"""The durable analysis service, end to end.

Drives `repro.service` through its headline guarantees:

1. submit a small batch with duplicates — the duplicates coalesce onto
   one primary and the batch costs exactly N_distinct solves;
2. kill a worker slot mid-run with the fault injector — the dispatcher
   restarts it and the queue still drains, results bitwise-identical
   to computing directly;
3. resubmit everything — pure cache hits, resolved at submit time;
4. dead-letter a job whose every lease expires, and read its
   structured diagnosis.

Run:  python examples/service_pipeline.py
"""

import os
import tempfile

from repro.robust import faults
from repro.robust.retry import RetryPolicy
from repro.service import (
    Dispatcher,
    DispatcherConfig,
    JobStore,
    ResultCache,
    canonical_digest,
    demo_spec,
    solve_spec,
)
from repro.service.store import DONE


def open_service(root):
    store = JobStore(os.path.join(root, "store"))
    cache = ResultCache(os.path.join(root, "store", "cache"))
    return store, cache


def main() -> None:
    specs = [
        demo_spec("redundant:3,1"),
        demo_spec("redundant:2,1"),
        demo_spec("redundant:3,1"),  # duplicate of the first
        demo_spec("tandem:1,2,2,2"),
    ]

    with tempfile.TemporaryDirectory() as root:
        store, cache = open_service(root)

        print("=== submit (1 duplicate in 4 jobs) ===")
        for spec in specs:
            outcome = store.submit(spec, cache=cache)
            note = (
                f" (coalesced with {outcome.coalesced_with})"
                if outcome.coalesced_with
                else ""
            )
            print(f"  {outcome.job_id} {outcome.state}{note}")

        print()
        print("=== drain under a worker kill (slot 1 dies at startup) ===")
        faults.reload_env("service.slot:1@sigkill")
        try:
            dispatcher = Dispatcher(
                store,
                cache,
                DispatcherConfig(
                    workers=2,
                    lease_seconds=30.0,
                    policy=RetryPolicy(backoff_initial_seconds=0.05),
                ),
            )
            stats = dispatcher.run()
        finally:
            faults.reload_env("")
        print(
            f"  workers: {stats.worker_starts} started, "
            f"{stats.worker_deaths} died"
        )
        solves = 0
        for view in store.views():
            detail = view.last["detail"]
            print(
                f"  {view.job_id} {view.state} source={detail['source']}"
            )
            solves += detail["source"] == "solve"
        assert all(v.state == DONE for v in store.views())
        print(f"  distinct digests: 3, solves performed: {solves}")

        print()
        print("=== results match computing directly ===")
        for spec in specs[:2]:
            entry = cache.get(canonical_digest(spec))
            direct = solve_spec(spec)
            assert entry["result"] == direct
            print(
                f"  {canonical_digest(spec)[:12]}...: "
                f"pi[0]={direct['stationary'][0]:.6f}  (identical)"
            )

        print()
        print("=== resubmission is a pure cache hit ===")
        for spec in specs:
            outcome = store.submit(spec, cache=cache)
            print(
                f"  {outcome.job_id} {outcome.state} "
                f"cache_hit={outcome.cache_hit}"
            )

        print()
        print("=== dead-lettering: a job whose every lease expires ===")
        doomed_root = os.path.join(root, "doomed")
        doomed = JobStore(os.path.join(doomed_root, "store"))
        job = doomed.submit(demo_spec("redundant:2,1")).job_id
        # Simulate three crashed workers by claiming with instant
        # leases and recovering after each.
        policy = RetryPolicy(backoff_initial_seconds=0.0)
        real_clock = doomed.clock
        skew = [0.0]
        doomed.clock = lambda: real_clock() + skew[0]
        for _ in range(3):
            doomed.claim(job, "doomed-worker", lease_seconds=0.0)
            skew[0] += 1.0
            doomed.recover(policy=policy, max_attempts=3)
        view = doomed.view(job)
        diagnosis = view.last["detail"]["diagnosis"]
        print(f"  {job} is {view.state} after {diagnosis['attempts']} attempts")
        print(f"  exit reasons: {diagnosis['exit_reasons']}")
        print(f"  suggestion: {diagnosis['suggestion']}")


if __name__ == "__main__":
    main()
