"""Formalism independence: lump an MD built straight from a Kronecker
descriptor (no SAN front end involved).

Model: a farm of N identical M/M/1/K queues fed by a 2-state Markov-
modulated arrival stream.  The farm is ONE Kronecker component (one MD
level) encoded per-queue, so the queue-permutation symmetry is *local to
that level* — the setting in which the paper's compositional algorithm
can find it.  (Spreading the queues over separate levels would hide the
symmetry from any level-local method; that locality trade-off is exactly
Section 4's point.)

The lumping algorithm only ever sees the MD — the paper's claim that it
is "applicable on any MD, and thus, on any formalism that uses MDs".

Run:  python examples/kronecker_queueing.py
"""

import itertools

import numpy as np

from repro.kronecker import KroneckerDescriptor, descriptor_to_md
from repro.lumping import MDModel, compositional_lump
from repro.markov import CTMC, steady_state
from repro.matrixdiagram import flatten, md_stats


def build_descriptor(num_queues: int, capacity: int):
    """Modulator (component 1) x queue farm (component 2)."""
    q = capacity + 1
    farm_states = list(itertools.product(range(q), repeat=num_queues))
    index = {state: i for i, state in enumerate(farm_states)}

    def farm_matrix(delta: int, rate: float = 1.0):
        entries = {}
        for state in farm_states:
            for queue in range(num_queues):
                level = state[queue] + delta
                if 0 <= level <= capacity:
                    target = list(state)
                    target[queue] = level
                    key = (index[state], index[tuple(target)])
                    entries[key] = entries.get(key, 0.0) + rate
        return entries

    arrivals = farm_matrix(+1)
    departures = farm_matrix(-1)

    arrival_fast, arrival_slow, modulate = 1.8, 0.3, 0.2
    descriptor = KroneckerDescriptor((2, len(farm_states)))
    descriptor.add_term(arrival_slow, [{(0, 0): 1.0}, arrivals])
    descriptor.add_term(arrival_fast, [{(1, 1): 1.0}, arrivals])
    descriptor.add_term(1.0, [None, departures])
    descriptor.add_term(modulate, [{(0, 1): 1.0, (1, 0): 1.0}, None])
    return descriptor, farm_states


def main(num_queues: int = 3, capacity: int = 2) -> None:
    descriptor, farm_states = build_descriptor(num_queues, capacity)
    md = descriptor_to_md(
        descriptor,
        level_state_labels=[["slow", "fast"], farm_states],
    )
    print("descriptor terms:", descriptor.num_terms)
    print("MD:", md_stats(md).summary())

    result = compositional_lump(MDModel(md), "ordinary")
    print(f"level sizes: {md.level_sizes} -> {result.lumped.md.level_sizes}")
    print(f"potential space: {md.potential_size()} -> "
          f"{result.lumped.md.potential_size()}")
    # The farm lumps from q^N per-queue states to the multiset classes.
    from math import comb

    multisets = comb(num_queues + capacity, capacity)
    assert result.lumped.md.level_size(2) == multisets
    print(f"farm level lumped to the {multisets} occupancy multisets.")

    # Mean total queue length, computed on both chains.
    model = MDModel(md)
    pi = steady_state(CTMC(flatten(md))).distribution
    # state_tuple gives (modulator, farm_index); decode farm occupancy:
    total_len = np.array(
        [
            float(sum(farm_states[model.state_tuple(i)[1]]))
            for i in range(md.potential_size())
        ]
    )
    exact = float(pi @ total_len)

    pi_hat = steady_state(CTMC(flatten(result.lumped.md))).distribution
    assert np.abs(result.project_distribution(pi) - pi_hat).max() < 1e-9
    print(f"mean total queue length (unlumped): {exact:.6f}")
    print("aggregated stationary distribution matches the lumped solve.")


def locality_demo(num_queues: int = 3, capacity: int = 1) -> None:
    """The same queues encoded one-per-level: the symmetry is invisible to
    the per-level conditions until the levels are regrouped."""
    from repro.matrixdiagram import md_from_kronecker_terms, regroup_levels

    q = capacity + 1
    up = {(i, i + 1): 1.0 for i in range(q - 1)}
    down = {(i + 1, i): 1.5 for i in range(q - 1)}
    identity = {(s, s): 1.0 for s in range(q)}
    terms = []
    for queue in range(num_queues):
        for matrix in (up, down):
            factors = [identity] * num_queues
            factors[queue] = matrix
            terms.append((1.0, list(factors)))
    md = md_from_kronecker_terms(terms, (q,) * num_queues)

    split = compositional_lump(MDModel(md), "ordinary")
    print(f"\nper-level encoding: {md.level_sizes} -> "
          f"{split.lumped.md.level_sizes}  (no symmetry visible)")
    merged = regroup_levels(md, [list(range(1, num_queues + 1))])
    joint = compositional_lump(MDModel(merged), "ordinary")
    print(f"regrouped encoding: {merged.level_sizes} -> "
          f"{joint.lumped.md.level_sizes}  (multiset quotient found)")


if __name__ == "__main__":
    main()
    locality_demo()
