"""Certified analysis: every answer ships with machine-checkable evidence.

Three runs of the tandem pipeline with ``lump_and_solve(certify=True)``:

1. a clean run — the certificate (independent extended-precision
   residual recheck, probability-mass defect, nonnegativity,
   lumped-vs-unlumped measure consistency, spectral lumpability
   spot-check) passes and is attached to the solution;
2. a run where the ``certify.corrupt`` fault flips one stationary entry
   *once* — the certificate catches it and the escalation ladder
   (alternate solver methods, tightened tolerance, float128 refinement)
   recovers a certified answer, with every step in the RunReport;
3. a run where corruption hits every candidate — the ladder runs dry
   and the pipeline raises ``CertificationError`` carrying the failing
   certificate as the diagnosis, rather than returning a wrong answer.

Run:  python examples/certified_pipeline.py
"""

import numpy as np

from repro.analysis import lump_and_solve
from repro.errors import CertificationError
from repro.models import TandemParams, build_tandem, tandem_md_model
from repro.models.tandem import projected_event_model
from repro.robust.faults import inject_faults
from repro.robust.report import RunReport
from repro.statespace import reachable_bfs


def build_model():
    params = TandemParams(jobs=1, cube_dim=2, msmq_servers=2, msmq_queues=2)
    compiled = build_tandem(params)
    reach = reachable_bfs(compiled.event_model)
    event_model = projected_event_model(compiled, reach)
    reach = reachable_bfs(event_model)
    return tandem_md_model(event_model, params, reachable=reach)


def main() -> None:
    model = build_model()

    # -- 1. clean certified solve --------------------------------------
    solution = lump_and_solve(model, certify=True)
    cert = solution.certificate
    assert cert is not None and cert.passed
    print("clean run:")
    print(cert.render())
    print()

    # -- 2. one-shot corruption: the ladder recovers -------------------
    report = RunReport()
    with inject_faults("certify.corrupt:1"):
        recovered = lump_and_solve(
            model, robust=True, report=report, certify=True
        )
    assert recovered.certificate is not None
    assert recovered.certificate.passed
    np.testing.assert_allclose(
        recovered.stationary, solution.stationary, atol=1e-8
    )
    escalations = report.fallbacks_for("certificate-escalation")
    assert escalations, "expected the ladder to climb at least one rung"
    print("one-shot corruption: certificate caught it, ladder recovered")
    for fallback in escalations:
        print(f"  escalated {fallback.requested} -> {fallback.used}")
    print(f"  recovered method: {recovered.solve_method}")
    print()

    # -- 3. persistent corruption: fail loudly, never silently ---------
    try:
        with inject_faults("certify.corrupt"):
            lump_and_solve(model, robust=True, certify=True)
    except CertificationError as exc:
        assert exc.certificate is not None
        assert not exc.certificate.passed
        print("persistent corruption: ladder exhausted, raised with")
        print(
            "  failing checks: "
            + ", ".join(c.name for c in exc.certificate.failures)
        )
    else:
        raise AssertionError("a corrupt result left the pipeline as done")


if __name__ == "__main__":
    main()
