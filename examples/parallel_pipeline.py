"""Fault-tolerant parallelism: the worker pool, end to end.

Runs the tandem pipeline with the supervised worker pool three ways:

1. a serial robust run, then the same run with ``parallel=2`` — the
   stationary distribution is *bitwise identical*, because per-node
   refinement and sharded reachability results merge in sorted task
   order regardless of worker scheduling;
2. a worker kill storm — the fault injector SIGKILLs worker slot 2 at
   startup and poisons task 3 with a crash; the pool restarts workers,
   retries/reassigns the tasks, and the answer still does not move a
   bit (the run report shows the whole recovery trail);
3. a poisoned-task quarantine — a task that dies on every retry is
   executed serially in the parent instead, and the pool records the
   quarantine.

Run:  python examples/parallel_pipeline.py
"""

import numpy as np

from repro.bench.table1 import run_table1_row_robust
from repro.models import TandemParams
from repro.robust import faults
from repro.robust.pool import ParallelConfig
from repro.robust.retry import RetryPolicy


def _fast_parallel(**overrides) -> ParallelConfig:
    defaults = dict(
        workers=2,
        poll_interval_seconds=0.01,
        heartbeat_min_interval_seconds=0.01,
        policy=RetryPolicy(max_restarts=3, backoff_initial_seconds=0.0),
    )
    defaults.update(overrides)
    return ParallelConfig(**defaults)


def main() -> None:
    params = TandemParams(jobs=1, cube_dim=2, msmq_servers=2, msmq_queues=2)

    print("=== serial vs parallel: bitwise equality ===")
    serial = run_table1_row_robust(1, params)
    parallel = run_table1_row_robust(1, params, parallel=_fast_parallel())
    match = bool(np.array_equal(parallel.stationary, serial.stationary))
    print(
        f"states={parallel.row.unlumped_overall} "
        f"lumped={parallel.row.lumped_overall}"
    )
    print(f"parallel == serial (bitwise): {match}")
    assert match
    started = parallel.report.pool_events_of_kind("worker-started")
    print(f"pool workers started across all sections: {len(started)}")

    print()
    print("=== worker kill storm: slot 2 killed, task 3 poisoned ===")
    faults.reload_env("worker:2@sigkill,task:3@sigkill")
    try:
        stormed = run_table1_row_robust(
            1, params, parallel=_fast_parallel()
        )
    finally:
        faults.reload_env("")
    for event in stormed.report.pool_events:
        subject = event.task or (
            f"worker {event.worker}" if event.worker is not None else ""
        )
        detail = f" [{event.detail}]" if event.detail else ""
        print(f"  {event.kind:<20} {subject}{detail}")
    match = bool(np.array_equal(stormed.stationary, serial.stationary))
    print(f"stormed == serial (bitwise): {match}")
    assert match

    print()
    print("=== poisoned task: quarantined to the serial path ===")
    # An open-ended rule (``3+``) kills task 3 on the first try and on
    # every retry; with retries exhausted the pool runs it serially in
    # the parent, where no fault effect applies, and the run completes.
    faults.reload_env("task:3+@sigkill")
    try:
        quarantined = run_table1_row_robust(
            1, params, parallel=_fast_parallel(max_task_retries=1)
        )
    finally:
        faults.reload_env("")
    events = quarantined.report.pool_events_of_kind("task-quarantined")
    for event in events:
        print(f"  quarantined: {event.task} ({event.detail})")
    match = bool(np.array_equal(quarantined.stationary, serial.stationary))
    print(f"quarantined run == serial (bitwise): {match}")
    assert match and events


if __name__ == "__main__":
    main()
