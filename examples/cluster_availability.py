"""Cluster availability study: replicated farms + shared repair crew.

Sweeps the front-end quorum requirement and the number of front ends,
computing steady-state availability from the LUMPED chain each time.  The
replica symmetry keeps the lumped chains tiny even as the unlumped state
space grows exponentially in the machine count.

Run:  python examples/cluster_availability.py
"""

from repro.analysis import lump_and_solve
from repro.models.cluster import availability_reward, build_cluster
from repro.san import compile_join
from repro.san.rewards import build_md_model
from repro.statespace import reachable_bfs
from repro.util import Table


def main() -> None:
    table = Table(
        ["front ends", "unlumped", "lumped", "quorum", "availability"],
        title="Cluster availability via compositional lumping",
    )
    for front_ends in (3, 4, 5, 6):
        compiled = compile_join(
            build_cluster(front_ends=front_ends, backends=2)
        )
        reach = reachable_bfs(compiled.event_model)
        for quorum in (front_ends - 1, front_ends):
            reward = availability_reward(front_ends, 2, quorum=quorum)
            model = build_md_model(compiled, reachable=reach, rewards=reward)
            solution = lump_and_solve(model)
            table.add_row(
                [
                    front_ends,
                    reach.num_states,
                    solution.num_states,
                    quorum,
                    f"{solution.expected_reward():.6f}",
                ]
            )
    print(table.render())


if __name__ == "__main__":
    main()
