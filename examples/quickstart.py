"""Quickstart: lump a small CTMC, state-level and compositionally.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.lumping import MDModel, compositional_lump, lump_mrp
from repro.markov import CTMC, MarkovRewardProcess, steady_state
from repro.matrixdiagram import flatten, md_from_kronecker_terms


def state_level_demo() -> None:
    """Optimal state-level lumping of a 6-state chain with a symmetry."""
    print("== state-level lumping ==")
    # Two interchangeable servers: states (up, up), (up, down)/(down, up),
    # (down, down), each pair with identical aggregate behaviour.
    fail, repair = 1.0, 4.0
    chain = CTMC.from_transitions(
        4,
        [
            (0, 1, fail), (0, 2, fail),      # (up,up) -> one down
            (1, 3, fail), (2, 3, fail),      # one down -> both down
            (1, 0, repair), (2, 0, repair),  # repair
            (3, 1, repair), (3, 2, repair),
        ],
        state_labels=["uu", "ud", "du", "dd"],
    )
    result = lump_mrp(MarkovRewardProcess(chain), "ordinary")
    print(f"states: {chain.num_states} -> {result.num_classes}")
    for block in result.partition.blocks():
        print("  class:", [chain.label(s) for s in block])

    pi = steady_state(chain).distribution
    pi_hat = steady_state(result.lumped.ctmc).distribution
    print("aggregated stationary distributions agree:",
          bool(np.abs(result.project_distribution(pi) - pi_hat).max() < 1e-12))


def compositional_demo() -> None:
    """Compositional lumping of a 3-level matrix diagram."""
    print("\n== compositional MD lumping ==")
    rng = np.random.default_rng(1)
    env = rng.random((2, 2))              # level 1: an environment
    sym = np.array([[0.0, 1.0, 1.0],      # level 2: three symmetric units
                    [1.0, 0.0, 1.0],
                    [1.0, 1.0, 0.0]])
    work = rng.random((4, 4))             # level 3: a workload automaton
    md = md_from_kronecker_terms([(1.0, [env, sym, work])], (2, 3, 4))
    print("MD:", md)

    result = compositional_lump(MDModel(md), "ordinary")
    for reduction in result.reductions:
        print(f"  level {reduction.level}: {reduction.original_size} -> "
              f"{reduction.lumped_size} substates")
    print("potential space:", md.potential_size(), "->",
          result.lumped.md.potential_size())

    # The lumped MD represents the lumped matrix exactly.
    pi = steady_state(CTMC(flatten(md))).distribution
    pi_hat = steady_state(CTMC(flatten(result.lumped.md))).distribution
    print("aggregated stationary distributions agree:",
          bool(np.abs(result.project_distribution(pi) - pi_hat).max() < 1e-9))


if __name__ == "__main__":
    state_level_demo()
    compositional_demo()
