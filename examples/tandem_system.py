"""The paper's tandem multi-processor system, end to end (Section 5).

Builds the MSMQ + hypercube tandem, generates its state space, constructs
the matrix diagram, lumps it compositionally, and prints a Table-1-style
report plus a performance measure computed on the lumped chain.

Run:  python examples/tandem_system.py [J] [cube_dim]
      (defaults: J=1, cube_dim=2 — cube_dim=3 is the paper's 8-server
      configuration and takes ~15 s at J=1)
"""

import sys

import numpy as np

from repro.lumping import compositional_lump
from repro.markov import steady_state
from repro.matrixdiagram import md_stats
from repro.models import TandemParams, build_tandem, tandem_md_model
from repro.models.tandem import projected_event_model
from repro.statespace import reachable_bfs
from repro.util import Stopwatch, format_bytes, format_seconds


def main(jobs: int = 1, cube_dim: int = 2) -> None:
    msmq = (2, 2) if cube_dim == 2 else (3, 4)
    params = TandemParams(
        jobs=jobs, cube_dim=cube_dim,
        msmq_servers=msmq[0], msmq_queues=msmq[1],
    )
    print(f"tandem system: J={jobs}, {params.num_hyper_servers()}-server "
          f"hypercube, {msmq[0]}x{msmq[1]} MSMQ")

    watch = Stopwatch()
    with watch.phase("generation"):
        compiled = build_tandem(params)
        reach = reachable_bfs(compiled.event_model)
        event_model = projected_event_model(compiled, reach)
        reach = reachable_bfs(event_model)
        model = tandem_md_model(event_model, params, reachable=reach,
                                reward="hyper_jobs")
    stats = md_stats(model.md)
    print(f"reachable states: {reach.num_states}, per level "
          f"{reach.level_sizes()}, MD nodes {stats.nodes_per_level}, "
          f"MD memory {format_bytes(stats.memory_bytes)}")
    print(f"generation time: {format_seconds(watch.elapsed('generation'))}")

    with watch.phase("lumping"):
        result = compositional_lump(model, "ordinary")
    lumped_stats = md_stats(result.lumped.md)
    print(f"lump time: {format_seconds(watch.elapsed('lumping'))}")
    for reduction in result.reductions:
        print(f"  level {reduction.level}: {reduction.original_size} -> "
              f"{reduction.lumped_size} ({reduction.factor:.1f}x)")
    lumped_states = len(result.lumped.reachable)
    print(f"overall: {reach.num_states} -> {lumped_states} states "
          f"({reach.num_states / lumped_states:.1f}x), lumped MD memory "
          f"{format_bytes(lumped_stats.memory_bytes)}")

    # Solve the LUMPED chain only; the measure is exact for the original.
    lumped_mrp = result.lumped.flat_mrp()
    pi_hat = steady_state(lumped_mrp.ctmc).distribution
    mean_hyper_jobs = float(pi_hat @ lumped_mrp.rewards)
    print(f"mean jobs queued in the hypercube (from the lumped chain): "
          f"{mean_hyper_jobs:.6f}")

    if reach.num_states <= 50_000:
        mrp = model.flat_mrp()
        pi = steady_state(mrp.ctmc).distribution
        exact = float(pi @ mrp.rewards)
        print(f"same measure from the unlumped chain:        {exact:.6f}")
        assert abs(exact - mean_hyper_jobs) < 1e-8


if __name__ == "__main__":
    arg_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    arg_dim = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    main(arg_jobs, arg_dim)
