"""SARIF 2.1.0 output: reprolint findings as a code-scanning payload.

One run, one tool, one result per *new* finding (baselined findings are
emitted with ``baselineState: "unchanged"`` so code scanning shows them
as pre-existing; suppressed findings carry a ``suppressions`` entry).
The shape follows the OASIS SARIF 2.1.0 schema subset GitHub code
scanning ingests: ``version``, ``runs[].tool.driver`` with a rule
catalog, ``runs[].results[]`` with ``ruleId``/``message``/``locations``
physical locations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from reprolint import __version__
from reprolint.core import Finding, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _result(
    finding: Finding,
    rule_index: Dict[str, int],
    baseline_state: Optional[str] = None,
    suppressed: bool = False,
) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "ruleIndex": rule_index.get(finding.rule, -1),
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": max(1, finding.col),
                    },
                }
            }
        ],
    }
    if baseline_state is not None:
        result["baselineState"] = baseline_state
    if suppressed:
        result["suppressions"] = [{"kind": "inSource"}]
    return result


def sarif_payload(
    rules: Sequence[Rule],
    new_findings: Sequence[Finding],
    baselined: Sequence[Finding] = (),
    suppressed: Sequence[Finding] = (),
) -> Dict[str, object]:
    """The complete SARIF document as a JSON-compatible dict."""
    catalog = sorted({r.code: r for r in rules}.values(), key=lambda r: r.code)
    rule_index = {rule.code: i for i, rule in enumerate(catalog)}
    results: List[Dict[str, object]] = []
    for finding in new_findings:
        results.append(_result(finding, rule_index))
    for finding in baselined:
        results.append(
            _result(finding, rule_index, baseline_state="unchanged")
        )
    for finding in suppressed:
        results.append(_result(finding, rule_index, suppressed=True))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "version": __version__,
                        "informationUri": (
                            "https://example.invalid/reprolint"
                        ),
                        "rules": [
                            {
                                "id": rule.code,
                                "name": rule.name,
                                "shortDescription": {"text": rule.name},
                                "fullDescription": {
                                    "text": rule.rationale
                                },
                                "defaultConfiguration": {"level": "error"},
                            }
                            for rule in catalog
                        ],
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
