"""Command-line driver: ``python -m reprolint [options] paths...``.

Exit codes
----------
0  no new findings (everything clean, suppressed, or baselined)
1  new (non-baselined, non-suppressed) findings
2  usage or environment error (bad baseline, unknown rule, no files)

The default baseline is ``tools/reprolint/baseline.json`` relative to
the current working directory when it exists; pass ``--baseline FILE``
to override or ``--no-baseline`` to ignore it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from reprolint.baseline import Baseline, BaselineError
from reprolint.core import FileReport, Finding, check_file, iter_python_files
from reprolint.rules import RULE_CLASSES, default_rules

DEFAULT_BASELINE = Path("tools/reprolint/baseline.json")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based invariant linter: determinism, budget coverage, "
            "sparse efficiency, tolerant comparison, observable failures, "
            "seeded randomness"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline, report every finding as new",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        default=".",
        help="repository root used to relativize paths (default: cwd)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _line_content(report_root: Path, finding: Finding) -> str:
    try:
        lines = (report_root / finding.path).read_text(
            encoding="utf-8"
        ).splitlines()
        return lines[finding.line - 1].strip()
    except (OSError, IndexError, UnicodeDecodeError):
        return ""


def run(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in RULE_CLASSES:
            print(f"{cls.code} {cls.name}")
            print(f"    {cls.rationale}")
        return 0
    if not args.paths:
        parser.error("paths are required (unless --list-rules)")

    select = (
        [c.strip() for c in args.select.split(",") if c.strip()]
        if args.select
        else None
    )
    try:
        rules = default_rules(select)
    except ValueError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    root = Path(args.root)
    baseline: Optional[Baseline] = None
    if not args.no_baseline:
        baseline_path = (
            Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
        )
        if args.baseline is not None and not baseline_path.exists():
            print(
                f"reprolint: baseline {baseline_path} does not exist",
                file=sys.stderr,
            )
            return 2
        if baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except BaselineError as exc:
                print(f"reprolint: {exc}", file=sys.stderr)
                return 2

    files = list(iter_python_files(args.paths))
    if not files:
        print("reprolint: no python files found", file=sys.stderr)
        return 2

    reports: List[FileReport] = []
    new_findings: List[Finding] = []
    baselined: List[Finding] = []
    errors: List[str] = []
    for file_path in files:
        report = check_file(rules, str(file_path), root=root)
        reports.append(report)
        if report.error is not None:
            errors.append(f"{report.path}: {report.error}")
            continue
        for finding in report.findings:
            if baseline is not None and baseline.matches(
                finding, _line_content(root, finding)
            ):
                baselined.append(finding)
            else:
                new_findings.append(finding)

    stale = baseline.stale_entries() if baseline is not None else []
    suppressed_all = [f for r in reports for f in r.suppressed]
    suppressed_total = len(suppressed_all)

    if args.format == "json":
        payload: Dict[str, object] = {
            "files_checked": len(files),
            "new_findings": [f.to_dict() for f in new_findings],
            "baselined": [f.to_dict() for f in baselined],
            "suppressed": [f.to_dict() for f in suppressed_all],
            "stale_baseline_entries": [e.to_dict() for e in stale],
            "errors": errors,
            "exit_code": 1 if (new_findings or errors) else 0,
        }
        print(json.dumps(payload, indent=2))
    else:
        for finding in new_findings:
            print(f"{finding.location()}: {finding.rule} {finding.message}")
        for message in errors:
            print(f"error: {message}")
        for entry in stale:
            print(
                f"stale baseline entry (violation fixed — delete it): "
                f"{entry.rule} {entry.path}: {entry.content!r}"
            )
        summary = (
            f"reprolint: {len(files)} files, "
            f"{len(new_findings)} new finding(s), "
            f"{len(baselined)} baselined, {suppressed_total} suppressed"
        )
        if errors:
            summary += f", {len(errors)} file error(s)"
        print(summary)

    return 1 if (new_findings or errors) else 0


def main() -> None:
    sys.exit(run())
