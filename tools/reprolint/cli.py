"""Command-line driver: ``python -m reprolint [options] paths...``.

Exit codes
----------
0  no new findings (everything clean, suppressed, or baselined)
1  new (non-baselined, non-suppressed) findings
2  usage or environment error (bad baseline, unknown rule, no files,
   unresolvable --changed-only ref)

The default baseline is ``tools/reprolint/baseline.json`` relative to
the current working directory when it exists; pass ``--baseline FILE``
to override or ``--no-baseline`` to ignore it.

``--changed-only REF`` is the diff-aware incremental mode: every file
is still parsed (the cross-file rules need the whole call graph), but
findings are only reported for files ``git diff --name-only REF``
lists — what a PR check wants.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from reprolint.baseline import Baseline, BaselineError
from reprolint.core import FileReport, Finding, iter_python_files
from reprolint.engine import lint_files
from reprolint.rules import RULE_CLASSES, default_rules
from reprolint.sarif import sarif_payload

DEFAULT_BASELINE = Path("tools/reprolint/baseline.json")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Project-wide invariant linter: determinism, budget "
            "coverage, sparse efficiency, tolerant comparison, "
            "observable failures, seeded randomness, lock/lease "
            "discipline, job-lifecycle protocol conformance"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline, report every finding as new",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        default=".",
        help="repository root used to relativize paths (default: cwd)",
    )
    parser.add_argument(
        "--changed-only",
        metavar="GIT_REF",
        default=None,
        help=(
            "report findings only for files changed since GIT_REF "
            "(the full tree is still analyzed for cross-file rules)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _line_content(report_root: Path, finding: Finding) -> str:
    try:
        lines = (report_root / finding.path).read_text(
            encoding="utf-8"
        ).splitlines()
        return lines[finding.line - 1].strip()
    except (OSError, IndexError, UnicodeDecodeError):
        return ""


def _changed_paths(root: Path, ref: str) -> Optional[Set[str]]:
    """Repo-relative posix paths changed since ``ref`` (committed or
    not), or ``None`` when git cannot answer."""
    try:
        diff = subprocess.run(
            # reprolint: disable=RL007 -- one-shot `git diff` metadata
            # query, not a compute workload; rlimits/heartbeat/restart
            # semantics do not apply
            ["git", "diff", "--name-only", ref, "--"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return {
        line.strip()
        for line in diff.stdout.splitlines()
        if line.strip().endswith(".py")
    }


def run(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in RULE_CLASSES:
            print(f"{cls.code} {cls.name}")
            print(f"    {cls.rationale}")
        return 0
    if not args.paths:
        parser.error("paths are required (unless --list-rules)")

    select = (
        [c.strip() for c in args.select.split(",")]
        if args.select is not None
        else None
    )
    try:
        rules = default_rules(select)
    except ValueError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    root = Path(args.root)
    baseline: Optional[Baseline] = None
    if not args.no_baseline:
        baseline_path = (
            Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
        )
        if args.baseline is not None and not baseline_path.exists():
            print(
                f"reprolint: baseline {baseline_path} does not exist",
                file=sys.stderr,
            )
            return 2
        if baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except BaselineError as exc:
                print(f"reprolint: {exc}", file=sys.stderr)
                return 2

    files = list(iter_python_files(args.paths))
    if not files:
        print("reprolint: no python files found", file=sys.stderr)
        return 2

    report_paths: Optional[Set[str]] = None
    if args.changed_only:
        report_paths = _changed_paths(root, args.changed_only)
        if report_paths is None:
            print(
                f"reprolint: git diff against {args.changed_only!r} "
                "failed; is this a git checkout?",
                file=sys.stderr,
            )
            return 2

    reports = lint_files(
        rules,
        [str(f) for f in files],
        root=root,
        report_paths=report_paths,
    )

    new_findings: List[Finding] = []
    baselined: List[Finding] = []
    errors: List[str] = []
    for report in reports:
        if report.error is not None:
            errors.append(f"{report.path}: {report.error}")
            continue
        for finding in report.findings:
            if baseline is not None and baseline.matches(
                finding, _line_content(root, finding)
            ):
                baselined.append(finding)
            else:
                new_findings.append(finding)

    stale = baseline.stale_entries() if baseline is not None else []
    suppressed_all = [f for r in reports for f in r.suppressed]
    unjustified = [
        (r.path, line, codes, comment)
        for r in reports
        for (line, codes, comment) in r.unjustified_suppressions
    ]
    stale_suppressions = [
        (r.path, line, codes, comment)
        for r in reports
        for (line, codes, comment) in r.stale_suppressions
    ]
    exit_code = 1 if (new_findings or errors) else 0

    if args.format == "sarif":
        print(
            json.dumps(
                sarif_payload(
                    rules, new_findings, baselined, suppressed_all
                ),
                indent=2,
            )
        )
    elif args.format == "json":
        payload: Dict[str, object] = {
            "files_checked": len(files),
            "new_findings": [f.to_dict() for f in new_findings],
            "baselined": [f.to_dict() for f in baselined],
            "suppressed": [f.to_dict() for f in suppressed_all],
            "stale_baseline_entries": [e.to_dict() for e in stale],
            "unjustified_suppressions": [
                {"path": p, "line": line, "codes": list(codes)}
                for (p, line, codes, _comment) in unjustified
            ],
            "stale_suppressions": [
                {"path": p, "line": line, "codes": list(codes)}
                for (p, line, codes, _comment) in stale_suppressions
            ],
            "errors": errors,
            "exit_code": exit_code,
        }
        print(json.dumps(payload, indent=2))
    else:
        for finding in new_findings:
            print(f"{finding.location()}: {finding.rule} {finding.message}")
        for message in errors:
            print(f"error: {message}")
        for entry in stale:
            print(
                f"stale baseline entry (violation fixed — delete it): "
                f"{entry.rule} {entry.path}: {entry.content!r}"
            )
        for path, line, codes, _comment in stale_suppressions:
            print(
                f"stale suppression (nothing fired — delete it): "
                f"{path}:{line}: {','.join(codes)}"
            )
        for path, line, codes, _comment in unjustified:
            print(
                f"unjustified suppression (add ` -- why`): "
                f"{path}:{line}: {','.join(codes)}"
            )
        summary = (
            f"reprolint: {len(files)} files, "
            f"{len(new_findings)} new finding(s), "
            f"{len(baselined)} baselined, {len(suppressed_all)} suppressed"
        )
        if report_paths is not None:
            summary += f" (reported on {len(reports)} changed file(s))"
        if errors:
            summary += f", {len(errors)} file error(s)"
        print(summary)

    return exit_code


def main() -> None:
    sys.exit(run())
