"""The lint engine: one parse, two passes, one report per file.

``lint_files`` is what the CLI, the benchmark harness, and the tests
drive.  It parses every file exactly once, builds the cross-file
:class:`~reprolint.graph.Project` from those same parses, runs the
per-file rules (single AST walk per file), then the project rules
(single call-graph build shared by all of them), and finally audits the
suppression comments — a directive that silenced nothing is stale, one
without a ``-- why`` is unjustified, and both are reported.

``report_paths`` implements the diff-aware incremental mode: the whole
tree is still parsed (project rules need the full graph — a lock order
inversion is *between* files, one of which may be unchanged), but
findings are only reported for the changed files.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from reprolint.core import (
    FileContext,
    FileReport,
    ProjectRule,
    Rule,
    parse_context,
    route_finding,
    run_file_rules,
)
from reprolint.graph import Project


def split_rules(
    rules: Sequence[Rule],
) -> Tuple[List[Rule], List[ProjectRule]]:
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    return file_rules, project_rules


def lint_contexts(
    rules: Sequence[Rule],
    parsed: Sequence[Tuple[FileReport, Optional[FileContext]]],
    *,
    report_paths: Optional[Set[str]] = None,
) -> List[FileReport]:
    """Run both passes over already-parsed files (the in-memory entry
    point tests use via :func:`lint_sources`)."""
    file_rules, project_rules = split_rules(rules)
    contexts = [ctx for _report, ctx in parsed if ctx is not None]
    project = Project(contexts)
    by_path: Dict[str, Tuple[FileReport, FileContext]] = {}
    for report, ctx in parsed:
        if ctx is None:
            continue
        ctx.project = project
        by_path[ctx.path] = (report, ctx)
    for report, ctx in parsed:
        if ctx is not None:
            run_file_rules(file_rules, ctx, report)
    for rule in project_rules:
        for finding in rule.check_project(project):
            entry = by_path.get(finding.path)
            if entry is None:
                continue  # finding outside the linted set
            report, ctx = entry
            route_finding(finding, ctx, report)
    active_codes = {r.code for r in rules}
    for report, ctx in parsed:
        if ctx is not None:
            report.finish_suppression_audit(ctx, active_codes)
    reports = [report for report, _ctx in parsed]
    if report_paths is not None:
        reports = [r for r in reports if r.path in report_paths]
    return reports


def lint_files(
    rules: Sequence[Rule],
    files: Sequence[str],
    *,
    root: Optional[Path] = None,
    report_paths: Optional[Set[str]] = None,
) -> List[FileReport]:
    """Lint ``files`` (paths on disk) with per-file + project rules."""
    parsed = [parse_context(str(path), root=root) for path in files]
    return lint_contexts(rules, parsed, report_paths=report_paths)


def lint_sources(
    rules: Sequence[Rule],
    sources: Sequence[Tuple[str, str]],
    *,
    report_paths: Optional[Set[str]] = None,
) -> List[FileReport]:
    """Lint in-memory ``(path, text)`` pairs — fixture trees in tests."""
    parsed = [
        parse_context(path, text) for path, text in sources
    ]
    return lint_contexts(rules, parsed, report_paths=report_paths)
