"""Baseline handling: a checked-in ledger of grandfathered findings.

A baseline entry pins a finding by ``(rule, path, content)`` where
``content`` is the stripped source line the finding points at — stable
under unrelated edits that shift line numbers, invalidated the moment the
flagged code itself changes.  Every entry must carry a ``justification``
explaining why the violation is acceptable; entries without one are
rejected at load time so the ledger cannot silently accumulate
unexplained debt.

The JSON layout::

    {
      "version": 1,
      "entries": [
        {
          "rule": "RL003",
          "path": "src/repro/kronecker/ops.py",
          "content": "matrix = descriptor.factor_matrix(...).toarray()",
          "justification": "per-component factor matrices are small ..."
        }
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from reprolint.core import Finding

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file is malformed."""


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    rule: str
    path: str
    content: str
    justification: str

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.content)

    def to_dict(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "content": self.content,
            "justification": self.justification,
        }


class Baseline:
    """An in-memory baseline with matching and staleness tracking."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = list(entries)
        self._index: Dict[Tuple[str, str, str], BaselineEntry] = {
            entry.key(): entry for entry in self.entries
        }
        self._matched: set = set()

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(data, dict) or "entries" not in data:
            raise BaselineError(
                f"baseline {path} must be an object with an 'entries' list"
            )
        version = data.get("version", BASELINE_VERSION)
        if version != BASELINE_VERSION:
            raise BaselineError(
                f"baseline {path} has version {version!r}, "
                f"expected {BASELINE_VERSION}"
            )
        entries = []
        for i, raw in enumerate(data["entries"]):
            missing = [
                k
                for k in ("rule", "path", "content", "justification")
                if not str(raw.get(k, "")).strip()
            ]
            if missing:
                raise BaselineError(
                    f"baseline {path} entry {i} is missing {missing} "
                    "(every entry needs a justification)"
                )
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    content=str(raw["content"]).strip(),
                    justification=str(raw["justification"]),
                )
            )
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                entry.to_dict()
                for entry in sorted(self.entries, key=BaselineEntry.key)
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def matches(self, finding: Finding, line_content: str) -> bool:
        """True (and marks the entry used) if ``finding`` is baselined."""
        key = (finding.rule, finding.path, line_content.strip())
        entry = self._index.get(key)
        if entry is None:
            return False
        self._matched.add(key)
        return True

    def stale_entries(self) -> List[BaselineEntry]:
        """Entries that matched no finding in the run just performed —
        fixed violations whose ledger lines should be deleted."""
        return [
            entry
            for entry in self.entries
            if entry.key() not in self._matched
        ]


def entry_for(finding: Finding, line_content: str, justification: str) -> BaselineEntry:
    """Build the entry that would baseline ``finding``."""
    return BaselineEntry(
        rule=finding.rule,
        path=finding.path,
        content=line_content.strip(),
        justification=justification,
    )
