"""Flow-sensitive helpers for the project-wide rules.

Two kinds of reasoning live here, both deliberately lighter than a real
dataflow framework and both *sound for what they report*:

* **Structural path facts** about one function's AST — is this call a
  ``with``-item, is it protected by a ``try/finally`` whose finalizer
  releases, does a release happen on the straight-line path before
  anything can raise or return.  RL010 composes these into
  "released on all paths".

* **A branch-merging abstract walker** (:func:`walk_with_env`) that
  threads a per-name environment through a function body, forking it at
  ``if``/``try`` and merging with *drop-on-disagreement*: a name whose
  state differs between branches becomes unknown and is never reported
  on.  Loops are walked once with the pre-loop environment (states are
  first-iteration-true, so nothing reported can be a phantom).  RL011
  runs its job-state machine on top of this.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from reprolint.core import FileContext, dotted_name

# ---------------------------------------------------------------------------
# structural navigation
# ---------------------------------------------------------------------------


def ancestors(ctx: FileContext, node: ast.AST) -> Iterator[ast.AST]:
    """Parents of ``node``, innermost first."""
    current = ctx.parents.get(node)
    while current is not None:
        yield current
        current = ctx.parents.get(current)


def statement_of(ctx: FileContext, node: ast.AST) -> Optional[ast.stmt]:
    """The nearest enclosing statement (the node itself if a stmt)."""
    if isinstance(node, ast.stmt):
        return node
    for parent in ancestors(ctx, node):
        if isinstance(parent, ast.stmt):
            return parent
    return None


def enclosing_function_node(
    ctx: FileContext, node: ast.AST
) -> Optional[ast.AST]:
    for parent in ancestors(ctx, node):
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return parent
    return None


def call_name(call: ast.Call) -> Optional[str]:
    """Best-effort name of the called thing: ``fcntl.flock`` for dotted
    calls, the attribute for method calls, the bare name otherwise."""
    func = call.func
    dotted = dotted_name(func)
    if dotted is not None:
        return dotted
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def last_name_segment(name: Optional[str]) -> Optional[str]:
    return None if name is None else name.rpartition(".")[2]


def is_with_item(ctx: FileContext, call: ast.AST) -> bool:
    """Whether ``call`` is (inside) a ``with``-item context expression —
    the cleanup obligation is the context manager's."""
    current: ast.AST = call
    for parent in ancestors(ctx, call):
        if isinstance(parent, ast.withitem) and parent.context_expr is current:
            return True
        if isinstance(parent, ast.stmt):
            break
        current = parent
    # ``with a.b(call()):`` — the call nested inside the item expr.
    for parent in ancestors(ctx, call):
        if isinstance(parent, ast.withitem):
            return True
        if isinstance(parent, ast.stmt):
            break
    return False


def protected_by_finally(
    ctx: FileContext,
    node: ast.AST,
    release_pred: Callable[[ast.AST], bool],
) -> bool:
    """Whether ``node`` sits in the try-body (or else-body) of a ``Try``
    whose ``finally`` block contains a node matching ``release_pred``."""
    current: ast.AST = node
    for parent in ancestors(ctx, node):
        if isinstance(parent, ast.Try) and parent.finalbody:
            in_protected_region = any(
                _contains(stmt, current) for stmt in parent.body
            ) or any(_contains(stmt, current) for stmt in parent.orelse)
            if in_protected_region:
                for stmt in parent.finalbody:
                    if any(release_pred(n) for n in ast.walk(stmt)):
                        return True
        current = parent
    return False


def _contains(root: ast.AST, target: ast.AST) -> bool:
    return any(node is target for node in ast.walk(root))


def containing_block(
    ctx: FileContext, stmt: ast.stmt
) -> Tuple[Optional[List[ast.stmt]], int]:
    """The statement list holding ``stmt`` and its index in it."""
    parent = ctx.parents.get(stmt)
    if parent is None:
        return None, -1
    for field_name in ("body", "orelse", "finalbody"):
        block = getattr(parent, field_name, None)
        if isinstance(block, list):
            for index, candidate in enumerate(block):
                if candidate is stmt:
                    return block, index
    return None, -1


def linearly_released(
    block: Sequence[ast.stmt],
    index: int,
    release_pred: Callable[[ast.AST], bool],
) -> bool:
    """Whether the straight-line suffix of ``block`` after position
    ``index`` releases before anything can divert control: any call
    (may raise), any compound statement, or an early exit between the
    acquire and the release defeats the pattern — that is exactly the
    window a crash leaks the lock through."""
    for stmt in block[index + 1 :]:
        if any(release_pred(node) for node in ast.walk(stmt)):
            return True
        if isinstance(
            stmt,
            (ast.Return, ast.Raise, ast.Break, ast.Continue, ast.If,
             ast.For, ast.While, ast.Try, ast.With),
        ):
            return False
        if any(isinstance(node, ast.Call) for node in ast.walk(stmt)):
            return False
    return False


def returned_names(func_node: ast.AST) -> set:
    """Names the function may return (directly or in a tuple) — used
    for the ownership-transfer pattern: returning a locked handle hands
    the release obligation to the caller."""
    names: set = set()
    for node in ast.walk(func_node):
        if isinstance(node, ast.Return) and node.value is not None:
            values = (
                node.value.elts
                if isinstance(node.value, ast.Tuple)
                else [node.value]
            )
            for value in values:
                if isinstance(value, ast.Name):
                    names.add(value.id)
    return names


# ---------------------------------------------------------------------------
# branch-merging abstract walker
# ---------------------------------------------------------------------------

#: Environment mapping variable name -> abstract state (rule-defined).
Env = Dict[str, object]

#: ``transfer(node, env)`` is invoked with every *simple* statement and
#: every compound-statement header expression (if/while tests, for
#: iterables, with items), in control-flow order.  It mutates ``env``
#: and performs the rule's checks.
Transfer = Callable[[ast.AST, Env], None]


def _merge(*envs: Env) -> Env:
    """Keep only the bindings every environment agrees on."""
    if not envs:
        return {}
    merged = dict(envs[0])
    for env in envs[1:]:
        for key in list(merged):
            if env.get(key) != merged[key]:
                del merged[key]
    return merged


def walk_with_env(
    body: Sequence[ast.stmt], env: Env, transfer: Transfer
) -> bool:
    """Walk ``body`` threading ``env`` through it.  Returns whether
    control can fall off the end (False: every path returns/raises/
    breaks).  Nested function/class definitions are not entered."""
    for stmt in body:
        if isinstance(stmt, ast.If):
            transfer(stmt.test, env)
            then_env, else_env = dict(env), dict(env)
            then_falls = walk_with_env(stmt.body, then_env, transfer)
            else_falls = walk_with_env(stmt.orelse, else_env, transfer)
            if then_falls and else_falls:
                merged = _merge(then_env, else_env)
            elif then_falls:
                merged = then_env
            elif else_falls:
                merged = else_env
            else:
                return False
            env.clear()
            env.update(merged)
        elif isinstance(stmt, ast.While):
            transfer(stmt.test, env)
            loop_env = dict(env)
            walk_with_env(stmt.body, loop_env, transfer)
            merged = _merge(env, loop_env)
            env.clear()
            env.update(merged)
            if stmt.orelse and not walk_with_env(stmt.orelse, env, transfer):
                return False
        elif isinstance(stmt, ast.For):
            transfer(stmt.iter, env)
            if isinstance(stmt.target, ast.Name):
                env.pop(stmt.target.id, None)
            loop_env = dict(env)
            walk_with_env(stmt.body, loop_env, transfer)
            merged = _merge(env, loop_env)
            env.clear()
            env.update(merged)
            if stmt.orelse and not walk_with_env(stmt.orelse, env, transfer):
                return False
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                transfer(item.context_expr, env)
                if isinstance(item.optional_vars, ast.Name):
                    env.pop(item.optional_vars.id, None)
            if not walk_with_env(stmt.body, env, transfer):
                return False
        elif isinstance(stmt, ast.Try):
            pre_body = dict(env)
            body_falls = walk_with_env(stmt.body, env, transfer)
            # A handler can run with the body partially executed:
            # give it only the bindings pre- and post-body agree on.
            handler_base = _merge(pre_body, env)
            handler_envs: List[Env] = []
            handler_falls = False
            for handler in stmt.handlers:
                handler_env = dict(handler_base)
                if walk_with_env(handler.body, handler_env, transfer):
                    handler_falls = True
                    handler_envs.append(handler_env)
            if body_falls and stmt.orelse:
                body_falls = walk_with_env(stmt.orelse, env, transfer)
            exits = ([env] if body_falls else []) + handler_envs
            if not exits and not stmt.finalbody:
                return False
            merged = _merge(*exits) if exits else dict(handler_base)
            env.clear()
            env.update(merged)
            if stmt.finalbody:
                if not walk_with_env(stmt.finalbody, env, transfer):
                    return False
                if not exits:
                    return False
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            transfer(stmt, env)
            return False
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            return False
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        else:
            transfer(stmt, env)
    return True
