"""reprolint — project-wide invariant linter for this reproduction.

A domain-specific static-analysis engine that enforces the conventions
the repo's headline guarantees rest on: deterministic iteration in the
refinement/reachability hot paths (bitwise kill/resume equivalence),
budget/checkpoint hooks reachable from every unbounded loop
(cooperative stops, checked interprocedurally through an approximate
call graph), no dense materialization of the matrices whose compactness
is the paper's point, tolerance-based rate comparison, observable
failure handling, seeded randomness / single-source timing, lock/lease
discipline in the multi-process layer (RL010), and job-lifecycle
protocol conformance against the transition table in
``service/spec.py`` (RL011).

Run it as ``python -m reprolint [--format text|json|sarif]
[--baseline FILE] [--changed-only REF] paths...``; see
``docs/static-analysis.md`` for the rule catalog, the call-graph
approximation's limits, and the suppression/baseline workflow.
"""

from __future__ import annotations

from reprolint.baseline import Baseline, BaselineEntry, BaselineError
from reprolint.core import (
    FileContext,
    FileReport,
    Finding,
    ProjectRule,
    Rule,
    check_file,
    iter_python_files,
    parse_suppression_directives,
    parse_suppressions,
)
from reprolint.rules import RULE_CLASSES, default_rules

__version__ = "2.0.0"

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "FileContext",
    "FileReport",
    "Finding",
    "ProjectRule",
    "Rule",
    "RULE_CLASSES",
    "check_file",
    "default_rules",
    "iter_python_files",
    "parse_suppression_directives",
    "parse_suppressions",
    "__version__",
]
