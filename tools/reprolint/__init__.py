"""reprolint — AST-based invariant linter for this reproduction.

A domain-specific static-analysis pass that enforces the conventions the
repo's headline guarantees rest on: deterministic iteration in the
refinement/reachability hot paths (bitwise kill/resume equivalence),
budget/checkpoint hooks in every unbounded loop (cooperative stops), no
dense materialization of the matrices whose compactness is the paper's
point, tolerance-based rate comparison, observable failure handling,
and seeded randomness / single-source timing.

Run it as ``python -m reprolint [--format text|json] [--baseline FILE]
paths...``; see ``docs/static-analysis.md`` for the rule catalog and the
suppression/baseline workflow.
"""

from __future__ import annotations

from reprolint.baseline import Baseline, BaselineEntry, BaselineError
from reprolint.core import (
    FileContext,
    FileReport,
    Finding,
    Rule,
    check_file,
    iter_python_files,
    parse_suppressions,
)
from reprolint.rules import RULE_CLASSES, default_rules

__version__ = "1.0.0"

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "FileContext",
    "FileReport",
    "Finding",
    "Rule",
    "RULE_CLASSES",
    "check_file",
    "default_rules",
    "iter_python_files",
    "parse_suppressions",
    "__version__",
]
