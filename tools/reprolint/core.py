"""Core machinery of ``reprolint``: findings, rules, one-parse dispatch.

The framework parses each file exactly once, walks the tree exactly once,
and dispatches every node to the rules that registered interest in its
type (:attr:`Rule.node_types`).  Rules are therefore cheap to add: a new
invariant costs one class with a ``check`` method, not another pass over
the tree.

Findings can be silenced two ways:

* **per-line suppression** — a ``# reprolint: disable=RL001`` comment on
  the flagged line (comma-separated codes, or ``all``).  Suppressions are
  parsed from the token stream, so they work on any line, including lines
  whose comment the AST cannot see.
* **baseline** — a checked-in ledger of grandfathered findings (see
  :mod:`reprolint.baseline`); matching findings are reported as baselined
  and do not fail the run.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


#: Sentinel code meaning "suppress every rule on this line".
SUPPRESS_ALL = "all"

_DISABLE_MARKER = "reprolint:"


@dataclass
class SuppressionDirective:
    """One ``# reprolint: disable=...`` comment.

    ``line`` is the comment's own line; the directive also covers the
    start line of the statement it sits inside, so a disable comment on
    a continuation line of a multi-line call still silences the finding
    (findings anchor to statement start lines).  ``justified`` records
    whether a ``-- why`` trailer was present; ``used_codes`` accumulates
    the codes that actually silenced a finding this run, so stale
    suppressions (codes that no longer fire) can be reported.
    """

    line: int
    codes: Tuple[str, ...]
    justified: bool
    comment: str
    used_codes: Set[str] = field(default_factory=set)

    def stale_codes(self) -> Tuple[str, ...]:
        return tuple(c for c in self.codes if c not in self.used_codes)


def parse_suppression_directives(text: str) -> List[SuppressionDirective]:
    """Every suppression comment in ``text``, in line order.

    Recognizes ``# reprolint: disable=RL001[,RL002...][ -- why]`` and
    ``# reprolint: disable=all``.  Malformed markers are ignored rather
    than raised: a typo'd suppression should surface as the finding it
    failed to silence, not as a crash.
    """
    directives: List[SuppressionDirective] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            comment = token.string
            marker_at = comment.find(_DISABLE_MARKER)
            if marker_at < 0:
                continue
            directive = comment[marker_at + len(_DISABLE_MARKER):].strip()
            if not directive.startswith("disable="):
                continue
            rest = directive[len("disable="):]
            codes_part, sep, why = rest.partition(" -- ")
            codes_text = codes_part.split()[0] if codes_part.split() else ""
            parsed = tuple(
                c.strip() for c in codes_text.split(",") if c.strip()
            )
            if parsed:
                directives.append(
                    SuppressionDirective(
                        line=token.start[0],
                        codes=parsed,
                        justified=bool(sep) and bool(why.strip()),
                        comment=comment.strip(),
                    )
                )
    except tokenize.TokenError:
        pass  # partial token stream: keep whatever was parsed
    return directives


def parse_suppressions(text: str) -> Dict[int, Set[str]]:
    """Map line number -> set of rule codes disabled on that line
    (compatibility view over :func:`parse_suppression_directives`)."""
    suppressions: Dict[int, Set[str]] = {}
    for directive in parse_suppression_directives(text):
        suppressions.setdefault(directive.line, set()).update(directive.codes)
    return suppressions


class FileContext:
    """Per-file state shared by every rule during one dispatch pass."""

    def __init__(self, path: str, text: str, tree: ast.Module) -> None:
        self.path = path  # repo-relative posix path
        self.text = text
        self.tree = tree
        self.lines = text.splitlines()
        self.directives = parse_suppression_directives(text)
        self.suppressions: Dict[int, Set[str]] = {}
        for directive in self.directives:
            self.suppressions.setdefault(directive.line, set()).update(
                directive.codes
            )
        #: Set by the engine when a cross-file Project is available.
        self.project: Optional[object] = None
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        self._scope_sets: Dict[ast.AST, Set[str]] = {}
        self._directive_lines: Optional[
            Dict[int, List[SuppressionDirective]]
        ] = None

    # -- structure helpers -------------------------------------------------

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child -> parent map over the whole tree (built lazily, once)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def enclosing_scope(self, node: ast.AST) -> ast.AST:
        """Nearest enclosing function/lambda/module of ``node``."""
        current = self.parents.get(node)
        while current is not None and not isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            current = self.parents.get(current)
        return current if current is not None else self.tree

    def set_valued_names(self, scope: ast.AST) -> Set[str]:
        """Names assigned a set-producing expression anywhere in ``scope``.

        Conservative local dataflow: a name counts as set-valued if *any*
        assignment (plain, annotated, or augmented ``|=``) binds it to a
        set literal, set comprehension, or ``set(...)``/``frozenset(...)``
        call.  Nested function bodies are not descended into — they are
        their own scopes.
        """
        cached = self._scope_sets.get(scope)
        if cached is not None:
            return cached
        names: Set[str] = set()
        body = scope.body if hasattr(scope, "body") else []
        if isinstance(scope, ast.Lambda):
            body = []
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # separate scope
            if isinstance(node, ast.Assign) and is_set_expression(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if is_set_expression(node.value) and isinstance(
                    node.target, ast.Name
                ):
                    names.add(node.target.id)
            stack.extend(ast.iter_child_nodes(node))
        self._scope_sets[scope] = names
        return names

    # -- suppression -------------------------------------------------------

    def _statement_start(self, line: int) -> Optional[int]:
        """Start line of the innermost statement whose span covers
        ``line`` — for compound statements, only the header (up to the
        first body statement) counts as the span."""
        best: Optional[Tuple[int, int]] = None  # (span length, start)
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt):
                continue
            start = node.lineno
            end = getattr(node, "end_lineno", start) or start
            body = getattr(node, "body", None)
            if isinstance(body, list) and body and isinstance(
                body[0], ast.stmt
            ):
                end = max(start, body[0].lineno - 1)
            if start <= line <= end:
                span = (end - start, start)
                if best is None or span < best:
                    best = span
        return best[1] if best is not None else None

    @property
    def directive_lines(self) -> Dict[int, List[SuppressionDirective]]:
        """Effective line -> directives covering it.  A directive covers
        its own line plus the start line of the (possibly multi-line)
        statement it annotates, so continuation-line comments work."""
        if self._directive_lines is None:
            mapping: Dict[int, List[SuppressionDirective]] = {}
            for directive in self.directives:
                lines = {directive.line}
                start = self._statement_start(directive.line)
                if start is not None:
                    lines.add(start)
                for line in lines:
                    mapping.setdefault(line, []).append(directive)
            self._directive_lines = mapping
        return self._directive_lines

    def is_suppressed(self, rule: str, line: int) -> bool:
        hit = False
        for directive in self.directive_lines.get(line, ()):
            if rule in directive.codes:
                directive.used_codes.add(rule)
                hit = True
            elif SUPPRESS_ALL in directive.codes:
                directive.used_codes.add(SUPPRESS_ALL)
                hit = True
        return hit


def is_set_expression(node: ast.AST) -> bool:
    """True for expressions that statically produce a ``set``/``frozenset``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """Base class for reprolint rules.

    Subclasses set :attr:`code`, :attr:`name`, :attr:`rationale`, the AST
    :attr:`node_types` they want to inspect, and implement :meth:`check`.
    ``applies_to`` scopes a rule to part of the tree (paths are
    repo-relative posix strings); the default is every non-test file.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    #: AST node classes this rule wants to see.
    node_types: Tuple[Type[ast.AST], ...] = ()

    def applies_to(self, path: str) -> bool:
        """Whether ``path`` (repo-relative posix) is in this rule's scope."""
        return not is_test_path(path)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one dispatched node."""
        raise NotImplementedError
        yield  # pragma: no cover

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.code,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class ProjectRule(Rule):
    """Base class for cross-file rules.

    A project rule sees the whole :class:`reprolint.graph.Project` at
    once instead of single dispatched nodes; the engine runs it after
    the per-file pass and routes each finding back through the owning
    file's suppression and baseline machinery, so ``disable=`` comments
    and the ledger work identically for both kinds of rule.
    """

    node_types: Tuple[Type[ast.AST], ...] = ()

    def check_project(self, project: object) -> Iterator[Finding]:
        """Yield findings over the whole project."""
        raise NotImplementedError
        yield  # pragma: no cover

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        return iter(())  # never dispatched per-node


def is_test_path(path: str) -> bool:
    """True for files under a ``tests``/``test`` directory or ``conftest``."""
    parts = Path(path).parts
    return (
        "tests" in parts
        or "test" in parts
        or Path(path).name.startswith("conftest")
    )


@dataclass
class FileReport:
    """Outcome of linting one file."""

    path: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    error: Optional[str] = None  # syntax/decoding error, if any
    #: ``(line, codes, comment)`` for disable comments with no ``-- why``.
    unjustified_suppressions: List[Tuple[int, Tuple[str, ...], str]] = field(
        default_factory=list
    )
    #: ``(line, codes, comment)`` for disable codes that silenced nothing.
    stale_suppressions: List[Tuple[int, Tuple[str, ...], str]] = field(
        default_factory=list
    )

    def finish_suppression_audit(
        self,
        ctx: "FileContext",
        active_codes: Optional[Set[str]] = None,
    ) -> None:
        """Record unjustified and stale directives once every rule (per
        -file and project) has run against ``ctx``.  ``active_codes``
        limits staleness reporting to rules that actually ran — a
        ``--select`` subset must not declare other rules' suppressions
        stale."""
        for directive in ctx.directives:
            if not directive.justified:
                self.unjustified_suppressions.append(
                    (directive.line, directive.codes, directive.comment)
                )
            stale = directive.stale_codes()
            if active_codes is not None:
                stale = tuple(
                    c
                    for c in stale
                    if c in active_codes or c == SUPPRESS_ALL
                )
            if stale:
                self.stale_suppressions.append(
                    (directive.line, stale, directive.comment)
                )


def parse_context(
    path: str,
    text: Optional[str] = None,
    *,
    root: Optional[Path] = None,
) -> Tuple[FileReport, Optional[FileContext]]:
    """Read + parse one file into a :class:`FileContext`, or a report
    carrying the IO/syntax error.  This is the only place a file is read
    or parsed — per-file rules, project rules, and the call graph all
    share the one context."""
    display = normalize_path(path, root)
    report = FileReport(path=display)
    if text is None:
        try:
            text = Path(path).read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            report.error = f"unreadable: {exc}"
            return report, None
    try:
        tree = ast.parse(text, filename=display)
    except SyntaxError as exc:
        report.error = f"syntax error: {exc.msg} (line {exc.lineno})"
        return report, None
    return report, FileContext(display, text, tree)


def route_finding(
    finding: Finding, ctx: FileContext, report: FileReport
) -> None:
    """File a finding under ``report``, honoring line suppressions."""
    if ctx.is_suppressed(finding.rule, finding.line):
        report.suppressed.append(finding)
    else:
        report.findings.append(finding)


def run_file_rules(
    rules: Sequence[Rule], ctx: FileContext, report: FileReport
) -> None:
    """Run every applicable per-file rule over ``ctx`` in a single AST
    pass, routing findings into ``report``."""
    active = [rule for rule in rules if rule.applies_to(ctx.path)]
    if not active:
        return
    dispatch: Dict[Type[ast.AST], List[Rule]] = {}
    for rule in active:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    for node in ast.walk(ctx.tree):
        for rule in dispatch.get(type(node), ()):
            for finding in rule.check(node, ctx):
                route_finding(finding, ctx, report)


def check_file(
    rules: Sequence[Rule],
    path: str,
    text: Optional[str] = None,
    *,
    root: Optional[Path] = None,
) -> FileReport:
    """Lint one file with every applicable per-file rule.

    ``path`` is used for rule scoping and reporting (normalized to a
    repo-relative posix path against ``root`` when given); ``text`` lets
    callers lint in-memory sources, e.g. the test fixtures.  Project
    rules need the cross-file view and are run by the engine
    (:mod:`reprolint.engine`), not here.
    """
    report, ctx = parse_context(path, text, root=root)
    if ctx is not None:
        run_file_rules(rules, ctx, report)
    return report


def normalize_path(path: str, root: Optional[Path] = None) -> str:
    """Repo-relative posix form of ``path`` (absolute paths made relative
    to ``root`` when possible)."""
    p = Path(path)
    if root is not None:
        try:
            p = p.resolve().relative_to(root.resolve())
        except ValueError:
            pass
    return p.as_posix()


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files beneath them,
    deterministically sorted."""
    seen: Set[Path] = set()
    collected: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                collected.append(candidate)
    return iter(sorted(collected))
