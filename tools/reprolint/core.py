"""Core machinery of ``reprolint``: findings, rules, one-parse dispatch.

The framework parses each file exactly once, walks the tree exactly once,
and dispatches every node to the rules that registered interest in its
type (:attr:`Rule.node_types`).  Rules are therefore cheap to add: a new
invariant costs one class with a ``check`` method, not another pass over
the tree.

Findings can be silenced two ways:

* **per-line suppression** — a ``# reprolint: disable=RL001`` comment on
  the flagged line (comma-separated codes, or ``all``).  Suppressions are
  parsed from the token stream, so they work on any line, including lines
  whose comment the AST cannot see.
* **baseline** — a checked-in ledger of grandfathered findings (see
  :mod:`reprolint.baseline`); matching findings are reported as baselined
  and do not fail the run.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


#: Sentinel code meaning "suppress every rule on this line".
SUPPRESS_ALL = "all"

_DISABLE_MARKER = "reprolint:"


def parse_suppressions(text: str) -> Dict[int, Set[str]]:
    """Map line number -> set of rule codes disabled on that line.

    Recognizes ``# reprolint: disable=RL001[,RL002...]`` and
    ``# reprolint: disable=all``.  Malformed markers are ignored rather
    than raised: a typo'd suppression should surface as the finding it
    failed to silence, not as a crash.
    """
    suppressions: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            comment = token.string
            marker_at = comment.find(_DISABLE_MARKER)
            if marker_at < 0:
                continue
            directive = comment[marker_at + len(_DISABLE_MARKER):].strip()
            if not directive.startswith("disable="):
                continue
            codes = directive[len("disable="):]
            # Allow a trailing justification after whitespace or " -- ".
            codes = codes.split()[0] if codes.split() else ""
            parsed = {c.strip() for c in codes.split(",") if c.strip()}
            if parsed:
                line_set = suppressions.setdefault(token.start[0], set())
                line_set.update(parsed)
    except tokenize.TokenError:
        pass  # partial token stream: keep whatever was parsed
    return suppressions


class FileContext:
    """Per-file state shared by every rule during one dispatch pass."""

    def __init__(self, path: str, text: str, tree: ast.Module) -> None:
        self.path = path  # repo-relative posix path
        self.text = text
        self.tree = tree
        self.lines = text.splitlines()
        self.suppressions = parse_suppressions(text)
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        self._scope_sets: Dict[ast.AST, Set[str]] = {}

    # -- structure helpers -------------------------------------------------

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child -> parent map over the whole tree (built lazily, once)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def enclosing_scope(self, node: ast.AST) -> ast.AST:
        """Nearest enclosing function/lambda/module of ``node``."""
        current = self.parents.get(node)
        while current is not None and not isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            current = self.parents.get(current)
        return current if current is not None else self.tree

    def set_valued_names(self, scope: ast.AST) -> Set[str]:
        """Names assigned a set-producing expression anywhere in ``scope``.

        Conservative local dataflow: a name counts as set-valued if *any*
        assignment (plain, annotated, or augmented ``|=``) binds it to a
        set literal, set comprehension, or ``set(...)``/``frozenset(...)``
        call.  Nested function bodies are not descended into — they are
        their own scopes.
        """
        cached = self._scope_sets.get(scope)
        if cached is not None:
            return cached
        names: Set[str] = set()
        body = scope.body if hasattr(scope, "body") else []
        if isinstance(scope, ast.Lambda):
            body = []
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # separate scope
            if isinstance(node, ast.Assign) and is_set_expression(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if is_set_expression(node.value) and isinstance(
                    node.target, ast.Name
                ):
                    names.add(node.target.id)
            stack.extend(ast.iter_child_nodes(node))
        self._scope_sets[scope] = names
        return names

    # -- suppression -------------------------------------------------------

    def is_suppressed(self, rule: str, line: int) -> bool:
        codes = self.suppressions.get(line)
        if not codes:
            return False
        return rule in codes or SUPPRESS_ALL in codes


def is_set_expression(node: ast.AST) -> bool:
    """True for expressions that statically produce a ``set``/``frozenset``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """Base class for reprolint rules.

    Subclasses set :attr:`code`, :attr:`name`, :attr:`rationale`, the AST
    :attr:`node_types` they want to inspect, and implement :meth:`check`.
    ``applies_to`` scopes a rule to part of the tree (paths are
    repo-relative posix strings); the default is every non-test file.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    #: AST node classes this rule wants to see.
    node_types: Tuple[Type[ast.AST], ...] = ()

    def applies_to(self, path: str) -> bool:
        """Whether ``path`` (repo-relative posix) is in this rule's scope."""
        return not is_test_path(path)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one dispatched node."""
        raise NotImplementedError
        yield  # pragma: no cover

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.code,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def is_test_path(path: str) -> bool:
    """True for files under a ``tests``/``test`` directory or ``conftest``."""
    parts = Path(path).parts
    return (
        "tests" in parts
        or "test" in parts
        or Path(path).name.startswith("conftest")
    )


@dataclass
class FileReport:
    """Outcome of linting one file."""

    path: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    error: Optional[str] = None  # syntax/decoding error, if any


def check_file(
    rules: Sequence[Rule],
    path: str,
    text: Optional[str] = None,
    *,
    root: Optional[Path] = None,
) -> FileReport:
    """Lint one file with every applicable rule in a single AST pass.

    ``path`` is used for rule scoping and reporting (normalized to a
    repo-relative posix path against ``root`` when given); ``text`` lets
    callers lint in-memory sources, e.g. the test fixtures.
    """
    display = normalize_path(path, root)
    report = FileReport(path=display)
    if text is None:
        try:
            text = Path(path).read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            report.error = f"unreadable: {exc}"
            return report
    try:
        tree = ast.parse(text, filename=display)
    except SyntaxError as exc:
        report.error = f"syntax error: {exc.msg} (line {exc.lineno})"
        return report
    active = [rule for rule in rules if rule.applies_to(display)]
    if not active:
        return report
    dispatch: Dict[Type[ast.AST], List[Rule]] = {}
    for rule in active:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    ctx = FileContext(display, text, tree)
    for node in ast.walk(tree):
        for rule in dispatch.get(type(node), ()):
            for finding in rule.check(node, ctx):
                if ctx.is_suppressed(finding.rule, finding.line):
                    report.suppressed.append(finding)
                else:
                    report.findings.append(finding)
    return report


def normalize_path(path: str, root: Optional[Path] = None) -> str:
    """Repo-relative posix form of ``path`` (absolute paths made relative
    to ``root`` when possible)."""
    p = Path(path)
    if root is not None:
        try:
            p = p.resolve().relative_to(root.resolve())
        except ValueError:
            pass
    return p.as_posix()


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files beneath them,
    deterministically sorted."""
    seen: Set[Path] = set()
    collected: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                collected.append(candidate)
    return iter(sorted(collected))
