"""RL008: ad-hoc parallelism outside the fault-tolerant pool.

The worker-pool layer (:mod:`repro.robust.pool`) is the one place
allowed to build parallelism: it pairs every worker with a heartbeat, a
crash-loop breaker, deterministic retry/reassignment, and — critically —
a merge that consumes results in sorted task-id order so parallel runs
stay bitwise-identical to serial ones.  A stray
``multiprocessing``/``concurrent.futures`` usage elsewhere recreates the
exact failure modes this repo spent several milestones killing: orphan
workers no watchdog sees, lost tasks on crash, and results folded in
completion order.

Two constructs are flagged:

* **parallelism imports** — ``import multiprocessing`` /
  ``import concurrent.futures`` (or ``from`` either) anywhere outside
  the process-layer allowlist (:data:`_PROCESS_LAYER_PATHS`);
* **completion-order iteration** — ``.imap_unordered(...)`` and
  ``as_completed(...)`` calls, *everywhere* (including the allowlisted
  modules): iterating results in completion order is nondeterminism by
  construction, and every parallel merge in this repo must consume
  results in task order instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple, Type, Union

from reprolint.core import FileContext, Finding, Rule, dotted_name

#: Modules allowed to import process/parallelism machinery: the
#: fault-tolerant worker pool and the supervised-execution layer.
_PROCESS_LAYER_PATHS = frozenset(
    {
        "src/repro/robust/pool.py",
        "src/repro/robust/supervisor.py",
    }
)

#: Top-level modules whose import means "I am about to parallelize".
_PARALLEL_MODULES = frozenset({"multiprocessing", "concurrent"})

_ImportNode = Union[ast.Import, ast.ImportFrom]


def _imported_roots(node: _ImportNode) -> Iterator[str]:
    if isinstance(node, ast.ImportFrom):
        if node.module is not None and node.level == 0:
            yield node.module.split(".")[0]
        return
    for alias in node.names:
        yield alias.name.split(".")[0]


class AdHocParallelism(Rule):
    code = "RL008"
    name = "adhoc-parallelism"
    rationale = (
        "parallel execution outside repro.robust.pool has no heartbeat, "
        "no crash recovery, and no deterministic task-order merge; "
        "imap_unordered()/as_completed() iterate in completion order, "
        "which breaks the parallel == serial bitwise guarantee."
    )
    node_types: Tuple[Type[ast.AST], ...] = (
        ast.Import,
        ast.ImportFrom,
        ast.Call,
    )

    def applies_to(self, path: str) -> bool:
        return super().applies_to(path) and path.startswith(
            ("src/", "tools/")
        )

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            if ctx.path in _PROCESS_LAYER_PATHS:
                return
            for root in _imported_roots(node):
                if root in _PARALLEL_MODULES:
                    yield self.finding(
                        ctx,
                        node,
                        f"import of {root!r} outside the process layer "
                        "(repro.robust.pool / repro.robust.supervisor) — "
                        "ad-hoc workers have no heartbeat, retry, or "
                        "deterministic merge; fan work out through "
                        "WorkerPool instead",
                    )
                    return
            return
        name = dotted_name(node.func)
        attr = (
            node.func.attr
            if isinstance(node.func, ast.Attribute)
            else None
        )
        if attr == "imap_unordered" or (
            name is not None
            and (
                name == "as_completed"
                or name.endswith(".as_completed")
            )
        ):
            label = attr or "as_completed"
            yield self.finding(
                ctx,
                node,
                f"{label}() yields results in completion order — "
                "scheduling-dependent and unreproducible; consume "
                "results in sorted task-id order (as WorkerPool.run "
                "does) instead",
            )
