"""RL011: job-lifecycle protocol conformance as lint.

The service's crash-safety argument is protocol-shaped: every record a
store writer appends must be a legal transition of the
``queued -> leased -> running -> done|failed|dead`` machine, whose one
authoritative definition is the ``TRANSITIONS`` table in
``service/spec.py``.  The store enforces it at runtime — but a runtime
guard only fires on the interleaving that reaches it, which for
recovery paths can be the one interleaving the test suite never hits.
This rule re-derives the same conformance statically:

1. **Extract the table** from the project's ``service/spec.py`` by AST
   (state-constant assignments + the ``TRANSITIONS`` dict literal) — the
   rule has no import-time coupling to the code under analysis, so it
   checks the tree as written, not as currently importable.
2. **Derive the store API's transition targets** from the store class
   (the one defining ``_append``): each public method maps to the states
   it appends (``claim -> leased``, ``complete -> done``, ...).
3. **Track view states** through every function in the service modules
   with a branch-merging abstract walk: ``v = store.claim(...)`` makes
   ``v`` *leased*; passing ``v`` to an API method whose target is not
   reachable from *leased* in the table is a finding.  States that
   differ across branches become unknown and are never reported on —
   every finding is a first-iteration-true protocol violation.
4. **Fence the API**: ``_append`` called outside the store module is
   itself a finding; mutations must go through the store API the table
   was derived from.

Silent on projects without a ``service/spec.py`` transition table.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from reprolint import flow
from reprolint.core import FileContext, Finding, ProjectRule

#: Abstract state for "constructed, nothing appended yet" (the table's
#: ``None`` key).
PRE = "__pre__"


def _const_str(node: ast.AST) -> Optional[str]:
    return node.value if isinstance(node, ast.Constant) and isinstance(
        node.value, str
    ) else None


class _Protocol:
    """The statically-extracted protocol: states and transition table."""

    def __init__(self, spec_path: str) -> None:
        self.spec_path = spec_path
        self.constants: Dict[str, str] = {}
        self.table: Dict[str, FrozenSet[str]] = {}

    def allowed(self, state: str) -> FrozenSet[str]:
        return self.table.get(state, frozenset())


def _extract_protocol(ctx: FileContext) -> Optional[_Protocol]:
    proto = _Protocol(ctx.path)
    table_node: Optional[ast.Dict] = None
    for node in ctx.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if len(targets) != 1 or not isinstance(targets[0], ast.Name):
            continue
        name = targets[0].id
        text = _const_str(value)
        if text is not None and name.isupper():
            proto.constants[name] = text
        if name in ("TRANSITIONS", "_TRANSITIONS") and isinstance(
            value, ast.Dict
        ):
            table_node = value
    if table_node is None:
        return None

    def resolve(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Constant):
            if node.value is None:
                return PRE
            if isinstance(node.value, str):
                return node.value
            return None
        if isinstance(node, ast.Name):
            return proto.constants.get(node.id, None)
        if isinstance(node, ast.Attribute):
            return proto.constants.get(node.attr, None)
        return None

    for key_node, value_node in zip(table_node.keys, table_node.values):
        if key_node is None:
            continue  # ``**spread`` — not statically resolvable
        key = resolve(key_node)
        if key is None:
            continue
        elements: List[ast.AST] = []
        for sub in ast.walk(value_node):
            if isinstance(sub, (ast.Set, ast.Tuple, ast.List)):
                elements.extend(sub.elts)
        targets = {resolve(el) for el in elements}
        proto.table[key] = frozenset(t for t in targets if t is not None)
    return proto if proto.table else None


def _find_spec_module(project):
    for info in project.modules.values():
        if info.path.endswith("spec.py"):
            proto = _extract_protocol(info.ctx)
            if proto is not None:
                return proto
    return None


class _StoreApi:
    """Transition targets of each store-class method, derived from its
    ``self._append(view, STATE, ...)`` calls."""

    def __init__(self) -> None:
        self.module_path: Optional[str] = None
        self.class_name: Optional[str] = None
        #: method name -> set of target states it can append
        self.targets: Dict[str, Set[str]] = {}
        #: methods whose first parameter is the view being transitioned
        self.view_methods: Set[str] = set()


def _derive_store_api(project, proto: _Protocol) -> Optional[_StoreApi]:
    for info in sorted(project.modules.values(), key=lambda m: m.path):
        for class_name, methods in info.classes.items():
            if "_append" not in methods:
                continue
            api = _StoreApi()
            api.module_path = info.path
            api.class_name = class_name
            for method_name, fn in methods.items():
                args = fn.node.args.args
                if len(args) >= 2 and args[1].arg == "view":
                    api.view_methods.add(method_name)
                for node in ast.walk(fn.node):
                    if not isinstance(node, ast.Call):
                        continue
                    name = flow.call_name(node)
                    if flow.last_name_segment(name) != "_append":
                        continue
                    if len(node.args) < 2:
                        continue
                    state = _resolve_state(node.args[1], proto)
                    if state is not None:
                        api.targets.setdefault(method_name, set()).add(
                            state
                        )
            return api
    return None


def _resolve_state(node: ast.AST, proto: _Protocol) -> Optional[str]:
    text = _const_str(node)
    if text is not None:
        return text
    if isinstance(node, ast.Name):
        return proto.constants.get(node.id)
    if isinstance(node, ast.Attribute):
        return proto.constants.get(node.attr)
    return None


class LifecycleConformance(ProjectRule):
    code = "RL011"
    name = "job-lifecycle-conformance"
    rationale = (
        "every store mutation in store.py/worker.py/dispatcher.py must "
        "perform a transition the TRANSITIONS table in service/spec.py "
        "allows, and must go through the store API — an illegal "
        "transition is a protocol hole recovery can fall through."
    )

    def applies_to(self, path: str) -> bool:
        return super().applies_to(path) and (
            "/service/" in path or path.startswith("service/")
        )

    def check_project(self, project) -> Iterator[Finding]:
        proto = _find_spec_module(project)
        if proto is None:
            return
        api = _derive_store_api(project, proto)
        if api is None:
            return
        for info in sorted(project.modules.values(), key=lambda m: m.path):
            if not self.applies_to(info.path):
                continue
            yield from self._check_module(info, proto, api)

    # ------------------------------------------------------------------

    def _check_module(self, info, proto, api) -> Iterator[Finding]:
        ctx = info.ctx
        findings: List[Finding] = []
        # API fence: _append stays inside the store class's module.
        if info.path != api.module_path:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Call) and flow.last_name_segment(
                    flow.call_name(node)
                ) == "_append":
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "store records must be appended through the "
                            f"{api.class_name} API, not _append directly; "
                            "the API methods are what the protocol table "
                            "is checked against",
                        )
                    )
        for fn in info.functions.values():
            findings.extend(self._check_function(ctx, fn, proto, api))
        yield from findings

    def _check_function(
        self, ctx: FileContext, fn, proto: _Protocol, api: _StoreApi
    ) -> List[Finding]:
        findings: List[Finding] = []

        def state_of_value(value: ast.AST) -> Tuple[bool, Optional[str]]:
            """(tracked, state) for an assigned expression."""
            if isinstance(value, ast.Call):
                name = flow.call_name(value)
                seg = flow.last_name_segment(name)
                if seg == "JobView" or (
                    isinstance(value.func, ast.Name)
                    and value.func.id == "JobView"
                ):
                    return True, PRE
                if seg in api.targets and len(api.targets[seg]) == 1:
                    return True, next(iter(api.targets[seg]))
            return False, None

        def check_call(call: ast.Call, env: flow.Env) -> None:
            name = flow.call_name(call)
            seg = flow.last_name_segment(name)
            if seg is None or not call.args:
                return
            first = call.args[0]
            if not isinstance(first, ast.Name):
                return
            state = env.get(first.id)
            if state is None:
                return
            if seg == "_append" and len(call.args) >= 2:
                target = _resolve_state(call.args[1], proto)
                if target is not None and target not in proto.allowed(
                    str(state)
                ):
                    findings.append(self._illegal(ctx, call, seg, state, target, proto))
                return
            if seg in api.view_methods and seg in api.targets:
                targets = api.targets[seg]
                if len(targets) == 1:
                    target = next(iter(targets))
                    if target not in proto.allowed(str(state)):
                        findings.append(
                            self._illegal(ctx, call, seg, state, target, proto)
                        )

        def transfer(node: ast.AST, env: flow.Env) -> None:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    check_call(sub, env)
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if (
                value is not None
                and len(targets) == 1
                and isinstance(targets[0], ast.Name)
            ):
                tracked, state = state_of_value(value)
                if tracked:
                    env[targets[0].id] = state
                else:
                    env.pop(targets[0].id, None)

        body = getattr(fn.node, "body", [])
        flow.walk_with_env(body, {}, transfer)
        return findings

    def _illegal(
        self, ctx, call, method, state, target, proto: _Protocol
    ) -> Finding:
        shown = "None" if state == PRE else repr(state)
        return self.finding(
            ctx,
            call,
            f"{method}() performs {shown} -> {target!r}, which the "
            f"protocol table in {proto.spec_path} does not allow",
        )
