"""RL001: iterating an unordered collection in determinism-critical code.

The crash-equivalence guarantee (kill a run at any fault site, resume,
get the bitwise-identical table) holds only if every loop that feeds the
refinement worklist, block-id assignment, or reachability frontier
enumerates its elements in a deterministic order.  Iterating a ``set``
(or ``.keys()`` of a dict built in data-dependent order) makes the order
depend on hash seeding and insertion history — exactly the
nondeterminism the checkpoint digests cannot detect until a resumed run
diverges.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple, Type, Union

from reprolint.core import FileContext, Finding, Rule, is_set_expression

#: Only these subtrees carry the determinism invariant; elsewhere set
#: iteration is ordinary Python.
SCOPED_PREFIXES = (
    "src/repro/partitions",
    "src/repro/lumping",
    "src/repro/statespace",
    "src/repro/robust",
)


def _is_unordered_iterable(
    node: ast.AST, ctx: FileContext, scope: ast.AST
) -> bool:
    """Whether iterating ``node`` directly has hash-dependent order."""
    if is_set_expression(node):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            return True
        # list(s)/tuple(s) snapshot the elements but keep the unordered
        # traversal order, so look through them.
        if (
            isinstance(func, ast.Name)
            and func.id in ("list", "tuple")
            and len(node.args) == 1
        ):
            return _is_unordered_iterable(node.args[0], ctx, scope)
        return False
    if isinstance(node, ast.Name):
        return node.id in ctx.set_valued_names(scope)
    return False


class NondeterministicIteration(Rule):
    code = "RL001"
    name = "nondeterministic-iteration"
    rationale = (
        "set/dict-key iteration order is hash- and history-dependent; in "
        "the refinement/reachability modules it breaks bitwise "
        "kill/resume equivalence. Wrap the iterable in sorted()."
    )
    node_types: Tuple[Type[ast.AST], ...] = (
        ast.For,
        ast.comprehension,
    )

    def applies_to(self, path: str) -> bool:
        return any(path.startswith(prefix) for prefix in SCOPED_PREFIXES)

    def check(
        self, node: Union[ast.For, ast.comprehension], ctx: FileContext
    ) -> Iterator[Finding]:
        iterable = node.iter
        # ``ast.comprehension`` carries no location of its own; anchor the
        # finding at the iterated expression instead.
        anchor = node if isinstance(node, ast.For) else iterable
        scope = ctx.enclosing_scope(anchor)
        # sorted(...) imposes a deterministic order on any iterable.
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id == "sorted"
        ):
            return
        if _is_unordered_iterable(iterable, ctx, scope):
            what = (
                "dict .keys() view"
                if isinstance(iterable, ast.Call)
                and isinstance(iterable.func, ast.Attribute)
                else "set"
            )
            yield self.finding(
                ctx,
                anchor,
                f"iteration over a {what} has nondeterministic order in a "
                "determinism-critical module; wrap it in sorted() (or "
                "iterate a deterministically-built list)",
            )
