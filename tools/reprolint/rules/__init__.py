"""Rule registry: the default rule set, addressable by code.

Adding a rule = writing a module with a :class:`reprolint.core.Rule`
subclass and listing it here.  ``default_rules()`` returns fresh
instances so concurrent/linting-in-tests runs never share rule state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from reprolint.core import Rule
from reprolint.rules.rl001_nondeterministic_iteration import (
    NondeterministicIteration,
)
from reprolint.rules.rl002_missing_budget_hook import MissingBudgetHook
from reprolint.rules.rl003_dense_materialization import DenseMaterialization
from reprolint.rules.rl004_float_equality import FloatEquality
from reprolint.rules.rl005_broad_except import BareOrBroadExcept
from reprolint.rules.rl006_unseeded_randomness import UnseededRandomness
from reprolint.rules.rl007_unsupervised_subprocess import (
    UnsupervisedSubprocess,
)
from reprolint.rules.rl008_adhoc_parallelism import AdHocParallelism
from reprolint.rules.rl009_nondurable_service_write import (
    NonDurableServiceWrite,
)

RULE_CLASSES: Sequence[Type[Rule]] = (
    NondeterministicIteration,
    MissingBudgetHook,
    DenseMaterialization,
    FloatEquality,
    BareOrBroadExcept,
    UnseededRandomness,
    UnsupervisedSubprocess,
    AdHocParallelism,
    NonDurableServiceWrite,
)


def default_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """Fresh instances of the registered rules.

    ``select`` restricts to specific codes (unknown codes raise
    ``ValueError`` so a typo'd ``--select`` fails loudly).
    """
    by_code: Dict[str, Type[Rule]] = {cls.code: cls for cls in RULE_CLASSES}
    if select is None:
        return [cls() for cls in RULE_CLASSES]
    unknown = [code for code in select if code not in by_code]
    if unknown:
        raise ValueError(
            f"unknown rule code(s) {unknown}; known: {sorted(by_code)}"
        )
    return [by_code[code]() for code in select]
