"""Rule registry: the default rule set, addressable by code.

Adding a rule = writing a module with a :class:`reprolint.core.Rule`
(or :class:`reprolint.core.ProjectRule`) subclass and listing it here.
``default_rules()`` returns fresh instances so concurrent/linting-in-
tests runs never share rule state.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Type

from reprolint.core import Rule
from reprolint.rules.rl001_nondeterministic_iteration import (
    NondeterministicIteration,
)
from reprolint.rules.rl002_missing_budget_hook import MissingBudgetHook
from reprolint.rules.rl003_dense_materialization import DenseMaterialization
from reprolint.rules.rl004_float_equality import FloatEquality
from reprolint.rules.rl005_broad_except import BareOrBroadExcept
from reprolint.rules.rl006_unseeded_randomness import UnseededRandomness
from reprolint.rules.rl007_unsupervised_subprocess import (
    UnsupervisedSubprocess,
)
from reprolint.rules.rl008_adhoc_parallelism import AdHocParallelism
from reprolint.rules.rl009_nondurable_service_write import (
    NonDurableServiceWrite,
)
from reprolint.rules.rl010_lock_discipline import LockDiscipline
from reprolint.rules.rl011_lifecycle_conformance import LifecycleConformance
from reprolint.rules.rl012_uncertified_result_publication import (
    UncertifiedResultPublication,
)
from reprolint.rules.rl013_warm_start_without_cold_fallback import (
    WarmStartWithoutColdFallback,
)

RULE_CLASSES: Sequence[Type[Rule]] = (
    NondeterministicIteration,
    MissingBudgetHook,
    DenseMaterialization,
    FloatEquality,
    BareOrBroadExcept,
    UnseededRandomness,
    UnsupervisedSubprocess,
    AdHocParallelism,
    NonDurableServiceWrite,
    LockDiscipline,
    LifecycleConformance,
    UncertifiedResultPublication,
    WarmStartWithoutColdFallback,
)

#: Historical/alternate spellings accepted by ``--select``.  ``RL002i``
#: is the interprocedural RL002 upgrade's working name — same rule.
SELECT_ALIASES: Dict[str, str] = {"RL002I": "RL002"}

_CODE_RE = re.compile(r"^RL\d{3}$")


def known_codes() -> List[str]:
    return sorted(cls.code for cls in RULE_CLASSES)


def normalize_select(select: Sequence[str]) -> List[str]:
    """Validate a ``--select`` code list: resolve aliases, reject
    malformed codes, unknown codes, empty selections, and duplicates —
    each with a one-line ``ValueError`` naming the valid codes, so a
    typo never silently lints with zero rules."""
    by_code = {cls.code for cls in RULE_CLASSES}
    resolved: List[str] = []
    for raw in select:
        code = SELECT_ALIASES.get(raw.upper(), raw)
        if not _CODE_RE.match(code):
            raise ValueError(
                f"malformed rule code {raw!r} (expected RLnnn); "
                f"known: {known_codes()}"
            )
        if code not in by_code:
            raise ValueError(
                f"unknown rule code {raw!r}; known: {known_codes()}"
            )
        if code in resolved:
            raise ValueError(
                f"duplicate rule code {raw!r} in --select"
            )
        resolved.append(code)
    if not resolved:
        raise ValueError(
            f"--select selected no rules; known: {known_codes()}"
        )
    return resolved


def default_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """Fresh instances of the registered rules.

    ``select`` restricts to specific codes; malformed, unknown,
    duplicate, or empty selections raise ``ValueError`` so a typo'd
    ``--select`` fails loudly instead of matching nothing.
    """
    by_code: Dict[str, Type[Rule]] = {cls.code: cls for cls in RULE_CLASSES}
    if select is None:
        return [cls() for cls in RULE_CLASSES]
    return [by_code[code]() for code in normalize_select(select)]
