"""RL006: unseeded randomness or ad-hoc wall-clock reads.

Determinism (for crash equivalence) and budget correctness (for
cooperative stops) each reserve a channel:

* randomness must flow through an explicitly seeded generator
  (``np.random.default_rng(seed)``, ``random.Random(seed)``) so a
  resumed run replays the killed run bit for bit;
* wall-clock time must flow through :mod:`repro.util.timing` or the
  budget clock in :mod:`repro.robust.budgets`, so that "how long did
  this take" and "when do we stop" have exactly one source of truth.

Module-level ``random.*`` calls, legacy ``np.random.*`` global-state
calls, unseeded ``default_rng()``, and raw ``time.time()`` anywhere
else all bypass those channels.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple, Type

from reprolint.core import FileContext, Finding, Rule, dotted_name

#: Files allowed to read the wall clock directly.
CLOCK_WHITELIST = (
    "src/repro/util/timing.py",
    "src/repro/robust/budgets.py",
)

#: ``np.random`` attributes that are explicit-generator construction,
#: not legacy global-state draws.
_NP_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence", "PCG64"})

#: ``random`` module attributes that construct an explicit instance.
_RANDOM_OK = frozenset({"Random", "SystemRandom"})


class UnseededRandomness(Rule):
    code = "RL006"
    name = "unseeded-randomness-or-wall-clock"
    rationale = (
        "unseeded RNG draws and ad-hoc time.time() reads make runs "
        "unreproducible and bypass the budget clock; route randomness "
        "through an explicit seeded Generator and time through "
        "repro.util.timing / the budget hooks."
    )
    node_types: Tuple[Type[ast.AST], ...] = (ast.Call,)

    def applies_to(self, path: str) -> bool:
        return super().applies_to(path) and path.startswith(
            ("src/", "tools/")
        )

    def check(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return
        if name == "time.time":
            if ctx.path not in CLOCK_WHITELIST:
                yield self.finding(
                    ctx,
                    node,
                    "raw time.time() read outside util/timing.py and the "
                    "budget clock; use repro.util.timing.Stopwatch/timed "
                    "or the budget hooks so timing has one source of truth",
                )
            return
        if name.startswith(("np.random.", "numpy.random.")):
            attr = name.rsplit(".", 1)[-1]
            if attr not in _NP_RANDOM_OK:
                yield self.finding(
                    ctx,
                    node,
                    f"legacy global-state {name}() draw; construct an "
                    "explicit np.random.default_rng(seed) Generator so "
                    "runs (and kill/resume replays) are reproducible",
                )
            elif attr == "default_rng" and not (node.args or node.keywords):
                yield self.finding(
                    ctx,
                    node,
                    "np.random.default_rng() without a seed is entropy-"
                    "seeded and unreproducible; pass an explicit seed",
                )
            return
        if name.startswith("random."):
            attr = name.split(".", 1)[1]
            if "." not in attr and attr not in _RANDOM_OK:
                yield self.finding(
                    ctx,
                    node,
                    f"module-level {name}() uses the shared global RNG; "
                    "construct an explicit random.Random(seed) instance",
                )
