"""RL005: a bare or broad ``except`` that swallows without recording.

The robustness layer's contract is that *every* degradation is visible:
a fallback taken, a stage failed, a checkpoint discarded — all of it
lands in the structured :class:`repro.robust.report.RunReport` so a
degraded-but-successful run is distinguishable from a clean one.  A
bare ``except:`` (or ``except Exception``) that neither re-raises nor
records is the one construct that can silently eat a failure and
erase it from the report — the exact opposite of graceful degradation.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple, Type

from reprolint.core import FileContext, Finding, Rule

#: Call names (attribute or bare) that count as recording the failure.
_RECORDING_NAMES = (
    "record_fallback",
    "record_attempt",
    "record",
    "note",
    "warn",
    "warning",
    "error",
    "exception",
    "log",
)

_BROAD = ("Exception", "BaseException")


def _handler_records_or_reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            attr = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None
            )
            if attr is not None and (
                attr in _RECORDING_NAMES or attr.startswith("record_")
            ):
                return True
    return False


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare except:
    node = handler.type
    if isinstance(node, ast.Name):
        return node.id in _BROAD
    if isinstance(node, ast.Attribute):
        return node.attr in _BROAD
    if isinstance(node, ast.Tuple):
        return any(
            _is_broad(ast.ExceptHandler(type=el, name=None, body=[]))
            for el in node.elts
        )
    return False


class BareOrBroadExcept(Rule):
    code = "RL005"
    name = "bare-or-broad-except"
    rationale = (
        "a broad except that neither re-raises nor records to RunReport "
        "makes a degraded run look clean — the failure disappears from "
        "the structured report the operator relies on."
    )
    node_types: Tuple[Type[ast.AST], ...] = (ast.ExceptHandler,)

    def applies_to(self, path: str) -> bool:
        return super().applies_to(path) and path.startswith(
            ("src/", "tools/")
        )

    def check(self, node: ast.ExceptHandler, ctx: FileContext) -> Iterator[Finding]:
        if not _is_broad(node):
            return
        if _handler_records_or_reraises(node):
            return
        caught = "bare except" if node.type is None else "broad except"
        yield self.finding(
            ctx,
            node,
            f"{caught} swallows the failure without re-raising or "
            "recording it (RunReport.record_*/note, logging, or re-raise "
            "required); degraded runs must stay observable",
        )
