"""RL012: a solve result published or consumed without certification.

The certificate layer (``repro.robust.certify``, docs/robustness.md)
only closes the wrong-answer hole if every path a stationary vector
takes into or out of the durable layer passes through it.  Two
publication surfaces exist, both in the service tree:

* **writes** — ``<cache>.put(digest, result, ...)`` stores an answer
  every future submission of the same spec will be served; an
  uncertified write here launders a wrong vector into a trusted one.
* **reads** — ``<cache>.get(...)`` serves a stored answer; a read that
  skips revalidation trusts bytes that may have been written by an
  older build, a crashed writer, or a bit flip the outer digest cannot
  see (the digest covers the bytes, not the math).

A site is compliant when the certificate demonstrably travels with the
result: the ``put`` carries a ``certificate=`` keyword, or the
enclosing function reaches (through the project call graph, <= 8
edges) one of the certification entry points —
``certify`` / ``certify_stationary`` / ``certify_with_escalation`` /
``revalidate_cached`` / ``solve_spec_certified``.  For a ``get``, the
called method itself reaching ``revalidate_cached`` (how
``ResultCache.get`` is written) also counts.

First-iteration-true contract: a ``get`` whose receiver the project
cannot resolve (a plain dict, an out-of-scope class) is opaque and
stays silent — the rule under-reports rather than guessing.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Set

from reprolint import flow
from reprolint.core import FileContext, Finding, ProjectRule

#: Call names (last segment) that mean "this path certifies".
CERTIFY_NAMES = frozenset(
    {
        "certify",
        "certify_stationary",
        "certify_with_escalation",
        "revalidate_cached",
        "solve_spec_certified",
    }
)

#: Call-graph depth for the does-this-path-certify search.  Deeper than
#: RL010's blocking search (3): certification legitimately lives several
#: layers down (_solve -> solve_spec_certified -> lump_and_solve ->
#: _lump_and_solve_robust -> certify_with_escalation).
REACH_DEPTH = 8


def _expr_text(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except (ValueError, RecursionError):  # pathological synthetic trees
        return "<expr>"


def _cacheish(text: str) -> bool:
    return "cache" in text.lower()


def _contains_certify_call(root: ast.AST) -> bool:
    """A call named after a certification entry point anywhere under
    ``root`` (syntactic — catches imports the resolver cannot follow,
    e.g. re-exports through a lazy package ``__init__``)."""
    for node in ast.walk(root):
        if isinstance(node, ast.Call):
            seg = flow.last_name_segment(flow.call_name(node))
            if seg in CERTIFY_NAMES:
                return True
    return False


class UncertifiedResultPublication(ProjectRule):
    code = "RL012"
    name = "uncertified-result-publication"
    rationale = (
        "a stationary vector written to or served from the result cache "
        "without passing through the certificate layer (certify / "
        "certify_with_escalation on the write path, revalidate_cached "
        "on the read path) turns one wrong answer into a durable, "
        "trusted, endlessly re-served one."
    )

    def applies_to(self, path: str) -> bool:
        if not super().applies_to(path):
            return False
        return (
            "/service/" in path
            or path.startswith("service/")
            or Path(path).name == "analysis.py"
        )

    # ------------------------------------------------------------------

    def check_project(self, project) -> Iterator[Finding]:
        for info in sorted(
            project.modules.values(), key=lambda m: m.path
        ):
            if not self.applies_to(info.path):
                continue
            ctx = info.ctx
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in ("put", "get"):
                    continue
                recv = _expr_text(func.value)
                if not _cacheish(recv):
                    continue
                if func.attr == "put":
                    yield from self._check_put(ctx, info, project, node, recv)
                else:
                    yield from self._check_get(ctx, info, project, node, recv)

    # ------------------------------------------------------------------

    def _path_certifies(
        self, project, ctx: FileContext, call: ast.Call
    ) -> bool:
        """The enclosing function (or module, for top-level sites)
        reaches a certification entry point."""
        enclosing = project.enclosing_function(ctx, call)
        if enclosing is None:
            return _contains_certify_call(ctx.tree)
        if _contains_certify_call(enclosing.node):
            return True
        reached = project.reachable_functions(
            [enclosing.qname], max_depth=REACH_DEPTH
        )
        return self._any_certifies(project, reached)

    @staticmethod
    def _any_certifies(project, qnames: Set[str]) -> bool:
        for qname in qnames:
            if qname.rsplit(".", 1)[-1] in CERTIFY_NAMES:
                return True
            fn = project.functions.get(qname)
            if fn is not None and _contains_certify_call(fn.node):
                return True
        return False

    # ------------------------------------------------------------------

    def _check_put(
        self, ctx: FileContext, info, project, call: ast.Call, recv: str
    ) -> Iterator[Finding]:
        if any(kw.arg == "certificate" for kw in call.keywords):
            return
        if self._path_certifies(project, ctx, call):
            return
        yield self.finding(
            ctx,
            call,
            f"result published via {recv}.put() without certification: "
            "no certificate= argument and no certification call "
            "(certify/certify_with_escalation/solve_spec_certified) "
            "reachable from the publishing function; an uncertified "
            "wrong answer written here is served to every future reader",
        )

    def _check_get(
        self, ctx: FileContext, info, project, call: ast.Call, recv: str
    ) -> Iterator[Finding]:
        targets: List = project.resolve_call(call, info)
        if not targets:
            return  # opaque receiver (dict.get etc.): stay silent
        roots = [t.qname for t in targets]
        reached = project.reachable_functions(roots, max_depth=REACH_DEPTH)
        if self._any_certifies(project, reached):
            return
        if self._path_certifies(project, ctx, call):
            return
        yield self.finding(
            ctx,
            call,
            f"cached result consumed via {recv}.get() without "
            "revalidation: neither the get() implementation nor the "
            "consuming function reaches revalidate_cached/certify; a "
            "corrupt or stale entry would be served as-is",
        )
