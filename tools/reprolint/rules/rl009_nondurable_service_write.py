"""RL009: service-layer durability bypasses.

The durable analysis service (:mod:`repro.service`) survives a SIGKILL
at any instant only because every piece of durable state goes through
two narrow doors:

* **all writes are atomic** — ``atomic_write_*`` (tmp + fsync + rename)
  or ``atomic_create_*`` (tmp + fsync + link, the CAS variant) from
  :mod:`repro.robust.checkpoint`.  A plain ``open(path, "w")`` in the
  service tree can be torn by a crash mid-write, and a torn record or
  cache entry is exactly the corruption the service promises cannot
  exist.
* **job state changes only through the store API** — ``JobStore`` append
  methods validate the transition table and publish each change as a
  CAS record.  Assigning ``view.state`` / ``record["state"]`` anywhere
  else creates an in-memory lie (``JobView.state`` is derived from the
  record chain) or, worse, mutates a record dict that later gets
  serialized without a digest re-stamp.

Two constructs are flagged, both scoped to ``src/repro/service/``:

* a ``state`` **assignment** — attribute (``x.state = ...``) or
  constant-key subscript (``x["state"] = ...``) — outside ``store.py``;
* an ``open()`` call whose mode contains ``w``/``a``/``x`` or ``+``
  (including positional and ``mode=`` keyword forms, and ``os.open``
  with creat/write flags) anywhere in the service tree: durable writes
  must use the atomic helpers, and the service has no legitimate
  non-durable writes of its own (scratch files such as heartbeats live
  in :mod:`repro.robust`).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple, Type

from reprolint.core import FileContext, Finding, Rule, dotted_name

_SERVICE_PREFIX = "src/repro/service/"
_STORE_PATH = "src/repro/service/store.py"

#: ``os.open`` flag names that imply the fd can write or create.
_OS_OPEN_WRITE_FLAGS = frozenset(
    {"O_WRONLY", "O_RDWR", "O_CREAT", "O_APPEND", "O_TRUNC"}
)


def _literal_mode(node: ast.Call) -> Optional[str]:
    """The ``mode`` argument of an ``open()`` call when it is a string
    literal; ``"r"`` (the default) when absent; ``None`` when dynamic."""
    mode_node: Optional[ast.AST] = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if mode_node is None:
        return "r"
    if isinstance(mode_node, ast.Constant) and isinstance(
        mode_node.value, str
    ):
        return mode_node.value
    return None


def _os_open_writes(node: ast.Call) -> bool:
    """Whether an ``os.open`` call's flags name any write/creat flag."""
    flag_nodes = list(node.args[1:2]) + [
        kw.value for kw in node.keywords if kw.arg == "flags"
    ]
    for flags in flag_nodes:
        for sub in ast.walk(flags):
            name = dotted_name(sub)
            if name and name.split(".")[-1] in _OS_OPEN_WRITE_FLAGS:
                return True
    return False


class NonDurableServiceWrite(Rule):
    code = "RL009"
    name = "nondurable-service-write"
    rationale = (
        "the service's crash-safety proof covers exactly two write "
        "paths: atomic_write_*/atomic_create_* for bytes and the "
        "JobStore append API for state; any other write can be torn by "
        "a SIGKILL or skip the transition table."
    )
    node_types: Tuple[Type[ast.AST], ...] = (ast.Call, ast.Assign)

    def applies_to(self, path: str) -> bool:
        return super().applies_to(path) and path.startswith(
            _SERVICE_PREFIX
        )

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.Assign):
            yield from self._check_state_assignment(node, ctx)
        else:
            yield from self._check_write_open(node, ctx)

    # ------------------------------------------------------------------

    def _check_state_assignment(
        self, node: ast.Assign, ctx: FileContext
    ) -> Iterator[Finding]:
        if ctx.path == _STORE_PATH:
            return
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "state"
            ):
                yield self.finding(
                    ctx,
                    target,
                    "direct .state assignment outside the store API — "
                    "job state is derived from the CAS record chain; "
                    "append a record via JobStore "
                    "(claim/complete/fail/requeue/...) instead",
                )
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.slice, ast.Constant)
                and target.slice.value == "state"
            ):
                yield self.finding(
                    ctx,
                    target,
                    'record["state"] mutation outside the store API — '
                    "records are immutable once their digest is "
                    "stamped; append a new record via JobStore instead",
                )

    def _check_write_open(
        self, node: ast.Call, ctx: FileContext
    ) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name == "open" or name == "io.open":
            mode = _literal_mode(node)
            if mode is None or any(c in mode for c in "wax+"):
                shown = "dynamic" if mode is None else f"{mode!r}"
                yield self.finding(
                    ctx,
                    node,
                    f"open() with {shown} mode in the service tree — a "
                    "crash mid-write tears the file; use "
                    "atomic_write_*/atomic_create_* from "
                    "repro.robust.checkpoint",
                )
        elif name == "os.open" and _os_open_writes(node):
            yield self.finding(
                ctx,
                node,
                "os.open() with write/creat flags in the service tree "
                "— a crash mid-write tears the file; use "
                "atomic_write_*/atomic_create_* from "
                "repro.robust.checkpoint",
            )
